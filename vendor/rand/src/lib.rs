//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no network access, so this crate implements the
//! slice of the rand API the workspace actually uses: `rngs::StdRng` seeded
//! via `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen::<T>()` / `gen_range(range)`. The generator is xoshiro256++ with a
//! SplitMix64 seed expansion — deterministic for a given seed, which is all
//! the corpus generators and tests rely on (they never pin exact streams).

/// Core source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction; only `seed_from_u64` is used by this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods, blanket-implemented for every `RngCore` (including
/// unsized `dyn`/generic `R: Rng + ?Sized` receivers).
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator standing in for rand's `StdRng`. The streams
    /// differ from upstream rand, which is fine: nothing in the workspace
    /// pins exact values, only determinism per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion; its outputs are never all-zero, which
            // xoshiro requires.
            let mut z = state;
            let mut next = || {
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^ (x >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

pub mod distributions {
    use super::RngCore;

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The default distribution behind `Rng::gen`: uniform over the type's
    /// range for integers, uniform in `[0, 1)` for floats.
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            // 24 mantissa bits of uniformity in [0, 1).
            ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 mantissa bits of uniformity in [0, 1).
            ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }

    pub mod uniform {
        use super::super::RngCore;
        use super::{Distribution, Standard};

        /// Ranges that `Rng::gen_range` accepts.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = (rng.next_u64() as u128) % span;
                        (self.start as i128 + v as i128) as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "cannot sample empty range");
                        let span = (end as i128 - start as i128) as u128 + 1;
                        let v = (rng.next_u64() as u128) % span;
                        (start as i128 + v as i128) as $t
                    }
                }
            )*};
        }
        int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let unit: $t = Distribution::<$t>::sample(&Standard, rng);
                        self.start + (self.end - self.start) * unit
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "cannot sample empty range");
                        let unit: $t = Distribution::<$t>::sample(&Standard, rng);
                        start + (end - start) * unit
                    }
                }
            )*};
        }
        float_range!(f32, f64);
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&w));
            seen_lo |= w == 5;
            seen_hi |= w == 7;
            let f = rng.gen_range(-0.05f32..0.05);
            assert!((-0.05..0.05).contains(&f));
            let e = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&e));
        }
        assert!(seen_lo && seen_hi, "inclusive bounds are reachable");
    }

    #[test]
    fn works_through_unsized_receivers() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = draw(&mut rng);
    }
}
