//! Offline stand-in for `criterion`.
//!
//! Exposes the harness API the workspace's benches compile against
//! (`Criterion`, `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`/`criterion_main!`). Measurement is a
//! deliberately small wall-clock loop: a short warm-up, then a fixed number
//! of timed batches, reporting the per-iteration median to stdout. There is
//! no statistical analysis, plotting, or persistence — benches stay
//! runnable and comparable order-of-magnitude, which is all the offline
//! environment supports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration timing harness handed to bench closures.
pub struct Bencher {
    /// Median per-iteration time of the timed batches.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a batch size that lasts ~1ms.
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (Duration::from_millis(1).as_nanos() / one.as_nanos()).clamp(1, 10_000) as u32;

        const BATCHES: usize = 7;
        let mut samples = [Duration::ZERO; BATCHES];
        for sample in &mut samples {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            *sample = start.elapsed() / per_batch;
        }
        samples.sort();
        self.elapsed = samples[BATCHES / 2];
    }
}

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Accepted anywhere a bench name is expected (`&str` or `BenchmarkId`).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {}

fn run_one(label: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if !per_iter.is_zero() => {
            let gib = n as f64 / per_iter.as_secs_f64() / (1u64 << 30) as f64;
            format!("  ({gib:.3} GiB/s)")
        }
        Some(Throughput::Elements(n)) if !per_iter.is_zero() => {
            let meps = n as f64 / per_iter.as_secs_f64() / 1e6;
            format!("  ({meps:.3} Melem/s)")
        }
        _ => String::new(),
    };
    println!("bench: {label:<48} {per_iter:>12.3?}/iter{rate}");
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, None, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.text, None, |b| f(b, input));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<ID: IntoBenchmarkId, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.throughput, |b| f(b));
        self
    }

    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_api_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| black_box(7)));
        group.finish();
    }
}
