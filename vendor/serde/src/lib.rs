//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types to
//! keep the external-facing API shaped like the real crates, but nothing in
//! the tree instantiates a serializer (there is no serde_json here). This
//! stub therefore only needs the trait *shapes*: default method bodies
//! report "unsupported" through the format's own error type, and the derive
//! macro emits empty impls that inherit them.

pub mod ser {
    /// Error constructor every serializer error type must provide.
    pub trait Error: Sized {
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}

pub mod de {
    /// Error constructor every deserializer error type must provide.
    pub trait Error: Sized {
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}

pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;
}

pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
}

pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let _ = serializer;
        Err(<S::Error as ser::Error>::custom(
            "serde offline stub: serialization is not supported",
        ))
    }
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let _ = deserializer;
        Err(<D::Error as de::Error>::custom(
            "serde offline stub: deserialization is not supported",
        ))
    }
}

// Blanket-ish impls for the few concrete types manual impls in the tree
// forward to (ed25519 Signature serializes as a byte slice / Vec<u8>).
impl Serialize for [u8] {}
impl<T> Serialize for Vec<T> {}
impl<'de, T> Deserialize<'de> for Vec<T> {}
impl Serialize for u8 {}
impl<'de> Deserialize<'de> for u8 {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
