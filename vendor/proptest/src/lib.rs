//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! deterministic randomized-test harness: the `proptest!` macro samples each
//! strategy `cases` times from an RNG seeded by the test's name, runs the
//! body, and panics with the failing inputs' debug output on the first
//! failure. There is no shrinking (every config in the tree sets
//! `max_shrink_iters: 0` anyway, and the field is honored by ignoring it)
//! and no failure persistence.

pub mod test_runner {
    /// Mirror of proptest's config; only `cases` changes behaviour here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Outcome of one generated case (used by `prop_assert!`/`prop_assume!`).
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The generated inputs don't satisfy a `prop_assume!` precondition.
        Reject,
        /// A `prop_assert!` failed.
        Fail(String),
    }

    /// Deterministic xoshiro256++ RNG seeded from the test name, so a
    /// failing case reproduces on every run.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut z = h;
            let mut next = || {
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^ (x >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values; this stub samples directly with no shrink tree.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S> Union<S> {
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128 % span) as i128;
                    (start as i128 + v) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * (rng.unit_f64() as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    start + (end - start) * (rng.unit_f64() as $t)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // Like upstream proptest's default float strategies, `any::<f32>()`
    // draws from raw bit patterns but excludes the special values (NaN and
    // the infinities need explicit opt-in flags upstream). Signed zeros and
    // subnormals are fair game.
    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            loop {
                let v = f32::from_bits(rng.next_u64() as u32);
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    return v;
                }
            }
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted by `vec`/`hash_set` as an exact size or a size range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_inclusive - self.lo) as u64 + 1;
            self.lo + rng.below(span) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: core::hash::Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: core::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = std::collections::HashSet::with_capacity(n);
            // Duplicates shrink the set; retry a bounded number of times to
            // approach the requested size, like upstream's set strategies.
            let mut attempts = 0usize;
            while out.len() < n && attempts < n.saturating_mul(16) + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror (`prop::sample::Index`, `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// The test harness macro. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that samples every strategy `config.cases` times from a
/// name-seeded deterministic RNG and runs the body. `prop_assume!` rejects
/// re-draw the inputs (bounded), `prop_assert*!` failures panic with the
/// offending inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(16).saturating_add(64);
                while __accepted < __config.cases && __attempts < __max_attempts {
                    __attempts += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                    )+
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => {
                            __accepted += 1;
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} failed: {}\ninputs: {}",
                                __accepted + 1,
                                msg,
                                concat!($(stringify!($arg), " "),+)
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_honor_bounds(x in 3u32..9, y in 5usize..=7, f in -0.5f32..0.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((5..=7).contains(&y));
            prop_assert!((-0.5..0.5).contains(&f));
        }

        #[test]
        fn vec_sizes_and_maps(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_just(t in prop_oneof![Just(2usize), Just(4), Just(8)]) {
            prop_assert!(t == 2 || t == 4 || t == 8);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(crate::arbitrary::any::<u64>(), 0..32);
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..16 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn prop_map_applies() {
        use crate::strategy::Strategy;
        let strat = (0u32..10).prop_map(|v| v * 2);
        let mut rng = crate::test_runner::TestRng::deterministic("map");
        for _ in 0..32 {
            let v = strat.generate(&mut rng);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
    }
}
