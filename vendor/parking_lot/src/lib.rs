//! Offline stand-in for `parking_lot`.
//!
//! Only the `Mutex` surface the workspace consumes is exposed, backed by
//! `std::sync::Mutex` with poisoning unwrapped the way parking_lot behaves:
//! a panic while holding the lock does not poison it for later users.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Like parking_lot, locking never fails: a poisoned std mutex is
    /// recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    /// Mirrors parking_lot: debug-prints the protected value when the lock
    /// is free, `<locked>` when it is held.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(std::sync::TryLockError::Poisoned(p)) => f
                .debug_struct("Mutex")
                .field("data", &&*p.into_inner())
                .finish(),
            Err(std::sync::TryLockError::WouldBlock) => {
                f.debug_struct("Mutex").field("data", &"<locked>").finish()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1u32);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
