//! Offline stand-in for `serde_derive`.
//!
//! The companion `serde` stub gives `Serialize`/`Deserialize` default method
//! bodies, so deriving only needs to emit an *empty* impl block for the
//! annotated type. Every derive site in this workspace is a plain
//! non-generic struct or enum, which keeps the name extraction to "the
//! identifier after `struct`/`enum`".

use proc_macro::{TokenStream, TokenTree};

/// The type name: the identifier following the first top-level `struct` or
/// `enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tree in input {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if saw_kw {
                return text;
            }
            if text == "struct" || text == "enum" {
                saw_kw = true;
            }
        }
    }
    panic!("serde_derive stub: no struct/enum name found in derive input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl parses")
}
