//! Offline stand-in for the `crossbeam` facade.
//!
//! The build environment has no network access, so the workspace vendors the
//! exact API slice it consumes. `imageproof-parallel` uses only
//! `crossbeam::thread::scope` and `Scope::spawn`; both map directly onto
//! `std::thread::scope`, which gives the same structured-concurrency
//! guarantee (all workers joined before the scope returns).

pub mod thread {
    /// Mirrors `crossbeam::thread::scope`'s result type. With the std
    /// backend a worker panic is resumed on the joining thread instead of
    /// being captured, so callers only ever observe `Ok` — their
    /// `.expect(..)` on this value stays a no-op.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Scope handle passed to the closure given to [`scope`]; spawned
    /// workers receive it again so nested spawns keep working.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope whose spawned threads are all joined before
    /// this function returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_workers_join_and_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    total.fetch_add(part, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("scope");
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn nested_spawns_work() {
        let hit = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| hit.store(true, std::sync::atomic::Ordering::Relaxed));
            });
        })
        .expect("scope");
        assert!(hit.into_inner());
    }
}
