//! Parallel-vs-serial equivalence: for every scheme variant and thread
//! count, the deterministic parallel execution layer must produce
//! byte-identical wire-serialized VOs, identical top-k, identical
//! digests/signatures, and identical `SpStats` counters.
//!
//! The deterministic matrix covers all 4 schemes × threads ∈ {1, 2, 4, 8}
//! on a fixed corpus; the proptests re-check the contract on random
//! corpora, schemes, and thread counts.

use imageproof_suite::akm::{AkmParams, Codebook};
use imageproof_suite::core::{Client, Concurrency, Owner, Scheme, SystemConfig};
use imageproof_suite::parallel_eq::{
    assert_batch_equivalent, assert_build_equivalent, assert_memoization_invisible,
    assert_query_equivalent,
};
use imageproof_suite::vision::{Corpus, CorpusConfig, DescriptorKind};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn corpus(n_images: usize, n_latent_words: usize, seed: u64) -> Corpus {
    Corpus::generate(&CorpusConfig {
        n_images,
        n_latent_words,
        seed,
        ..CorpusConfig::small(DescriptorKind::Surf)
    })
}

fn akm(n_clusters: usize, seed: u64) -> AkmParams {
    AkmParams {
        n_clusters,
        n_trees: 3,
        max_leaf_size: 2,
        max_checks: 12,
        iterations: 1,
        seed,
    }
}

fn trained_codebook(corpus: &Corpus, params: &AkmParams) -> Codebook {
    Codebook::train(corpus.config.kind, corpus.all_features(), params)
}

/// The full deterministic matrix: every scheme × every thread count, build
/// and query, one shared corpus/codebook.
#[test]
fn parallel_matches_serial_for_all_schemes_and_thread_counts() {
    let corpus = corpus(60, 80, 0xE81);
    let owner = Owner::new(&[33u8; 32]);
    let params = akm(64, 17);
    let codebook = trained_codebook(&corpus, &params);
    for scheme in Scheme::ALL {
        for threads in THREAD_COUNTS {
            let (sp_serial, sp_parallel) =
                assert_build_equivalent(&owner, &corpus, &codebook, scheme, threads);
            // Query the serially-built DB with both paths…
            let features = corpus.query_from_image(7, 24, 0xA11CE);
            assert_query_equivalent(&sp_serial, &features, 5, threads);
            // …and check the parallel-built DB answers identically too.
            let (from_serial_db, _) = sp_serial.query(&features, 5);
            let (from_parallel_db, _) =
                sp_parallel.query_with(&features, 5, Concurrency::new(threads));
            assert_eq!(
                from_serial_db.vo, from_parallel_db.vo,
                "{scheme:?} threads={threads}: DBs built at different thread \
                 counts answered differently"
            );
        }
    }
}

/// `query_batch` serves concurrent clients over one shared database with
/// responses bit-identical to per-query serial calls, in input order.
#[test]
fn parallel_batch_serving_matches_individual_queries() {
    let corpus = corpus(60, 80, 99);
    let owner = Owner::new(&[34u8; 32]);
    let params = akm(64, 18);
    let codebook = trained_codebook(&corpus, &params);
    for scheme in [Scheme::ImageProof, Scheme::OptimizedBoth] {
        let (db, _) = owner.build_system_with_codebook(&corpus, codebook.clone(), scheme);
        let sp = imageproof_suite::core::ServiceProvider::new(db);
        let queries: Vec<Vec<Vec<f32>>> = (0..6)
            .map(|i| corpus.query_from_image(i * 9 % 60, 20, 0xBA7C + i))
            .collect();
        for threads in THREAD_COUNTS {
            assert_batch_equivalent(&sp, &queries, 4, threads);
        }
    }
}

/// Determinism guard: building twice with the same seed at *different*
/// thread counts yields identical signed roots — any accidental
/// iteration-order dependence in filter or digest construction would break
/// this before it could break a client.
#[test]
fn parallel_build_is_deterministic_across_thread_counts_and_reruns() {
    let corpus = corpus(50, 70, 7);
    let owner = Owner::new(&[35u8; 32]);
    let params = akm(48, 19);
    for scheme in Scheme::ALL {
        let mut roots = Vec::new();
        let mut signatures = Vec::new();
        // Two runs per thread count: catches both cross-thread-count and
        // run-to-run nondeterminism.
        for threads in [1usize, 2, 4, 8, 4, 1] {
            let (db, published) = owner.build_system_config(
                &corpus,
                &params,
                SystemConfig::new(scheme).with_threads(threads),
            );
            roots.push(db.mrkd.combined_root_digest());
            signatures.push(published.root_signature);
        }
        assert!(
            roots.windows(2).all(|w| w[0] == w[1]),
            "{scheme:?}: root digest depends on thread count"
        );
        assert!(
            signatures.windows(2).all(|w| w[0] == w[1]),
            "{scheme:?}: root signature depends on thread count"
        );
    }
}

/// A client that never heard of concurrency verifies responses produced by
/// the parallel SP path — thread count is invisible on the wire.
#[test]
fn parallel_responses_verify_for_unmodified_clients() {
    let corpus = corpus(60, 80, 3);
    let owner = Owner::new(&[36u8; 32]);
    let params = akm(64, 20);
    let codebook = trained_codebook(&corpus, &params);
    for scheme in Scheme::ALL {
        let (db, published) = owner.build_system_with_codebook_config(
            &corpus,
            codebook.clone(),
            SystemConfig::new(scheme).with_threads(4),
        );
        let sp = imageproof_suite::core::ServiceProvider::new(db);
        let client = Client::new(published);
        let features = corpus.query_from_image(11, 24, 0xC0FFEE);
        let (response, _) = sp.query_with(&features, 5, Concurrency::new(4));
        let verified = client
            .verify(&features, 5, &response)
            .unwrap_or_else(|e| panic!("{scheme:?}: honest parallel SP rejected: {e}"));
        assert_eq!(verified.topk.len(), 5, "{scheme:?}");
    }
}

/// The hot-path digest memos (filter commitments, chain digests) are
/// invisible on the wire: a database with its caches cleared answers every
/// query with byte-identical VOs, top-k, signatures, and counters for every
/// scheme and thread count.
#[test]
fn memoized_hot_path_matches_cache_disabled_reference() {
    let corpus = corpus(60, 80, 0xCAC4E);
    let owner = Owner::new(&[38u8; 32]);
    let params = akm(64, 21);
    let codebook = trained_codebook(&corpus, &params);
    let queries: Vec<Vec<Vec<f32>>> = (0..3)
        .map(|i| corpus.query_from_image(i * 13 % 60, 20, 0xD1D0 + i))
        .collect();
    for scheme in Scheme::ALL {
        let (db, _) = owner.build_system_with_codebook(&corpus, codebook.clone(), scheme);
        let sp = imageproof_suite::core::ServiceProvider::new(db);
        for threads in THREAD_COUNTS {
            assert_memoization_invisible(&sp, &queries, 4, threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 0,
    })]

    /// Random corpora, schemes, and thread counts: build + query + batch
    /// equivalence all hold.
    #[test]
    fn parallel_equivalence_holds_on_random_corpora(
        n_images in 30usize..70,
        n_latent in 40usize..90,
        n_clusters in 24usize..72,
        corpus_seed in any::<u64>(),
        akm_seed in any::<u64>(),
        scheme_idx in 0usize..4,
        threads in prop_oneof![Just(2usize), Just(4), Just(8)],
        k in 2usize..7,
    ) {
        let scheme = Scheme::ALL[scheme_idx];
        let corpus = corpus(n_images, n_latent, corpus_seed);
        let owner = Owner::new(&[37u8; 32]);
        let params = akm(n_clusters, akm_seed);
        let codebook = trained_codebook(&corpus, &params);
        let (sp_serial, _) =
            assert_build_equivalent(&owner, &corpus, &codebook, scheme, threads);
        let source = (corpus_seed % n_images as u64) as u64;
        let features = corpus.query_from_image(source, 18, akm_seed ^ 0x51);
        assert_query_equivalent(&sp_serial, &features, k, threads);
        let batch: Vec<Vec<Vec<f32>>> = (0..3)
            .map(|i| corpus.query_from_image((source + i) % n_images as u64, 14, i))
            .collect();
        assert_batch_equivalent(&sp_serial, &batch, k, threads);
        assert_memoization_invisible(&sp_serial, &batch, k, threads);
    }
}
