//! Socket-coordinator vs in-process differential harness.
//!
//! The RPC deployment's claim mirrors the sharded one's: moving the
//! shards behind sockets changes *transport only*. For every scheme and
//! shard count the coordinator must produce the same verified top-k and a
//! byte-identical assembled `ShardedVo` as the in-process `ShardedSp` —
//! the merge/trim/assemble code is literally shared (`core::fanout`), and
//! these tests pin the remaining surface: the wire round-trip of per-shard
//! responses, the trim re-query protocol, and batch multiplexing.

mod rpc_util;

use imageproof_core::{Concurrency, Scheme};
use imageproof_crypto::wire::Encode;
use rpc_util::{connect, fixture};

#[test]
fn coordinator_matches_in_process_for_every_scheme_and_shard_count() {
    for scheme in Scheme::ALL {
        for &shards in &[1usize, 2, 4, 8] {
            let fx = fixture(scheme, shards);
            let mut coord = connect(&fx);
            for (source, n_features, seed, k) in [(5u64, 24, 1u64, 5usize), (33, 20, 2, 3)] {
                let features = fx.corpus().query_from_image(source, n_features, seed);
                let label = format!("{scheme:?} S={shards} q={source} k={k}");

                let (local_resp, local_stats) = fx.sp.query(&features, k);
                let (rpc_resp, rpc_stats) = coord
                    .query(&features, k)
                    .unwrap_or_else(|e| panic!("{label}: rpc query failed: {e}"));

                // The assembled VO must be byte-identical — not just
                // verifiable, the same bytes the in-process merge built.
                assert_eq!(
                    rpc_resp.vo.to_wire(),
                    local_resp.vo.to_wire(),
                    "{label}: socket VO diverged from in-process VO"
                );
                let rpc_ids: Vec<_> = rpc_resp.results.iter().map(|r| (r.id, r.score)).collect();
                let local_ids: Vec<_> =
                    local_resp.results.iter().map(|r| (r.id, r.score)).collect();
                assert_eq!(rpc_ids, local_ids, "{label}: top-k diverged");
                for (r, l) in rpc_resp.results.iter().zip(&local_resp.results) {
                    assert_eq!(r.data, l.data, "{label}: payload bytes diverged");
                }

                // Deterministic counters survive the wire; span-derived
                // seconds never cross it.
                assert_eq!(
                    rpc_stats.trim_queries, local_stats.trim_queries,
                    "{label}: trim accounting diverged"
                );
                assert_eq!(
                    rpc_stats.trimmed_entries, local_stats.trimmed_entries,
                    "{label}"
                );
                assert_eq!(
                    rpc_stats.dedup_bytes_saved, local_stats.dedup_bytes_saved,
                    "{label}"
                );
                for (r, l) in rpc_stats.per_shard.iter().zip(&local_stats.per_shard) {
                    assert_eq!(r.popped, l.popped, "{label}: per-shard counters diverged");
                    assert_eq!(r.hashes_computed, l.hashes_computed, "{label}");
                    assert_eq!(r.blocks_skipped, l.blocks_skipped, "{label}");
                }

                // The client accepts the socket-served response against
                // the owner-signed manifest.
                let verified = fx
                    .client
                    .verify_sharded(&features, k, &rpc_resp, &fx.manifest)
                    .unwrap_or_else(|e| panic!("{label}: client rejected socket response: {e}"));
                assert_eq!(verified.topk.len(), k.min(verified.topk.len()), "{label}");
            }
            let stats = coord.stats();
            assert_eq!(
                stats.failovers, 0,
                "{scheme:?} S={shards}: phantom failover"
            );
            assert!(
                stats.rpc_seconds.iter().any(|s| !s.is_empty()),
                "{scheme:?} S={shards}: no latency samples recorded"
            );
            for server in fx.servers {
                server.shutdown();
            }
        }
    }
}

#[test]
fn batched_queries_match_single_queries_bit_for_bit() {
    let fx = fixture(Scheme::OptimizedBoth, 4);
    let queries: Vec<Vec<Vec<f32>>> = [(5u64, 24, 1u64), (33, 20, 2), (11, 16, 3)]
        .iter()
        .map(|&(source, n, seed)| fx.corpus().query_from_image(source, n, seed))
        .collect();
    let k = 4;

    let mut coord = connect(&fx);
    let batched = coord.query_batch(&queries, k).expect("batched query");
    assert_eq!(batched.len(), queries.len());
    for (q, (batch_resp, batch_stats)) in batched.iter().enumerate() {
        // One-at-a-time over the same wire.
        let (single_resp, single_stats) = coord.query(&queries[q], k).expect("single query");
        assert_eq!(
            batch_resp.vo.to_wire(),
            single_resp.vo.to_wire(),
            "query {q}: batched VO diverged from single-query VO"
        );
        // And against the in-process engine.
        let (local_resp, _) = fx.sp.query(&queries[q], k);
        assert_eq!(
            batch_resp.vo.to_wire(),
            local_resp.vo.to_wire(),
            "query {q}: batched VO diverged from in-process VO"
        );
        assert_eq!(batch_stats.trim_queries, single_stats.trim_queries, "q{q}");
        fx.client
            .verify_sharded(&queries[q], k, batch_resp, &fx.manifest)
            .unwrap_or_else(|e| panic!("query {q}: client rejected batched response: {e}"));
    }
    // Batching collapses the socket conversation: every shard saw one
    // QueryBatch round-trip (plus at most one TrimBatch), not one
    // conversation per query.
    let batch_samples = coord.stats().rpc_seconds[0].len();
    assert!(
        batch_samples >= 1,
        "expected recorded batch round-trips, got {batch_samples}"
    );
    let empty: Vec<Vec<Vec<f32>>> = Vec::new();
    assert!(coord
        .query_batch(&empty, k)
        .expect("empty batch")
        .is_empty());
    for server in fx.servers {
        server.shutdown();
    }
}

#[test]
fn replicated_endpoints_serve_identically() {
    // Two full replica sets for the same manifest: the coordinator pinned
    // to (primary, replica) chains serves the same bytes as one pinned to
    // primaries only.
    use imageproof_core::rpc::{RpcCoordinator, ShardEndpoint};
    use imageproof_core::ShardedSp;
    let fx = fixture(Scheme::ImageProof, 2);
    // A third identical build acts as the replica set.
    let replica_system = rpc_util::build_system(Scheme::ImageProof, 2);
    let (replica_servers, replica_endpoints) =
        rpc_util::launch_shards(ShardedSp::new(replica_system.shards));
    let endpoints: Vec<ShardEndpoint> = fx
        .endpoints
        .iter()
        .zip(&replica_endpoints)
        .map(|(p, r)| ShardEndpoint::with_replicas(p.primary, vec![r.primary]))
        .collect();
    let mut coord = RpcCoordinator::connect(endpoints, &fx.manifest, rpc_util::quick_config())
        .expect("connect with replicas");
    let features = fx.corpus().query_from_image(7, 20, 4);
    let (resp, _) = coord.query(&features, 3).expect("replicated query");
    let (local, _) = fx.sp.query(&features, 3);
    assert_eq!(resp.vo.to_wire(), local.vo.to_wire());
    assert_eq!(coord.stats().failovers, 0);
    for server in fx.servers.into_iter().chain(replica_servers) {
        server.shutdown();
    }
}

#[test]
fn thread_concurrency_of_in_process_baseline_is_irrelevant_to_the_wire() {
    // The in-process engine may fan out across threads; the coordinator
    // always matches its serial per-shard path. Sanity-check the baseline
    // assumption the equivalence tests lean on.
    let fx = fixture(Scheme::OptimizedBovw, 2);
    let features = fx.corpus().query_from_image(9, 18, 6);
    let (serial, _) = fx.sp.query_with(&features, 4, Concurrency::serial());
    let (threaded, _) = fx.sp.query_with(&features, 4, Concurrency::new(4));
    assert_eq!(serial.vo.to_wire(), threaded.vo.to_wire());
    let mut coord = connect(&fx);
    let (rpc, _) = coord.query(&features, 4).expect("rpc query");
    assert_eq!(rpc.vo.to_wire(), serial.vo.to_wire());
    for server in fx.servers {
        server.shutdown();
    }
}
