//! Block-skip attack matrix: a hostile SP who tampers with the blocked
//! posting-list skip proofs must be caught by `verify_topk`, and each attack
//! must surface as the *specific* error variant that names what broke —
//! soundness claims are only as good as the failure they map to.
//!
//! | attack                               | rejected as            |
//! |--------------------------------------|------------------------|
//! | inflate the fence `block_max`        | `DigestMismatch`       |
//! | stale / substituted fence digest     | `DigestMismatch`       |
//! | reorder popped blocks                | `DigestMismatch`       |
//! | splice to a non-block-sized prefix   | `BlockShapeInvalid`    |
//! | hide a winner inside a skipped block | `Condition1Failed`     |
//!
//! The VO commitments themselves come from an honest `inv_search` run over a
//! deterministic index, so every test starts from a verifying baseline.

use std::collections::BTreeMap;

use imageproof_akm::bovw::ImpactModel;
use imageproof_akm::SparseBovw;
use imageproof_crypto::Digest;
use imageproof_invindex::search::{inv_search, InvSearchResult};
use imageproof_invindex::{
    verify_topk, BoundsMode, FilterVo, InvVerifyError, InvVo, ListVo, MerkleInvertedIndex,
    RemainingVo, BLOCK_SIZE,
};

const N_CLUSTERS: usize = 3;
const K: usize = 5;

/// Deterministic corpus: cluster 0 holds most images (48 postings, 6
/// blocks — not all 60, so its idf weight stays positive), cluster 1 the
/// first 24 (3 blocks), cluster 2 the even ids (30 postings, 4 blocks).
/// Impact variety comes from the count `1 + i % 7`.
fn build_index() -> MerkleInvertedIndex {
    let images: Vec<(u64, SparseBovw)> = (0..60u64)
        .map(|i| {
            let mut pairs = Vec::new();
            if i % 5 != 0 {
                pairs.push((0u32, 1 + (i % 7) as u32));
            }
            if i < 24 {
                pairs.push((1, 2 + (i % 3) as u32));
            }
            if i % 2 == 0 {
                pairs.push((2, 1 + (i % 5) as u32));
            }
            (i, SparseBovw::from_counts(pairs))
        })
        .collect();
    let encodings: Vec<SparseBovw> = images.iter().map(|(_, e)| e.clone()).collect();
    let model = ImpactModel::build(N_CLUSTERS, &encodings);
    MerkleInvertedIndex::build(N_CLUSTERS, &images, &model)
}

struct Fixture {
    index: MerkleInvertedIndex,
    digests: BTreeMap<u32, Digest>,
    query: SparseBovw,
    honest: InvSearchResult,
    claimed: Vec<u64>,
}

fn fixture() -> Fixture {
    let index = build_index();
    let digests: BTreeMap<u32, Digest> = index
        .list_digests()
        .into_iter()
        .enumerate()
        .map(|(c, d)| (c as u32, d))
        .collect();
    let query = SparseBovw::from_counts([(0u32, 2u32), (1, 1), (2, 1)]);
    let honest = inv_search(&index, &query, K, BoundsMode::CuckooFiltered);
    let claimed: Vec<u64> = honest.topk.iter().map(|&(i, _)| i).collect();
    Fixture {
        index,
        digests,
        query,
        honest,
        claimed,
    }
}

fn verify(fx: &Fixture, vo: &InvVo, claimed: &[u64]) -> Result<(), InvVerifyError> {
    verify_topk(
        vo,
        &fx.query,
        &fx.digests,
        claimed,
        K,
        BoundsMode::CuckooFiltered,
    )
    .map(|_| ())
}

/// Index of a list whose remaining is a skip proof (panics if the fixture
/// never skips — then the whole feature is untested and should fail loudly).
fn skipped_list(vo: &InvVo) -> usize {
    vo.lists
        .iter()
        .position(|l| matches!(l.remaining, RemainingVo::Skipped { .. }))
        .expect("fixture must leave at least one list partially scanned")
}

#[test]
fn honest_blocked_vo_verifies() {
    let fx = fixture();
    assert!(verify(&fx, &fx.honest.vo, &fx.claimed).is_ok());
    assert!(
        fx.honest.stats.blocks_skipped > 0,
        "fixture must actually skip blocks, else the attacks are vacuous"
    );
}

#[test]
fn inflated_fence_bound_is_a_digest_mismatch() {
    let fx = fixture();
    let mut vo = fx.honest.vo.clone();
    let i = skipped_list(&vo);
    let cluster = vo.lists[i].cluster;
    match &mut vo.lists[i].remaining {
        RemainingVo::Skipped { max_impact, .. } => *max_impact *= 4.0,
        RemainingVo::Exhausted { .. } => unreachable!(),
    }
    assert_eq!(
        verify(&fx, &vo, &fx.claimed),
        Err(InvVerifyError::DigestMismatch { cluster })
    );
}

#[test]
fn stale_fence_digest_is_a_digest_mismatch() {
    let fx = fixture();
    let mut vo = fx.honest.vo.clone();
    let i = skipped_list(&vo);
    let cluster = vo.lists[i].cluster;
    match &mut vo.lists[i].remaining {
        // An SP replaying a pre-update fence digest (or any digest it
        // likes) changes the pair the last popped block committed, hence
        // the re-sealed list root.
        RemainingVo::Skipped { fence_digest, .. } => *fence_digest = Digest::of(b"stale block"),
        RemainingVo::Exhausted { .. } => unreachable!(),
    }
    assert_eq!(
        verify(&fx, &vo, &fx.claimed),
        Err(InvVerifyError::DigestMismatch { cluster })
    );
}

#[test]
fn reordered_popped_blocks_are_a_digest_mismatch() {
    let fx = fixture();
    let mut vo = fx.honest.vo.clone();
    // Any list with at least two popped blocks will do; the block chain
    // fixes their order even though each block's own contents are intact.
    let i = vo
        .lists
        .iter()
        .position(|l| l.popped.len() >= 2 * BLOCK_SIZE)
        .expect("fixture must pop at least two blocks somewhere");
    let cluster = vo.lists[i].cluster;
    let popped = &mut vo.lists[i].popped;
    let (a, b) = popped.split_at_mut(BLOCK_SIZE);
    a.swap_with_slice(&mut b[..BLOCK_SIZE]);
    assert_eq!(
        verify(&fx, &vo, &fx.claimed),
        Err(InvVerifyError::DigestMismatch { cluster })
    );
}

#[test]
fn spliced_unaligned_prefix_is_a_block_shape_error() {
    let fx = fixture();
    let mut vo = fx.honest.vo.clone();
    let i = skipped_list(&vo);
    let cluster = vo.lists[i].cluster;
    // Splice one genuine posting from the fence block onto the popped
    // prefix, leaving the skip proof in place: the prefix is no longer a
    // whole number of blocks, so no honest block-granular search produced
    // it — rejected on shape before any hashing.
    let donor = fx.index.list(cluster).postings[vo.lists[i].popped.len()];
    vo.lists[i].popped.push((donor.image, donor.impact));
    assert_eq!(
        verify(&fx, &vo, &fx.claimed),
        Err(InvVerifyError::BlockShapeInvalid { cluster })
    );
}

#[test]
fn winner_hidden_in_skipped_blocks_fails_condition1() {
    let fx = fixture();
    // The strongest form of the attack: the SP re-seals every list at block
    // 0 — commitments all check out (it used the real fence preimages) —
    // and claims the true top-k without disclosing a single posting. Every
    // winner now "lives in a skipped block", and the authenticated fence
    // bounds make the undisclosed mass exceed the k-th score, so the skip
    // test the client re-runs must reject.
    let lists = fx
        .honest
        .vo
        .lists
        .iter()
        .map(|l| {
            let list = fx.index.list(l.cluster);
            let fence = list.blocks()[0];
            ListVo {
                cluster: l.cluster,
                weight: l.weight,
                popped: Vec::new(),
                remaining: RemainingVo::Skipped {
                    max_impact: fence.max_impact,
                    fence_digest: fence.digest,
                    filter: FilterVo::Bytes(list.filter.to_bytes()),
                },
            }
        })
        .collect();
    let vo = InvVo { lists };
    assert_eq!(
        verify(&fx, &vo, &fx.claimed),
        Err(InvVerifyError::Condition1Failed)
    );
}

/// The skip proof costs one fence pair regardless of how many blocks it
/// covers: a partially-scanned list's VO carries exactly one digest and one
/// bound — never one entry per skipped block — four bytes more than the old
/// per-posting seal's single next-digest.
#[test]
fn skip_proof_is_constant_size_in_skipped_blocks() {
    use imageproof_crypto::wire::Encode;
    let fx = fixture();
    let i = skipped_list(&fx.honest.vo);
    let list = &fx.honest.vo.lists[i];
    let skipped_blocks = fx
        .index
        .list(list.cluster)
        .postings
        .len()
        .div_ceil(BLOCK_SIZE)
        - list.popped.len() / BLOCK_SIZE;
    assert!(skipped_blocks >= 1);
    let overhead = list.remaining.to_wire().len();
    // tag + f32 bound + one digest + varint-length-prefixed filter bytes —
    // independent of `skipped_blocks`.
    let filter_bytes = match &list.remaining {
        RemainingVo::Skipped {
            filter: FilterVo::Bytes(b),
            ..
        } => b.len(),
        _ => unreachable!(),
    };
    // LEB128 length of the filter-length prefix itself.
    let mut len_prefix = 1;
    let mut v = filter_bytes as u64 >> 7;
    while v > 0 {
        len_prefix += 1;
        v >>= 7;
    }
    assert_eq!(overhead, 1 + 4 + 32 + len_prefix + filter_bytes);
}
