//! Sharded-serving adversary matrix: every way a malicious SP (who
//! controls *all* shards) can tamper with a sharded response must be
//! detected by `Client::verify_sharded`, each with a distinct error.
//!
//! Attacks covered: shard withholding, shard-id swapping, manifest
//! tampering (wrong root, replayed smaller-deployment manifest),
//! demoting a winning shard behind a bound proof, inflated / tampered /
//! truncated bound proofs, tampered winner payloads, and merge
//! manipulation. A reordered-but-genuine response must still verify
//! (Definition 1 is a set property).

use std::sync::OnceLock;

use imageproof_akm::AkmParams;
use imageproof_core::{
    shard_of, Client, ClientError, Owner, Scheme, ShardManifest, ShardVo, ShardedError,
    ShardedResponse, ShardedSp,
};
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};

struct Fx {
    corpus: Corpus,
    sp: ShardedSp,
    client: Client,
    manifest: ShardManifest,
    /// Genuine manifest of a 2-shard deployment by the same owner (for the
    /// replay attack).
    manifest_s2: ShardManifest,
    features: Vec<Vec<f32>>,
    k: usize,
    response: ShardedResponse,
}

const S: usize = 4;

fn fx() -> &'static Fx {
    static FX: OnceLock<Fx> = OnceLock::new();
    FX.get_or_init(|| {
        let corpus = Corpus::generate(&CorpusConfig {
            kind: DescriptorKind::Surf,
            n_images: 60,
            n_latent_words: 60,
            ..CorpusConfig::small(DescriptorKind::Surf)
        });
        let akm = AkmParams {
            n_clusters: 48,
            n_trees: 3,
            max_leaf_size: 2,
            max_checks: 16,
            iterations: 2,
            seed: 7,
        };
        let owner = Owner::new(&[21u8; 32]);
        let system = owner.build_sharded_system(&corpus, &akm, Scheme::ImageProof, S);
        let manifest_s2 = owner
            .build_sharded_system(&corpus, &akm, Scheme::ImageProof, 2)
            .manifest;
        let sp = ShardedSp::new(system.shards);
        let client = Client::new(system.published);
        let manifest = system.manifest;
        let features = corpus.query_from_image(5, 24, 1);
        let k = 2;
        let (response, _) = sp.query(&features, k);
        // The attack matrix needs both sections populated.
        assert!(
            !response.vo.contributing.is_empty() && !response.vo.excluded.is_empty(),
            "fixture query must leave both contributing and excluded shards"
        );
        Fx {
            corpus,
            sp,
            client,
            manifest,
            manifest_s2,
            features,
            k,
            response,
        }
    })
}

fn verify(f: &Fx, response: &ShardedResponse) -> Result<(), ShardedError> {
    f.client
        .verify_sharded(&f.features, f.k, response, &f.manifest)
        .map(|_| ())
}

#[test]
fn the_honest_sharded_response_verifies() {
    let f = fx();
    let verified = f
        .client
        .verify_sharded(&f.features, f.k, &f.response, &f.manifest)
        .expect("honest sharded SP must verify");
    assert_eq!(verified.topk.len(), f.k);
    // The query derives from image 5; it must rank in the top-k.
    assert!(verified.topk.iter().any(|&(id, _)| id == 5));
}

#[test]
fn reordered_genuine_results_still_verify() {
    let f = fx();
    let mut tampered = f.response.clone();
    tampered.results.reverse();
    verify(f, &tampered).expect("reordered genuine winner set must verify");
}

#[test]
fn withholding_a_shard_is_detected() {
    let f = fx();
    // Drop a contributing sub-VO entirely.
    let mut tampered = f.response.clone();
    let dropped = tampered.vo.contributing.remove(0);
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::ShardMissing {
            shard: dropped.shard_id
        })
    );
    // Same for an excluded shard's bound proof.
    let mut tampered = f.response.clone();
    let dropped = tampered.vo.excluded.remove(0);
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::ShardMissing {
            shard: dropped.shard_id
        })
    );
}

#[test]
fn demoting_a_winning_shard_behind_a_bound_proof_is_detected() {
    // The SP hides a shard's winners by serving an *honest* k=1 bound
    // proof for it, as if the shard had no global winner. The bound itself
    // verifies — but its candidate beats (or is) the claimed k-th winner,
    // so the merge bound check must fire.
    let f = fx();
    let mut tampered = f.response.clone();
    let demoted = tampered.vo.contributing.remove(0);
    let shard = demoted.shard_id;
    let (bound_resp, _) = f.sp.shards()[shard as usize].query(&f.features, 1);
    tampered.vo.excluded.push(ShardVo {
        shard_id: shard,
        claimed: bound_resp.results.iter().map(|r| r.id).collect(),
        vo: bound_resp.vo,
    });
    // Drop the demoted shard's winners from the visible results so the
    // response looks self-consistent.
    tampered
        .results
        .retain(|r| shard_of(r.id, S) != shard as usize);
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::BoundExceeded { shard })
    );
}

#[test]
fn swapping_shard_ids_is_detected() {
    let f = fx();
    let mut tampered = f.response.clone();
    let a = tampered.vo.contributing[0].shard_id;
    let b = tampered.vo.excluded[0].shard_id;
    tampered.vo.contributing[0].shard_id = b;
    tampered.vo.excluded[0].shard_id = a;
    // Coverage still looks complete, but each sub-VO now checks against
    // the other shard's committed root.
    match verify(f, &tampered) {
        Err(ShardedError::Shard {
            error: ClientError::RootSignatureInvalid,
            ..
        }) => {}
        other => panic!("shard-id swap not detected as a root mismatch: {other:?}"),
    }
}

#[test]
fn duplicated_shard_coverage_is_detected() {
    let f = fx();
    let mut tampered = f.response.clone();
    let dup = tampered.vo.contributing[0].clone();
    let shard = dup.shard_id;
    tampered.vo.contributing.push(dup);
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::DuplicateShard { shard })
    );
}

#[test]
fn unknown_shard_ids_are_detected() {
    let f = fx();
    let mut tampered = f.response.clone();
    tampered.vo.excluded[0].shard_id = 99;
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::UnknownShard { shard: 99 })
    );
}

#[test]
fn tampered_manifest_root_is_detected() {
    let f = fx();
    let mut manifest = f.manifest.clone();
    manifest.shard_roots[1].0[0] ^= 1;
    assert!(matches!(
        f.client
            .verify_sharded(&f.features, f.k, &f.response, &manifest),
        Err(ShardedError::ManifestInvalid)
    ));
}

#[test]
fn replayed_smaller_deployment_manifest_is_detected() {
    // The S=2 manifest carries a genuine owner signature, so it passes the
    // signature check — the shard-count binding must reject it.
    let f = fx();
    assert!(f.manifest_s2.verify(&f.client_public_key()));
    assert_eq!(
        f.client
            .verify_sharded(&f.features, f.k, &f.response, &f.manifest_s2)
            .err(),
        Some(ShardedError::ShardCountMismatch {
            manifest: 2,
            vo: S as u32
        })
    );
}

#[test]
fn bound_proof_claiming_a_weaker_candidate_is_detected() {
    // Replace an excluded shard's claimed best with a different image of
    // the same shard: the VO's termination conditions no longer support
    // the claim.
    let f = fx();
    let mut tampered = f.response.clone();
    let sub = &mut tampered.vo.excluded[0];
    let shard = sub.shard_id;
    let winner = sub.claimed[0];
    let substitute = f
        .corpus
        .images
        .iter()
        .map(|img| img.id)
        .find(|&id| shard_of(id, S) == shard as usize && id != winner)
        .expect("shard has another image");
    sub.claimed[0] = substitute;
    match verify(f, &tampered) {
        Err(ShardedError::Shard {
            shard: s,
            error: ClientError::Inv(_),
        }) => assert_eq!(s, shard),
        other => panic!("tampered bound claim not detected: {other:?}"),
    }
}

#[test]
fn truncated_bound_proof_is_detected() {
    // An empty bound claim asserts "this shard has no candidate at all";
    // with postings remaining, the termination conditions must reject it.
    let f = fx();
    let mut tampered = f.response.clone();
    let sub = &mut tampered.vo.excluded[0];
    let shard = sub.shard_id;
    sub.claimed.clear();
    sub.vo.signatures.clear();
    match verify(f, &tampered) {
        Err(ShardedError::Shard {
            shard: s,
            error: ClientError::Inv(_),
        }) => assert_eq!(s, shard),
        other => panic!("truncated bound proof not detected: {other:?}"),
    }
}

#[test]
fn overlong_bound_proof_is_detected() {
    let f = fx();
    let mut tampered = f.response.clone();
    let sub = &mut tampered.vo.excluded[0];
    let shard = sub.shard_id;
    let extra = sub.claimed[0].wrapping_add(1);
    sub.claimed.push(extra);
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::BoundShapeInvalid { shard })
    );
}

#[test]
fn tampered_winner_payload_is_detected() {
    let f = fx();
    let mut tampered = f.response.clone();
    tampered.results[0].data[0] ^= 1;
    let id = tampered.results[0].id;
    match verify(f, &tampered) {
        Err(ShardedError::Shard {
            error: ClientError::ImageSignatureInvalid { id: bad },
            ..
        }) => assert_eq!(bad, id),
        other => panic!("tampered payload not detected: {other:?}"),
    }
}

#[test]
fn manipulated_merge_is_detected() {
    let f = fx();
    // Dropping a winner row shrinks the result set below the verified merge.
    let mut tampered = f.response.clone();
    tampered.results.pop();
    assert_eq!(verify(f, &tampered), Err(ShardedError::MergeMismatch));

    // Duplicating a winner row keeps the length but corrupts the set.
    let mut tampered = f.response.clone();
    let dup = tampered.results[0].clone();
    tampered.results.pop();
    tampered.results.push(dup);
    assert_eq!(verify(f, &tampered), Err(ShardedError::MergeMismatch));
}

impl Fx {
    fn client_public_key(&self) -> imageproof_crypto::PublicKey {
        // Rebuild the key from the owner seed instead of exposing client
        // internals.
        Owner::new(&[21u8; 32]).public_key()
    }
}

/// Exhaustiveness reminder: the matrix above exercises ManifestInvalid,
/// ShardCountMismatch, UnknownShard, DuplicateShard, ShardMissing,
/// Shard{RootSignatureInvalid | Inv | ImageSignatureInvalid},
/// BoundShapeInvalid, BoundExceeded, and MergeMismatch. Adding a
/// ShardedError variant makes this match non-exhaustive — extend the
/// attack matrix when that happens.
#[test]
fn the_attack_matrix_tracks_every_error_variant() {
    let probe = |e: &ShardedError| match e {
        ShardedError::ManifestInvalid
        | ShardedError::ShardCountMismatch { .. }
        | ShardedError::UnknownShard { .. }
        | ShardedError::DuplicateShard { .. }
        | ShardedError::ShardMissing { .. }
        | ShardedError::Shard { .. }
        | ShardedError::BoundShapeInvalid { .. }
        | ShardedError::BoundExceeded { .. }
        | ShardedError::DuplicateCandidate { .. }
        | ShardedError::AssignmentMismatch { .. }
        | ShardedError::MergeMismatch => (),
    };
    probe(&ShardedError::MergeMismatch);
}
