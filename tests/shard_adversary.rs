//! Sharded-serving adversary matrix: every way a malicious SP (who
//! controls *all* shards) can tamper with a sharded response must be
//! detected by `Client::verify_sharded`, each with a distinct error.
//!
//! Attacks covered: shard withholding, shard-id swapping, manifest
//! tampering (wrong root, replayed smaller-deployment manifest),
//! trimming abuse (over-trimmed sub-VOs hiding surviving entries,
//! demote-and-backfill behind a fence, stale fence proofs, inflated
//! contribution counts, impossible claim shapes), shared-section abuse
//! (out-of-range template references, truncated or corrupted digest
//! patches), tampered winner payloads, and merge manipulation. A
//! reordered-but-genuine response must still verify (Definition 1 is a
//! set property).
//!
//! The wire-level section at the bottom replays the same adversary through
//! the socket RPC path: a man-in-the-middle on a shard link substitutes
//! sub-VOs in flight, spoofs telemetry, and replays captured responses.
//! The RPC layer either surfaces a typed error or delivers bytes that the
//! client's manifest-pinned verification rejects — never a
//! wrong-but-verified result.

mod rpc_util;

use std::sync::OnceLock;

use imageproof_akm::AkmParams;
use imageproof_core::{
    shard_of, Client, ClientError, Owner, Scheme, ShardBovw, ShardManifest, ShardVo, ShardedError,
    ShardedResponse, ShardedSp, ShardedVo,
};
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};

struct Fx {
    corpus: Corpus,
    sp: ShardedSp,
    client: Client,
    manifest: ShardManifest,
    /// Genuine manifest of a 2-shard deployment by the same owner (for the
    /// replay attack).
    manifest_s2: ShardManifest,
    features: Vec<Vec<f32>>,
    k: usize,
    response: ShardedResponse,
    /// A genuine response to a *different* query (for stale-proof replays).
    stale: ShardedResponse,
}

const S: usize = 4;

fn fx() -> &'static Fx {
    static FX: OnceLock<Fx> = OnceLock::new();
    FX.get_or_init(|| {
        let corpus = Corpus::generate(&CorpusConfig {
            kind: DescriptorKind::Surf,
            n_images: 60,
            n_latent_words: 60,
            ..CorpusConfig::small(DescriptorKind::Surf)
        });
        let akm = AkmParams {
            n_clusters: 48,
            n_trees: 3,
            max_leaf_size: 2,
            max_checks: 16,
            iterations: 2,
            seed: 7,
        };
        let owner = Owner::new(&[21u8; 32]);
        let system = owner.build_sharded_system(&corpus, &akm, Scheme::ImageProof, S);
        let manifest_s2 = owner
            .build_sharded_system(&corpus, &akm, Scheme::ImageProof, 2)
            .manifest;
        let sp = ShardedSp::new(system.shards);
        let client = Client::new(system.published);
        let manifest = system.manifest;
        let features = corpus.query_from_image(5, 24, 1);
        let k = 2;
        let (response, _) = sp.query(&features, k);
        // The attack matrix needs contributing shards, fence-only trimmed
        // shards, and shared-section patches all present in the fixture.
        assert!(
            response.vo.shards.iter().any(|s| s.contributed > 0),
            "fixture query must have a contributing shard"
        );
        assert!(
            response.vo.shards.iter().any(|s| s.contributed == 0),
            "fixture query must have a fence-only trimmed shard"
        );
        assert!(
            response
                .vo
                .shards
                .iter()
                .any(|s| matches!(s.bovw, ShardBovw::Patched { .. })),
            "fixture response must deduplicate BoVW material into the shared section"
        );
        let stale_features = corpus.query_from_image(33, 24, 2);
        let (stale, _) = sp.query(&stale_features, k);
        Fx {
            corpus,
            sp,
            client,
            manifest,
            manifest_s2,
            features,
            k,
            response,
            stale,
        }
    })
}

fn verify(f: &Fx, response: &ShardedResponse) -> Result<(), ShardedError> {
    f.client
        .verify_sharded(&f.features, f.k, response, &f.manifest)
        .map(|_| ())
}

/// Index of the first sub-VO claiming at least one contribution.
fn contributing_index(vo: &ShardedVo) -> usize {
    vo.shards
        .iter()
        .position(|s| s.contributed > 0)
        .expect("fixture has a contributing shard")
}

/// Index of the first fence-only (zero-contribution) sub-VO.
fn trimmed_index(vo: &ShardedVo) -> usize {
    vo.shards
        .iter()
        .position(|s| s.contributed == 0)
        .expect("fixture has a trimmed shard")
}

/// Index of the first sub-VO that patches against the shared section.
fn patched_index(vo: &ShardedVo) -> usize {
    vo.shards
        .iter()
        .position(|s| matches!(s.bovw, ShardBovw::Patched { .. }))
        .expect("fixture has a patched shard")
}

/// Index of the first patched sub-VO carrying a non-empty digest payload
/// (the template-seeding shard ships an empty patch, which has no bytes
/// to corrupt).
fn payload_patched_index(vo: &ShardedVo) -> usize {
    vo.shards
        .iter()
        .position(|s| matches!(&s.bovw, ShardBovw::Patched { unique, .. } if !unique.is_empty()))
        .expect("fixture has a patched shard with a digest payload")
}

/// An honest trimmed sub-VO for one shard, built from a direct per-shard
/// query at `k_local` and labelled with an arbitrary `contributed` count —
/// the raw material for trimming attacks.
fn honest_shard_vo(f: &Fx, shard: u32, k_local: usize, contributed: u32) -> ShardVo {
    let (resp, _) = f.sp.shards()[shard as usize].query(&f.features, k_local);
    ShardVo {
        shard_id: shard,
        contributed,
        claimed: resp.results.iter().map(|r| r.id).collect(),
        bovw: ShardBovw::Inline(resp.vo.bovw),
        inv: resp.vo.inv,
        signatures: resp.vo.signatures,
    }
}

#[test]
fn the_honest_sharded_response_verifies() {
    let f = fx();
    let verified = f
        .client
        .verify_sharded(&f.features, f.k, &f.response, &f.manifest)
        .expect("honest sharded SP must verify");
    assert_eq!(verified.topk.len(), f.k);
    // The query derives from image 5; it must rank in the top-k.
    assert!(verified.topk.iter().any(|&(id, _)| id == 5));
}

#[test]
fn reordered_genuine_results_still_verify() {
    let f = fx();
    let mut tampered = f.response.clone();
    tampered.results.reverse();
    verify(f, &tampered).expect("reordered genuine winner set must verify");
}

#[test]
fn withholding_a_shard_is_detected() {
    let f = fx();
    // Drop a contributing sub-VO entirely.
    let mut tampered = f.response.clone();
    let dropped = tampered
        .vo
        .shards
        .remove(contributing_index(&f.response.vo));
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::ShardMissing {
            shard: dropped.shard_id
        })
    );
    // Same for a fence-only trimmed shard's sub-VO.
    let mut tampered = f.response.clone();
    let dropped = tampered.vo.shards.remove(trimmed_index(&f.response.vo));
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::ShardMissing {
            shard: dropped.shard_id
        })
    );
}

#[test]
fn over_trimming_a_winning_shard_is_detected() {
    // The SP hides a contributing shard's winners by serving an *honest*
    // fence-only sub-VO for it (a genuine local top-1 labelled j = 0).
    // Every piece verifies — but now fewer than k contributions exist, so
    // a verified fence candidate stands next to a free result slot.
    let f = fx();
    let mut tampered = f.response.clone();
    let idx = contributing_index(&f.response.vo);
    let shard = tampered.vo.shards[idx].shard_id;
    tampered.vo.shards[idx] = honest_shard_vo(f, shard, 1, 0);
    assert!(
        matches!(
            verify(f, &tampered),
            Err(ShardedError::FenceWithFreeSlot { .. })
        ),
        "over-trimmed winning shard must leave a provably free slot"
    );
}

#[test]
fn demoting_a_winner_and_backfilling_from_another_shard_is_detected() {
    // Full demote-and-backfill: shard X's winners vanish behind an honest
    // fence-only sub-VO while another shard Y inflates its contribution
    // count to keep all k slots filled. Every sub-VO verifies and the
    // contribution counts still sum to k — but the claimed k-th winner is
    // now weaker than some verified fence candidate, so the fence check
    // must fire.
    let f = fx();
    let mut tampered = f.response.clone();
    let xi = contributing_index(&f.response.vo);
    let x = tampered.vo.shards[xi].shard_id;
    let jx = tampered.vo.shards[xi].contributed;
    let yi = (0..tampered.vo.shards.len())
        .find(|&i| i != xi)
        .expect("more than one shard");
    let y = tampered.vo.shards[yi].shard_id;
    let jy = tampered.vo.shards[yi].contributed + jx;
    let k_local = ((jy as usize) + 1).min(f.k);
    tampered.vo.shards[xi] = honest_shard_vo(f, x, 1, 0);
    tampered.vo.shards[yi] = honest_shard_vo(f, y, k_local, jy);
    assert!(
        matches!(
            verify(f, &tampered),
            Err(ShardedError::FenceExceeded { .. })
        ),
        "backfilled k-th winner must lose to a verified fence candidate"
    );
}

#[test]
fn replaying_a_stale_fence_proof_is_detected() {
    // The SP reuses a genuine sub-VO from an earlier, different query as
    // this query's fence proof. The VO authenticates against the shard's
    // committed root, but its revealed search path does not match the
    // current query's traversal, so sub-VO verification rejects it.
    let f = fx();
    let mut tampered = f.response.clone();
    let idx = trimmed_index(&f.response.vo);
    let shard = tampered.vo.shards[idx].shard_id;
    let stale_sub = f
        .stale
        .vo
        .shards
        .iter()
        .find(|s| s.shard_id == shard)
        .expect("stale response covers every shard");
    // Resolve against the *stale* shared section so the splice carries a
    // self-contained (inline) proof — the staleness itself must be caught.
    let stale_bovw = stale_sub
        .resolve_bovw(&f.stale.vo.shared)
        .expect("stale sub-VO resolves in its own response")
        .into_owned();
    // Keep the stale sub-VO's own (internally consistent) trim shape —
    // the *staleness*, not the shape, must be what gets rejected.
    let mut spliced = stale_sub.clone();
    spliced.bovw = ShardBovw::Inline(stale_bovw);
    tampered.vo.shards[idx] = spliced;
    match verify(f, &tampered) {
        Err(ShardedError::Shard { shard: s, .. }) => assert_eq!(s, shard),
        other => panic!("stale fence proof not detected: {other:?}"),
    }
}

#[test]
fn inflating_the_contributed_count_is_detected() {
    // A fence-only shard re-labels itself as contributing the full k by
    // shipping an honest local top-k sub-VO. Everything verifies locally,
    // but the contribution counts now sum past k: the merge provably
    // dropped a claimed contribution.
    let f = fx();
    let mut tampered = f.response.clone();
    let idx = trimmed_index(&f.response.vo);
    let shard = tampered.vo.shards[idx].shard_id;
    tampered.vo.shards[idx] = honest_shard_vo(f, shard, f.k, f.k as u32);
    assert!(
        matches!(
            verify(f, &tampered),
            Err(ShardedError::ContributionInflated { .. })
        ),
        "inflated contribution counts must be rejected"
    );
}

#[test]
fn swapping_shard_ids_is_detected() {
    let f = fx();
    let mut tampered = f.response.clone();
    let a = tampered.vo.shards[0].shard_id;
    let b = tampered.vo.shards[1].shard_id;
    tampered.vo.shards[0].shard_id = b;
    tampered.vo.shards[1].shard_id = a;
    // Coverage still looks complete, but each sub-VO now checks against
    // the other shard's committed root.
    match verify(f, &tampered) {
        Err(ShardedError::Shard {
            error: ClientError::RootSignatureInvalid,
            ..
        }) => {}
        other => panic!("shard-id swap not detected as a root mismatch: {other:?}"),
    }
}

#[test]
fn duplicated_shard_coverage_is_detected() {
    let f = fx();
    let mut tampered = f.response.clone();
    let dup = tampered.vo.shards[0].clone();
    let shard = dup.shard_id;
    tampered.vo.shards.push(dup);
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::DuplicateShard { shard })
    );
}

#[test]
fn unknown_shard_ids_are_detected() {
    let f = fx();
    let mut tampered = f.response.clone();
    tampered.vo.shards[trimmed_index(&f.response.vo)].shard_id = 99;
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::UnknownShard { shard: 99 })
    );
}

#[test]
fn tampered_manifest_root_is_detected() {
    let f = fx();
    let mut manifest = f.manifest.clone();
    manifest.shard_roots[1].0[0] ^= 1;
    assert!(matches!(
        f.client
            .verify_sharded(&f.features, f.k, &f.response, &manifest),
        Err(ShardedError::ManifestInvalid)
    ));
}

#[test]
fn replayed_smaller_deployment_manifest_is_detected() {
    // The S=2 manifest carries a genuine owner signature, so it passes the
    // signature check — the shard-count binding must reject it.
    let f = fx();
    assert!(f.manifest_s2.verify(&f.client_public_key()));
    assert_eq!(
        f.client
            .verify_sharded(&f.features, f.k, &f.response, &f.manifest_s2)
            .err(),
        Some(ShardedError::ShardCountMismatch {
            manifest: 2,
            vo: S as u32
        })
    );
}

#[test]
fn trimmed_claim_substituting_a_weaker_candidate_is_detected() {
    // Replace a fence-only shard's claimed best with a different image of
    // the same shard: the VO's termination conditions no longer support
    // the claim.
    let f = fx();
    let mut tampered = f.response.clone();
    let sub = &mut tampered.vo.shards[trimmed_index(&f.response.vo)];
    let shard = sub.shard_id;
    let winner = sub.claimed[0];
    let substitute = f
        .corpus
        .images
        .iter()
        .map(|img| img.id)
        .find(|&id| shard_of(id, S) == shard as usize && id != winner)
        .expect("shard has another image");
    sub.claimed[0] = substitute;
    match verify(f, &tampered) {
        Err(ShardedError::Shard {
            shard: s,
            error: ClientError::Inv(_),
        }) => assert_eq!(s, shard),
        other => panic!("tampered trimmed claim not detected: {other:?}"),
    }
}

#[test]
fn truncated_trimmed_claim_is_detected() {
    // An empty claim asserts "this shard has no candidate at all"; with
    // postings remaining, the termination conditions must reject it.
    let f = fx();
    let mut tampered = f.response.clone();
    let sub = &mut tampered.vo.shards[trimmed_index(&f.response.vo)];
    let shard = sub.shard_id;
    sub.claimed.clear();
    sub.signatures.clear();
    match verify(f, &tampered) {
        Err(ShardedError::Shard {
            shard: s,
            error: ClientError::Inv(_),
        }) => assert_eq!(s, shard),
        other => panic!("truncated trimmed claim not detected: {other:?}"),
    }
}

#[test]
fn overlong_trimmed_claim_is_detected() {
    // A fence-only shard (j = 0) may claim at most one entry; a second
    // claimed id makes the trim shape impossible regardless of content.
    let f = fx();
    let mut tampered = f.response.clone();
    let sub = &mut tampered.vo.shards[trimmed_index(&f.response.vo)];
    let shard = sub.shard_id;
    let extra = sub.claimed[0].wrapping_add(1);
    sub.claimed.push(extra);
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::TrimShapeInvalid { shard })
    );
}

#[test]
fn contribution_count_beyond_k_is_detected() {
    // `j > k` is impossible on its face: the merge only has k slots.
    let f = fx();
    let mut tampered = f.response.clone();
    let sub = &mut tampered.vo.shards[0];
    let shard = sub.shard_id;
    sub.contributed = (f.k + 5) as u32;
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::TrimShapeInvalid { shard })
    );
}

#[test]
fn shared_template_index_out_of_range_is_detected() {
    let f = fx();
    let mut tampered = f.response.clone();
    let idx = patched_index(&f.response.vo);
    let shard = tampered.vo.shards[idx].shard_id;
    match &mut tampered.vo.shards[idx].bovw {
        ShardBovw::Patched { template, .. } => *template = 9,
        ShardBovw::Inline(_) => unreachable!("patched_index returned an inline sub-VO"),
    }
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::SharedIndexInvalid { shard, index: 9 })
    );
}

#[test]
fn truncated_shared_patch_payload_is_detected() {
    let f = fx();
    let mut tampered = f.response.clone();
    let idx = payload_patched_index(&f.response.vo);
    let shard = tampered.vo.shards[idx].shard_id;
    match &mut tampered.vo.shards[idx].bovw {
        ShardBovw::Patched { unique, .. } => {
            unique.pop().expect("patch carries digests");
        }
        ShardBovw::Inline(_) => unreachable!("payload_patched_index returned an inline sub-VO"),
    }
    assert_eq!(
        verify(f, &tampered),
        Err(ShardedError::SharedPatchMismatch { shard })
    );
}

#[test]
fn corrupted_shared_patch_digest_is_detected() {
    // A bit-flipped patch digest still *fits* the template, but the
    // resolved sub-VO no longer authenticates against the shard's
    // committed root (the exact inner error depends on whether the flipped
    // slot was a pruned-subtree digest or a leaf's inverted-list digest).
    let f = fx();
    let mut tampered = f.response.clone();
    let idx = payload_patched_index(&f.response.vo);
    let shard = tampered.vo.shards[idx].shard_id;
    match &mut tampered.vo.shards[idx].bovw {
        ShardBovw::Patched { unique, .. } => unique[0].0[0] ^= 1,
        ShardBovw::Inline(_) => unreachable!("payload_patched_index returned an inline sub-VO"),
    }
    match verify(f, &tampered) {
        Err(ShardedError::Shard { shard: s, .. }) => assert_eq!(s, shard),
        other => panic!("corrupted patch digest not detected: {other:?}"),
    }
}

#[test]
fn tampered_winner_payload_is_detected() {
    let f = fx();
    let mut tampered = f.response.clone();
    tampered.results[0].data[0] ^= 1;
    let id = tampered.results[0].id;
    match verify(f, &tampered) {
        Err(ShardedError::Shard {
            error: ClientError::ImageSignatureInvalid { id: bad },
            ..
        }) => assert_eq!(bad, id),
        other => panic!("tampered payload not detected: {other:?}"),
    }
}

#[test]
fn manipulated_merge_is_detected() {
    let f = fx();
    // Dropping a winner row shrinks the result set below the verified merge.
    let mut tampered = f.response.clone();
    tampered.results.pop();
    assert_eq!(verify(f, &tampered), Err(ShardedError::MergeMismatch));

    // Duplicating a winner row keeps the length but corrupts the set.
    let mut tampered = f.response.clone();
    let dup = tampered.results[0].clone();
    tampered.results.pop();
    tampered.results.push(dup);
    assert_eq!(verify(f, &tampered), Err(ShardedError::MergeMismatch));
}

impl Fx {
    fn client_public_key(&self) -> imageproof_crypto::PublicKey {
        // Rebuild the key from the owner seed instead of exposing client
        // internals.
        Owner::new(&[21u8; 32]).public_key()
    }
}

// ---------------------------------------------------------------------------
// Wire-level adversaries: the same attacker, now sitting on a shard's
// socket link instead of inside the SP process.

mod wire_attacks {
    use super::Scheme;
    use crate::rpc_util::{self, Fault, Proxy};
    use imageproof_core::rpc::{frame, Response, RpcCoordinator, RpcError, ShardEndpoint};
    use imageproof_core::ShardedError;
    use imageproof_crypto::wire::Encode;
    use std::sync::{Arc, Mutex};

    /// Connects a coordinator whose shard-0 link runs through `proxy`,
    /// with every other shard reached directly.
    fn connect_with_proxied_shard0(fx: &rpc_util::Fixture, proxy: &Proxy) -> RpcCoordinator {
        let mut endpoints = fx.endpoints.clone();
        endpoints[0] = ShardEndpoint::single(proxy.addr());
        RpcCoordinator::connect(endpoints, &fx.manifest, rpc_util::quick_config())
            .expect("connect through adversarial proxy")
    }

    /// A man-in-the-middle swaps a shard's sub-VO for the shard's genuine
    /// VO *for a different query*, leaving the candidate list (and hence
    /// the merge) untouched. The target is the shard whose full fan-out
    /// response survives assembly verbatim — the one contributing the
    /// k-th winner, which the merge never trims (a trimmed shard's inv
    /// proof would be replaced by the honest trim re-query, voiding the
    /// attack). The RPC layer cannot tell — the frame is well-formed and
    /// correctly addressed — so the substitution must die in
    /// `verify_sharded`: the stale inv VO cannot support this query's
    /// claims against the owner-signed shard root.
    #[test]
    fn in_flight_sub_vo_substitution_is_rejected_by_the_client() {
        let fx = rpc_util::fixture(Scheme::ImageProof, 4);
        let features = fx.corpus().query_from_image(5, 24, 1);
        let stale_features = fx.corpus().query_from_image(33, 24, 2);
        let k = 2;
        let (local, _) = fx.sp.query(&features, k);
        let target = super::shard_of(local.results.last().expect("k winners").id, 4);
        let stale_vo = fx.sp.shards()[target].query(&stale_features, k).0.vo;
        let honest_vo = &fx.sp.shards()[target].query(&features, k).0.vo;
        assert_ne!(
            stale_vo.inv.to_wire(),
            honest_vo.inv.to_wire(),
            "attack setup: the stale inv proof must actually differ"
        );
        let proxy = Proxy::start(
            fx.endpoints[target].primary,
            Fault::MapResponses(Arc::new(move |resp| {
                Some(match resp {
                    Response::Query { id, mut payload } => {
                        payload.vo = stale_vo.clone();
                        Response::Query { id, payload }
                    }
                    other => other,
                })
            })),
        );
        let mut endpoints = fx.endpoints.clone();
        endpoints[target] = ShardEndpoint::single(proxy.addr());
        let mut coord = RpcCoordinator::connect(endpoints, &fx.manifest, rpc_util::quick_config())
            .expect("connect through adversarial proxy");
        // Transport-wise the exchange is flawless...
        let (resp, _) = coord
            .query(&features, k)
            .expect("substituted frames are well-formed RPC");
        assert_ne!(
            resp.vo.to_wire(),
            local.vo.to_wire(),
            "attack setup: the substitution must reach the assembled VO"
        );
        // ...but the client holds the owner-signed manifest, and the
        // spliced VO cannot support this query's claims.
        match fx.client.verify_sharded(&features, k, &resp, &fx.manifest) {
            Err(ShardedError::Shard { shard, .. }) => assert_eq!(shard as usize, target),
            other => panic!("in-flight sub-VO substitution survived: {other:?}"),
        }
    }

    /// The adversary injects a telemetry frame for a request id the
    /// coordinator never issued. Telemetry is unauthenticated diagnostics,
    /// so the coordinator's only defence — and the required one — is the
    /// id/solicitation check.
    #[test]
    fn spoofed_telemetry_is_rejected_as_unsolicited() {
        let fx = rpc_util::fixture(Scheme::ImageProof, 1);
        let spoof = Response::Telemetry {
            id: 999,
            profile: imageproof_core::rpc::WireProfile { root: None },
            registry: imageproof_core::rpc::WireRegistry {
                counters: Vec::new(),
                gauges: Vec::new(),
                histograms: Vec::new(),
            },
        };
        let proxy = Proxy::start(
            fx.endpoints[0].primary,
            Fault::InjectBeforeResponses(frame(&spoof.to_wire())),
        );
        let mut coord = connect_with_proxied_shard0(&fx, &proxy);
        let features = fx.corpus().query_from_image(5, 20, 1);
        let err = coord.query(&features, 3).expect_err("spoofed telemetry");
        assert_eq!(
            err,
            RpcError::UnsolicitedTelemetry { shard: 0 },
            "got: {err}"
        );
    }

    /// A captured response replayed verbatim for a later request: the
    /// monotonic request ids make every replay a typed mismatch.
    #[test]
    fn replayed_captured_response_is_rejected_by_id() {
        let fx = rpc_util::fixture(Scheme::ImageProof, 1);
        let captured: Arc<Mutex<Option<Response>>> = Arc::new(Mutex::new(None));
        let proxy = Proxy::start(
            fx.endpoints[0].primary,
            Fault::MapResponses(Arc::new(move |resp| {
                Some(match resp {
                    Response::Query { id, payload } => {
                        let mut slot = captured.lock().expect("capture slot");
                        match slot.take() {
                            // First query response: record and forward.
                            None => {
                                let genuine = Response::Query { id, payload };
                                *slot = Some(genuine.clone());
                                genuine
                            }
                            // Every later one: replay the capture.
                            Some(replay) => {
                                *slot = Some(replay.clone());
                                replay
                            }
                        }
                    }
                    other => other,
                })
            })),
        );
        let mut coord = connect_with_proxied_shard0(&fx, &proxy);
        let features = fx.corpus().query_from_image(5, 20, 1);
        let (first, _) = coord.query(&features, 3).expect("first query is genuine");
        fx.client
            .verify_sharded(&features, 3, &first, &fx.manifest)
            .expect("genuine first response verifies");
        let err = coord
            .query(&features, 3)
            .expect_err("replayed capture must not satisfy a fresh request");
        assert!(
            matches!(err, RpcError::ResponseIdMismatch { shard: 0, .. }),
            "got: {err}"
        );
    }
}

/// Exhaustiveness reminder: the matrix above exercises ManifestInvalid,
/// ShardCountMismatch, UnknownShard, DuplicateShard, ShardMissing,
/// Shard{RootSignatureInvalid | Inv | ImageSignatureInvalid | stale VO},
/// TrimShapeInvalid (overlong claim and j > k), ContributionInflated,
/// FenceExceeded, FenceWithFreeSlot, SharedIndexInvalid,
/// SharedPatchMismatch, and MergeMismatch. Adding a ShardedError variant
/// makes this match non-exhaustive — extend the attack matrix when that
/// happens.
#[test]
fn the_attack_matrix_tracks_every_error_variant() {
    let probe = |e: &ShardedError| match e {
        ShardedError::ManifestInvalid
        | ShardedError::ShardCountMismatch { .. }
        | ShardedError::UnknownShard { .. }
        | ShardedError::DuplicateShard { .. }
        | ShardedError::ShardMissing { .. }
        | ShardedError::Shard { .. }
        | ShardedError::TrimShapeInvalid { .. }
        | ShardedError::ContributionInflated { .. }
        | ShardedError::FenceExceeded { .. }
        | ShardedError::FenceWithFreeSlot { .. }
        | ShardedError::SharedIndexInvalid { .. }
        | ShardedError::SharedPatchMismatch { .. }
        | ShardedError::DuplicateCandidate { .. }
        | ShardedError::AssignmentMismatch { .. }
        | ShardedError::MergeMismatch => (),
    };
    probe(&ShardedError::MergeMismatch);
}
