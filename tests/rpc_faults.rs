//! Fault-injection suite for the socket RPC layer.
//!
//! A byte-mangling proxy (see `rpc_util::Proxy`) sits between the
//! coordinator and a shard server and injects transport faults: partial
//! writes, mid-frame connection resets, stalled shards, duplicated and
//! rewritten response frames, and hostile length prefixes. The contract
//! under test is the module's robustness claim: every fault surfaces as
//! exactly one typed `RpcError` **or** as a successful failover to a
//! manifest-pinned replica — never a panic, and never a response that
//! differs from the in-process deployment's bytes.

mod rpc_util;

use imageproof_core::rpc::{CoordinatorConfig, Response, RpcCoordinator, RpcError, ShardEndpoint};
use imageproof_core::Scheme;
use imageproof_crypto::wire::Encode;
use rpc_util::{fixture, quick_config, Fault, Proxy};
use std::sync::Arc;

/// Connects a coordinator whose single shard is reached through `proxy`.
fn connect_via_proxy(
    fx: &rpc_util::Fixture,
    proxy: &Proxy,
    config: CoordinatorConfig,
) -> Result<RpcCoordinator, RpcError> {
    assert_eq!(fx.endpoints.len(), 1, "proxy harness is single-shard");
    RpcCoordinator::connect(
        vec![ShardEndpoint::single(proxy.addr())],
        &fx.manifest,
        config,
    )
}

#[test]
fn partial_writes_reassemble_into_identical_bytes() {
    // Worst-case fragmentation: every response byte arrives in its own
    // read. The frame buffer must reassemble the stream into the same
    // bytes the in-process engine produces.
    let fx = fixture(Scheme::ImageProof, 1);
    let proxy = Proxy::start(fx.endpoints[0].primary, Fault::Trickle);
    let mut config = quick_config();
    config.request_timeout_seconds = 30.0; // trickling is slow by design
    let mut coord = connect_via_proxy(&fx, &proxy, config).expect("connect through trickle proxy");
    let features = fx.corpus().query_from_image(5, 20, 1);
    let (resp, _) = coord.query(&features, 3).expect("trickled query");
    let (local, _) = fx.sp.query(&features, 3);
    assert_eq!(
        resp.vo.to_wire(),
        local.vo.to_wire(),
        "trickled bytes diverged from in-process bytes"
    );
    fx.client
        .verify_sharded(&features, 3, &resp, &fx.manifest)
        .expect("client verifies trickled response");
    assert_eq!(coord.stats().failovers, 0);
}

#[test]
fn mid_frame_reset_is_a_typed_close_not_a_panic() {
    // Cut the connection 10 bytes into the first response frame. With no
    // replica to fail over to, the close must surface as the typed
    // connection fault that triggered it.
    let fx = fixture(Scheme::ImageProof, 1);
    let proxy = Proxy::start(fx.endpoints[0].primary, Fault::ResetAfterResponseBytes(10));
    let mut coord = connect_via_proxy(&fx, &proxy, quick_config()).expect("connect");
    let features = fx.corpus().query_from_image(5, 20, 1);
    let err = coord.query(&features, 3).expect_err("mid-frame reset");
    assert!(
        matches!(
            err,
            RpcError::ConnectionClosed { shard: 0 } | RpcError::Io { shard: 0, .. }
        ),
        "expected a typed connection fault, got: {err}"
    );
}

#[test]
fn stalled_shard_times_out_when_no_replica_exists() {
    // The proxy forwards the request but swallows every response byte:
    // the shard looks alive but never answers. The per-shard deadline
    // must convert that into ShardTimeout.
    let fx = fixture(Scheme::ImageProof, 1);
    let proxy = Proxy::start(fx.endpoints[0].primary, Fault::StallResponses);
    let mut coord = connect_via_proxy(&fx, &proxy, quick_config()).expect("connect");
    let features = fx.corpus().query_from_image(5, 20, 1);
    let err = coord.query(&features, 3).expect_err("stalled shard");
    assert_eq!(err, RpcError::ShardTimeout { shard: 0 }, "got: {err}");
}

#[test]
fn swallowed_request_times_out_too() {
    // Same deadline when the stall is on the request path (the server
    // never even sees the query).
    let fx = fixture(Scheme::ImageProof, 1);
    let proxy = Proxy::start(fx.endpoints[0].primary, Fault::StallRequests);
    let mut coord = connect_via_proxy(&fx, &proxy, quick_config()).expect("connect");
    let features = fx.corpus().query_from_image(5, 20, 1);
    let err = coord.query(&features, 3).expect_err("swallowed request");
    assert_eq!(err, RpcError::ShardTimeout { shard: 0 }, "got: {err}");
}

#[test]
fn stalled_primary_fails_over_to_replica_with_identical_bytes() {
    // Endpoint chain: stalled proxy first, healthy server as replica. The
    // timeout must trigger exactly one failover — hello re-verified
    // against the manifest pin — and the replayed query must produce the
    // same bytes as the in-process deployment.
    let fx = fixture(Scheme::ImageProof, 1);
    let healthy = fx.endpoints[0].primary;
    let proxy = Proxy::start(healthy, Fault::StallResponses);
    let endpoints = vec![ShardEndpoint::with_replicas(proxy.addr(), vec![healthy])];
    let mut coord =
        RpcCoordinator::connect(endpoints, &fx.manifest, quick_config()).expect("connect");
    let features = fx.corpus().query_from_image(5, 20, 1);
    let (resp, _) = coord.query(&features, 3).expect("failover query");
    let (local, _) = fx.sp.query(&features, 3);
    assert_eq!(
        resp.vo.to_wire(),
        local.vo.to_wire(),
        "failover response diverged from in-process bytes"
    );
    fx.client
        .verify_sharded(&features, 3, &resp, &fx.manifest)
        .expect("client verifies failover response");
    assert_eq!(coord.stats().failovers, 1, "expected exactly one failover");
    // The replica connection keeps serving subsequent queries.
    let follow = fx.corpus().query_from_image(9, 18, 2);
    let (resp2, _) = coord.query(&follow, 3).expect("post-failover query");
    let (local2, _) = fx.sp.query(&follow, 3);
    assert_eq!(resp2.vo.to_wire(), local2.vo.to_wire());
    assert_eq!(coord.stats().failovers, 1, "no further failover expected");
}

#[test]
fn duplicated_response_frame_is_an_id_mismatch_on_the_next_request() {
    // The proxy forwards the first response frame twice. The first query
    // consumes one copy and succeeds; the stale duplicate then collides
    // with the next request's fresh id.
    let fx = fixture(Scheme::ImageProof, 1);
    let proxy = Proxy::start(fx.endpoints[0].primary, Fault::DuplicateFirstResponseFrame);
    let mut coord = connect_via_proxy(&fx, &proxy, quick_config()).expect("connect");
    let features = fx.corpus().query_from_image(5, 20, 1);
    let (resp, _) = coord.query(&features, 3).expect("first query succeeds");
    let (local, _) = fx.sp.query(&features, 3);
    assert_eq!(resp.vo.to_wire(), local.vo.to_wire());
    let err = coord
        .query(&features, 3)
        .expect_err("stale duplicate must not satisfy a fresh request");
    assert!(
        matches!(err, RpcError::ResponseIdMismatch { shard: 0, .. }),
        "got: {err}"
    );
}

#[test]
fn rewritten_response_ids_are_rejected_as_replays() {
    // A wire-level adversary re-stamps every response with a different
    // request id (a replay/substitution attempt at the id layer).
    let fx = fixture(Scheme::ImageProof, 1);
    let proxy = Proxy::start(
        fx.endpoints[0].primary,
        Fault::MapResponses(Arc::new(|resp| {
            Some(match resp {
                Response::Query { id, payload } => Response::Query {
                    id: id + 1000,
                    payload,
                },
                other => other,
            })
        })),
    );
    let mut coord = connect_via_proxy(&fx, &proxy, quick_config()).expect("connect");
    let features = fx.corpus().query_from_image(5, 20, 1);
    let err = coord.query(&features, 3).expect_err("re-stamped response");
    assert!(
        matches!(
            err,
            RpcError::ResponseIdMismatch {
                shard: 0,
                expected,
                got,
            } if got == expected + 1000
        ),
        "got: {err}"
    );
}

#[test]
fn hostile_length_prefix_is_refused_before_allocation() {
    // The proxy answers the query with a frame header announcing
    // u32::MAX bytes. The coordinator must refuse it as FrameTooLarge
    // without ever allocating the announced length.
    let fx = fixture(Scheme::ImageProof, 1);
    let proxy = Proxy::start(fx.endpoints[0].primary, Fault::HostileLengthHeader);
    let mut coord = connect_via_proxy(&fx, &proxy, quick_config()).expect("connect");
    let features = fx.corpus().query_from_image(5, 20, 1);
    let err = coord.query(&features, 3).expect_err("hostile length");
    assert_eq!(
        err,
        RpcError::FrameTooLarge {
            len: u32::MAX as u64
        },
        "got: {err}"
    );
}

#[test]
fn transparent_proxy_is_invisible() {
    // Control: the proxy with no fault armed changes nothing.
    let fx = fixture(Scheme::OptimizedBoth, 1);
    let proxy = Proxy::start(fx.endpoints[0].primary, Fault::Transparent);
    let mut coord = connect_via_proxy(&fx, &proxy, quick_config()).expect("connect");
    let features = fx.corpus().query_from_image(5, 20, 1);
    let (resp, _) = coord.query(&features, 3).expect("proxied query");
    let (local, _) = fx.sp.query(&features, 3);
    assert_eq!(resp.vo.to_wire(), local.vo.to_wire());
    assert_eq!(coord.stats().failovers, 0);
}

#[test]
fn swapped_endpoints_fail_the_manifest_pin() {
    // Pointing shard 0's endpoint at shard 1's server: the hello carries
    // the wrong shard id and the wrong pinned root, so connect must
    // reject the deployment outright.
    let fx = fixture(Scheme::ImageProof, 2);
    let swapped = vec![fx.endpoints[1].clone(), fx.endpoints[0].clone()];
    let err = RpcCoordinator::connect(swapped, &fx.manifest, quick_config())
        .err()
        .expect("swapped endpoints must not connect");
    assert!(matches!(err, RpcError::HelloMismatch { .. }), "got: {err}");
}

#[test]
fn endpoint_count_must_cover_the_manifest() {
    let fx = fixture(Scheme::ImageProof, 2);
    let err = RpcCoordinator::connect(vec![fx.endpoints[0].clone()], &fx.manifest, quick_config())
        .err()
        .expect("short endpoint list must not connect");
    assert_eq!(
        err,
        RpcError::EndpointCountMismatch {
            expected: 2,
            got: 1
        },
        "got: {err}"
    );
}

#[test]
fn heartbeat_loss_fails_over_before_any_query_times_out() {
    // Proactive failure detection: with a generous *request* deadline (so
    // a stalled query would block for a long time) but a tight heartbeat
    // deadline, two heartbeat sweeps must walk the state machine
    // healthy → degraded → failed-over-healthy and promote the
    // manifest-pinned replica — all before any query is even issued. The
    // query that follows then completes promptly on the replica with
    // bytes identical to the in-process deployment.
    use imageproof_core::rpc::ShardHealthState;
    use imageproof_obs::EventKind;

    let fx = fixture(Scheme::ImageProof, 1);
    let healthy = fx.endpoints[0].primary;
    let proxy = Proxy::start(healthy, Fault::StallResponses);
    let endpoints = vec![ShardEndpoint::with_replicas(proxy.addr(), vec![healthy])];
    let mut config = quick_config();
    config.request_timeout_seconds = 30.0; // heartbeats must win, not this
    let request_deadline = config.request_timeout_seconds;
    let mut coord = RpcCoordinator::connect(endpoints, &fx.manifest, config).expect("connect");
    assert_eq!(coord.health()[0].state, ShardHealthState::Healthy);

    // Sweep 1: the stalled primary misses its heartbeat — degraded, but
    // the endpoint chain is not walked yet.
    let detect = imageproof_obs::Stopwatch::start();
    assert_eq!(coord.heartbeat(), vec![ShardHealthState::Degraded]);
    assert_eq!(
        coord.stats().failovers,
        0,
        "degraded must not fail over yet"
    );

    // Sweep 2: the second miss crosses failover_after_misses — the
    // replica is promoted (hello re-verified against the manifest pin)
    // and the shard is healthy again.
    assert_eq!(coord.heartbeat(), vec![ShardHealthState::Healthy]);
    assert_eq!(coord.stats().failovers, 1, "expected exactly one failover");
    let detection_seconds = detect.elapsed_seconds();
    assert!(
        detection_seconds < request_deadline / 2.0,
        "heartbeat failover took {detection_seconds:.2}s — not ahead of the \
         {request_deadline:.0}s query deadline"
    );

    // The promoted replica serves the identical bytes, well under the
    // request deadline (nothing is waiting on the stalled primary).
    let features = fx.corpus().query_from_image(5, 20, 1);
    let served = imageproof_obs::Stopwatch::start();
    let (resp, _) = coord.query(&features, 3).expect("post-failover query");
    assert!(
        served.elapsed_seconds() < request_deadline / 2.0,
        "post-failover query still crawled"
    );
    let (local, _) = fx.sp.query(&features, 3);
    assert_eq!(
        resp.vo.to_wire(),
        local.vo.to_wire(),
        "post-failover response diverged from in-process bytes"
    );
    fx.client
        .verify_sharded(&features, 3, &resp, &fx.manifest)
        .expect("client verifies post-failover response");

    // The event log tells the whole story with typed causes.
    let events = coord.fleet().events();
    assert!(
        events.count(EventKind::Timeout) >= 2,
        "both heartbeat misses must be logged"
    );
    assert_eq!(events.count(EventKind::Failover), 1);
    assert!(
        events.count(EventKind::HealthTransition) >= 2,
        "healthy→degraded and degraded→healthy must both be logged"
    );
    assert!(
        events.count(EventKind::HelloReverify) >= 1,
        "the replica promotion must log its manifest re-verification"
    );
}
