//! Shard-vs-monolith differential harness.
//!
//! The sharded deployment's whole claim is *exact* equivalence: because
//! every shard shares one codebook and one global impact model, and an
//! image's postings live only in its own shard, per-shard scores are
//! bit-identical to the monolith's and the cross-shard merge under
//! `(score desc, id asc)` must reproduce the monolith top-k exactly —
//! ids, scores, and tie resolution included. These tests prove that for
//! every scheme and shard count, including ties straddling the k-th
//! position and the degenerate single-shard deployment (whose sub-VO must
//! be byte-identical to the monolith VO).

use std::sync::OnceLock;

use imageproof_akm::{AkmParams, Codebook, SparseBovw};
use imageproof_core::{
    shard_of, Client, Concurrency, Owner, Scheme, ServiceProvider, ShardedSp, SystemConfig,
};
use imageproof_crypto::wire::Encode;
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind, ImageId};
use proptest::prelude::*;

const OWNER_SEED: [u8; 32] = [21u8; 32];

fn akm() -> AkmParams {
    AkmParams {
        n_clusters: 48,
        n_trees: 3,
        max_leaf_size: 2,
        max_checks: 16,
        iterations: 2,
        seed: 7,
    }
}

/// Corpus + codebook + encodings, trained once and reused across schemes
/// and shard counts so every build indexes identical inputs.
struct Prepared {
    corpus: Corpus,
    codebook: Codebook,
    encodings: Vec<(ImageId, SparseBovw)>,
}

fn prepare(corpus: Corpus, akm: &AkmParams) -> Prepared {
    let codebook = Codebook::train(corpus.config.kind, corpus.all_features(), akm);
    let encodings: Vec<(ImageId, SparseBovw)> = corpus
        .images
        .iter()
        .map(|img| {
            (
                img.id,
                SparseBovw::encode(&codebook, img.features.iter().map(Vec::as_slice)),
            )
        })
        .collect();
    Prepared {
        corpus,
        codebook,
        encodings,
    }
}

fn base() -> &'static Prepared {
    static BASE: OnceLock<Prepared> = OnceLock::new();
    BASE.get_or_init(|| {
        let corpus = Corpus::generate(&CorpusConfig {
            kind: DescriptorKind::Surf,
            n_images: 60,
            n_latent_words: 60,
            ..CorpusConfig::small(DescriptorKind::Surf)
        });
        prepare(corpus, &akm())
    })
}

fn monolith(p: &Prepared, scheme: Scheme) -> (ServiceProvider, Client) {
    let owner = Owner::new(&OWNER_SEED);
    let (db, published) =
        owner.build_system_prepared(&p.corpus, p.codebook.clone(), p.encodings.clone(), scheme);
    (ServiceProvider::new(db), Client::new(published))
}

fn sharded(
    p: &Prepared,
    scheme: Scheme,
    shard_count: usize,
) -> (ShardedSp, Client, imageproof_core::ShardManifest) {
    let owner = Owner::new(&OWNER_SEED);
    let system = owner.build_sharded_system_prepared_config(
        &p.corpus,
        p.codebook.clone(),
        p.encodings.clone(),
        SystemConfig::new(scheme),
        shard_count,
    );
    (
        ShardedSp::new(system.shards),
        Client::new(system.published),
        system.manifest,
    )
}

/// Asserts one query agrees exactly between the two deployments; returns
/// the verified global top-k.
fn assert_query_matches(
    label: &str,
    (mono_sp, mono_client): (&ServiceProvider, &Client),
    (sp, client, manifest): (&ShardedSp, &Client, &imageproof_core::ShardManifest),
    features: &[Vec<f32>],
    k: usize,
) -> Vec<(ImageId, f32)> {
    let (mono_resp, _) = mono_sp.query(features, k);
    let mono = mono_client
        .verify(features, k, &mono_resp)
        .unwrap_or_else(|e| panic!("{label}: monolith rejected honest SP: {e}"));
    let (resp, stats) = sp.query(features, k);
    let verified = client
        .verify_sharded(features, k, &resp, manifest)
        .unwrap_or_else(|e| panic!("{label}: sharded client rejected honest SP: {e}"));
    assert_eq!(
        verified.topk, mono.topk,
        "{label}: sharded top-k diverged from monolith"
    );
    assert_eq!(
        verified.assignments, mono.assignments,
        "{label}: BoVW assignments diverged"
    );
    // Coverage bookkeeping: one trimmed sub-VO per shard, contributions
    // sum to exactly the verified winners, claims never exceed the trim
    // bound k' = min(j + 1, k), and the SP issued one trim re-query per
    // shard trimmed below the full fan-out k.
    assert_eq!(resp.vo.shards.len(), sp.shard_count(), "{label}");
    let contributed: usize = resp
        .vo
        .shards
        .iter()
        .map(|svo| svo.contributed as usize)
        .sum();
    assert_eq!(
        contributed,
        verified.topk.len(),
        "{label}: contributions do not sum to the winner count"
    );
    for svo in &resp.vo.shards {
        let k_trim = (svo.contributed as usize + 1).min(k);
        assert!(
            svo.claimed.len() <= k_trim,
            "{label}: shard {} claim overflows its trim bound",
            svo.shard_id
        );
    }
    let trimmed_shards = resp
        .vo
        .shards
        .iter()
        .filter(|svo| (svo.contributed as usize) + 1 < k)
        .count();
    assert_eq!(stats.trim_queries, trimmed_shards, "{label}");
    // Returned payloads are the genuine winner images in merge order.
    let ids: Vec<ImageId> = resp.results.iter().map(|r| r.id).collect();
    let want: Vec<ImageId> = verified.topk.iter().map(|&(id, _)| id).collect();
    assert_eq!(ids, want, "{label}: result rows not in merge order");
    verified.topk
}

#[test]
fn sharded_matches_monolith_for_every_scheme_and_shard_count() {
    let p = base();
    for scheme in Scheme::ALL {
        let (mono_sp, mono_client) = monolith(p, scheme);
        for &s in &[1usize, 2, 4, 8] {
            let (sp, client, manifest) = sharded(p, scheme, s);
            for (source, n_features, seed, k) in [(5u64, 24, 1u64, 5usize), (33, 20, 2, 3)] {
                let features = p.corpus.query_from_image(source, n_features, seed);
                let label = format!("{scheme:?} S={s} q={source} k={k}");
                let topk = assert_query_matches(
                    &label,
                    (&mono_sp, &mono_client),
                    (&sp, &client, &manifest),
                    &features,
                    k,
                );
                assert_eq!(topk.len(), k, "{label}: short result on a large corpus");
            }
        }
    }
}

#[test]
fn ties_at_the_kth_position_merge_identically() {
    // Duplicate image 9's features into images 10 and 15: the trio encodes
    // to identical BoVW vectors, so all three always score identically.
    // The ids land in different shards for S ∈ {2, 4} (9 ≡ 1, 10 ≡ 2,
    // 15 ≡ 3 mod 4), so a k cutting through the trio forces the
    // cross-shard merge to resolve a genuine tie exactly like the
    // monolith's (score desc, id asc) order.
    let mut corpus = Corpus::generate(&CorpusConfig {
        kind: DescriptorKind::Surf,
        n_images: 60,
        n_latent_words: 60,
        ..CorpusConfig::small(DescriptorKind::Surf)
    });
    let features9 = corpus.images[9].features.clone();
    let words9 = corpus.images[9].latent_words.clone();
    for dup in [10usize, 15] {
        corpus.images[dup].features = features9.clone();
        corpus.images[dup].latent_words = words9.clone();
    }
    let p = prepare(corpus, &akm());
    let trio: &[ImageId] = &[9, 10, 15];

    for scheme in [Scheme::ImageProof, Scheme::OptimizedBoth] {
        let (mono_sp, mono_client) = monolith(&p, scheme);
        // Locate the trio in a deep monolith ranking and pick ks that cut
        // through it, so the tie genuinely straddles the k-th position.
        let features = p.corpus.query_from_image(9, 24, 11);
        let (deep, _) = mono_sp.query(&features, 10);
        let deep = mono_client
            .verify(&features, 10, &deep)
            .expect("deep query");
        let positions: Vec<usize> = deep
            .topk
            .iter()
            .enumerate()
            .filter(|(_, &(id, _))| trio.contains(&id))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positions.len(), 3, "{scheme:?}: trio missing from top-10");
        let tie_score = deep.topk[positions[0]].1;
        for &pos in &positions {
            assert_eq!(deep.topk[pos].1, tie_score, "{scheme:?}: trio not tied");
        }

        for &s in &[2usize, 4] {
            let (sp, client, manifest) = sharded(&p, scheme, s);
            for k in [positions[0] + 1, positions[1] + 1] {
                let label = format!("{scheme:?} S={s} k={k} (tie cut)");
                let topk = assert_query_matches(
                    &label,
                    (&mono_sp, &mono_client),
                    (&sp, &client, &manifest),
                    &features,
                    k,
                );
                // The cut really splits the trio: some but not all members
                // are inside the verified top-k.
                let inside = topk.iter().filter(|&&(id, _)| trio.contains(&id)).count();
                assert!(inside > 0 && inside < 3, "{label}: cut missed the tie");
            }
        }
    }
}

#[test]
fn single_shard_sub_vo_is_byte_identical_to_the_monolith_vo() {
    let p = base();
    for scheme in [Scheme::Baseline, Scheme::ImageProof, Scheme::OptimizedBoth] {
        let (mono_sp, _) = monolith(p, scheme);
        let (sp, client, manifest) = sharded(p, scheme, 1);
        let features = p.corpus.query_from_image(11, 20, 5);
        let (mono_resp, _) = mono_sp.query(&features, 4);
        let (resp, _) = sp.query(&features, 4);
        assert_eq!(resp.vo.shards.len(), 1, "{scheme:?}");
        let sub = &resp.vo.shards[0];
        assert_eq!(sub.shard_id, 0, "{scheme:?}");
        assert_eq!(
            sub.contributed as usize,
            mono_resp.results.len(),
            "{scheme:?}: the lone shard must contribute every winner"
        );
        // A single shard can never patch against a shared template, so the
        // sub-VO components must be bit-equal to the monolith proof.
        let bovw = sub
            .resolve_bovw(&resp.vo.shared)
            .expect("S=1 BoVW VO resolves");
        assert_eq!(
            bovw.to_wire(),
            mono_resp.vo.bovw.to_wire(),
            "{scheme:?}: S=1 BoVW sub-VO differs from the monolith VO"
        );
        assert_eq!(
            sub.inv.to_wire(),
            mono_resp.vo.inv.to_wire(),
            "{scheme:?}: S=1 inverted-index sub-VO differs from the monolith VO"
        );
        assert_eq!(
            sub.signatures, mono_resp.vo.signatures,
            "{scheme:?}: S=1 signature set differs from the monolith VO"
        );
        let mono_ids: Vec<ImageId> = mono_resp.results.iter().map(|r| r.id).collect();
        assert_eq!(sub.claimed, mono_ids, "{scheme:?}");
        for (a, b) in resp.results.iter().zip(&mono_resp.results) {
            assert_eq!(a.id, b.id, "{scheme:?}");
            assert_eq!(a.data, b.data, "{scheme:?}");
            assert_eq!(a.score, b.score, "{scheme:?}");
        }
        client
            .verify_sharded(&features, 4, &resp, &manifest)
            .expect("S=1 verifies");
    }
}

#[test]
fn sharded_build_commits_each_shard_root_and_partitions_by_id() {
    let p = base();
    let owner = Owner::new(&OWNER_SEED);
    let system = owner.build_sharded_system_prepared_config(
        &p.corpus,
        p.codebook.clone(),
        p.encodings.clone(),
        SystemConfig::new(Scheme::ImageProof),
        4,
    );
    assert_eq!(system.manifest.shard_count(), 4);
    assert!(system.manifest.verify(&system.published.public_key));
    let mut total = 0;
    for (i, db) in system.shards.iter().enumerate() {
        assert_eq!(
            system.manifest.shard_roots[i],
            db.mrkd.combined_root_digest(),
            "shard {i}: manifest root does not match the built ADS"
        );
        for &id in db.images.keys() {
            assert_eq!(shard_of(id, 4), i, "image {id} placed in wrong shard");
        }
        assert_eq!(db.images.len(), db.encodings.len(), "shard {i}");
        total += db.images.len();
    }
    assert_eq!(
        total,
        p.corpus.images.len(),
        "partition lost or duplicated images"
    );
}

#[test]
fn sharded_queries_are_thread_count_invariant() {
    let p = base();
    let (sp, client, manifest) = sharded(p, Scheme::OptimizedBoth, 4);
    let features = p.corpus.query_from_image(22, 24, 9);
    let (serial, _) = sp.query(&features, 5);
    for threads in [2usize, 4, 8] {
        let (parallel, _) = sp.query_with(&features, 5, Concurrency::new(threads));
        assert_eq!(
            parallel.vo.to_wire(),
            serial.vo.to_wire(),
            "{threads} threads: sharded VO bytes differ from serial"
        );
        let ids: Vec<ImageId> = parallel.results.iter().map(|r| r.id).collect();
        let serial_ids: Vec<ImageId> = serial.results.iter().map(|r| r.id).collect();
        assert_eq!(ids, serial_ids, "{threads} threads");
        client
            .verify_sharded(&features, 5, &parallel, &manifest)
            .expect("parallel response verifies");
    }
}

// ---------------------------------------------------------------------------
// Randomized depth with the real proptest crate (the offline stub
// toolchain compiles this block away).

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_dbs_and_shard_counts_match_the_monolith(
        seed in 0usize..1000,
        shard_count in 1usize..6,
        k in 1usize..7,
        n_images in 24usize..48,
    ) {
        let corpus = Corpus::generate(&CorpusConfig {
            kind: DescriptorKind::Surf,
            n_images,
            n_latent_words: 40,
            features_per_image: 24,
            seed: seed as u64,
            ..CorpusConfig::small(DescriptorKind::Surf)
        });
        let akm = AkmParams {
            n_clusters: 24,
            n_trees: 2,
            max_leaf_size: 2,
            max_checks: 8,
            iterations: 1,
            seed: seed as u64 + 1,
        };
        let p = prepare(corpus, &akm);
        let (mono_sp, mono_client) = monolith(&p, Scheme::ImageProof);
        let (sp, client, manifest) = sharded(&p, Scheme::ImageProof, shard_count);
        let source = (seed % n_images) as u64;
        let features = p.corpus.query_from_image(source, 16, seed as u64);
        assert_query_matches(
            &format!("random seed={seed} S={shard_count} k={k}"),
            (&mono_sp, &mono_client),
            (&sp, &client, &manifest),
            &features,
            k,
        );
    }
}
