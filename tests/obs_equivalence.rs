//! Zero-perturbation proof for the observability layer: with recording
//! enabled vs disabled, every scheme and thread count must produce
//! byte-identical wire-serialized VOs and identical top-k results, for
//! both the monolithic SP and the sharded fan-out path. Observability may
//! only change what is *measured*, never what is *served*.
//!
//! The whole matrix lives in one `#[test]` because the enable flag is a
//! process-wide global — toggling it from concurrently running tests
//! would race the flag itself (the VO bytes are unaffected either way,
//! but the span/seconds assertions would become flaky).
//!
//! The socket section extends the proof to the RPC deployment: a
//! recording proxy captures every payload frame a shard serves, and the
//! captured *payload bytes* must be identical with recording on and off —
//! telemetry rides a separate sidecar frame that appears only when
//! recording is enabled, never inside the served payload.

mod rpc_util;

use imageproof_core::rpc::{CoordinatorConfig, Response, RpcCoordinator, ShardEndpoint};
use imageproof_suite::akm::{AkmParams, Codebook, SparseBovw};
use imageproof_suite::core::{
    Client, Concurrency, Owner, Scheme, ServiceProvider, ShardedSp, SpStats, SystemConfig,
};
use imageproof_suite::crypto::wire::Encode;
use imageproof_suite::obs;
use imageproof_suite::vision::{Corpus, CorpusConfig, DescriptorKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SHARDS: usize = 3;
const K: usize = 5;

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        n_images: 48,
        n_latent_words: 64,
        seed: 0x0B5,
        ..CorpusConfig::small(DescriptorKind::Surf)
    })
}

fn akm() -> AkmParams {
    AkmParams {
        n_clusters: 48,
        n_trees: 3,
        max_leaf_size: 2,
        max_checks: 12,
        iterations: 1,
        seed: 23,
    }
}

/// Restores the recording flag even if an assertion panics, so one failure
/// cannot cascade into unrelated tests of this binary observing a
/// half-disabled registry.
struct FlagGuard;

impl Drop for FlagGuard {
    fn drop(&mut self) {
        obs::set_enabled(true);
    }
}

#[test]
fn vo_bytes_and_topk_identical_with_obs_on_and_off() {
    let _guard = FlagGuard;
    let corpus = corpus();
    let owner = Owner::new(&[0x51u8; 32]);
    let params = akm();
    let codebook = Codebook::train(corpus.config.kind, corpus.all_features(), &params);
    let encodings: Vec<_> = corpus
        .images
        .iter()
        .map(|img| {
            (
                img.id,
                SparseBovw::encode(&codebook, img.features.iter().map(Vec::as_slice)),
            )
        })
        .collect();
    let features = corpus.query_from_image(11, 20, 0x0DD5);

    for scheme in Scheme::ALL {
        // Builds happen with recording ON; the query path is what the
        // on/off matrix exercises (build determinism is covered by the
        // parallel_equivalence suite).
        let (db, published) = owner.build_system_with_codebook(&corpus, codebook.clone(), scheme);
        let sp = ServiceProvider::new(db);
        let client = Client::new(published);

        let sharded_system = owner.build_sharded_system_prepared_config(
            &corpus,
            codebook.clone(),
            encodings.clone(),
            SystemConfig::new(scheme),
            SHARDS,
        );
        let sharded_sp = ShardedSp::new(sharded_system.shards);
        let sharded_client = Client::new(sharded_system.published);
        let manifest = sharded_system.manifest;

        for threads in THREAD_COUNTS {
            let conc = Concurrency::new(threads);

            // Monolithic SP.
            obs::set_enabled(true);
            let (resp_on, stats_on, prof_on) = sp.query_profiled(&features, K, conc);
            obs::set_enabled(false);
            let (resp_off, stats_off, prof_off) = sp.query_profiled(&features, K, conc);
            obs::set_enabled(true);

            assert_eq!(
                resp_on.vo.to_wire(),
                resp_off.vo.to_wire(),
                "{scheme:?}/{threads}t: monolith VO bytes must not depend on obs"
            );
            let ids = |r: &imageproof_suite::core::QueryResponse| -> Vec<u64> {
                r.results.iter().map(|x| x.id).collect()
            };
            assert_eq!(
                ids(&resp_on),
                ids(&resp_off),
                "{scheme:?}/{threads}t: top-k"
            );
            assert_counters_equal(&stats_on, &stats_off, scheme, threads);
            // Seconds are span views: populated when recording, zero when
            // disabled; either way the served bytes above are identical.
            assert!(stats_on.bovw_seconds >= 0.0 && stats_on.inv_seconds >= 0.0);
            assert_eq!(
                stats_off.bovw_seconds, 0.0,
                "{scheme:?}: disabled spans read 0"
            );
            assert_eq!(
                stats_off.inv_seconds, 0.0,
                "{scheme:?}: disabled spans read 0"
            );
            assert!(!prof_on.is_empty(), "{scheme:?}: enabled profile has spans");
            assert!(prof_off.is_empty(), "{scheme:?}: disabled profile is empty");

            // Both responses verify to the same top-k.
            let v_on = client.verify(&features, K, &resp_on).expect("on verifies");
            let v_off = client
                .verify(&features, K, &resp_off)
                .expect("off verifies");
            assert_eq!(v_on.topk, v_off.topk);

            // Sharded fan-out.
            obs::set_enabled(true);
            let (sresp_on, sstats_on, sprof_on) = sharded_sp.query_profiled(&features, K, conc);
            obs::set_enabled(false);
            let (sresp_off, sstats_off, sprof_off) = sharded_sp.query_profiled(&features, K, conc);
            obs::set_enabled(true);

            assert_eq!(
                sresp_on.vo.to_wire(),
                sresp_off.vo.to_wire(),
                "{scheme:?}/{threads}t: sharded VO bytes must not depend on obs"
            );
            let sids: Vec<u64> = sresp_on.results.iter().map(|x| x.id).collect();
            let sids_off: Vec<u64> = sresp_off.results.iter().map(|x| x.id).collect();
            assert_eq!(sids, sids_off, "{scheme:?}/{threads}t: sharded top-k");
            assert_eq!(sstats_on.trim_queries, sstats_off.trim_queries);
            assert_eq!(sstats_on.trimmed_entries, sstats_off.trimmed_entries);
            assert_eq!(sstats_on.dedup_bytes_saved, sstats_off.dedup_bytes_saved);
            assert_eq!(sstats_on.total_popped(), sstats_off.total_popped());
            assert_eq!(
                sstats_on.total_hashes_computed(),
                sstats_off.total_hashes_computed()
            );
            assert_eq!(sstats_off.merge_seconds, 0.0);
            assert_eq!(sstats_off.wall_seconds, 0.0);
            assert!(!sprof_on.is_empty() && sprof_off.is_empty());

            let sv_on = sharded_client
                .verify_sharded(&features, K, &sresp_on, &manifest)
                .expect("sharded on verifies");
            let sv_off = sharded_client
                .verify_sharded(&features, K, &sresp_off, &manifest)
                .expect("sharded off verifies");
            assert_eq!(sv_on.topk, sv_off.topk);

            // The sharded top-k equals the monolith's for the same corpus
            // (obs must not perturb the cross-shard merge either).
            assert_eq!(
                sids,
                ids(&resp_on),
                "{scheme:?}/{threads}t: sharded == monolith"
            );
        }

        // --- Socket path: zero wire-byte perturbation over RPC ---
        // Serve an identical build over the socket boundary with a
        // recording proxy in front of shard 0. The proxy captures the
        // *payload* bytes of every Query/Trim frame the shard emits and
        // counts telemetry sidecar frames separately. Toggling recording
        // must leave the payload bytes captured off the wire identical,
        // keep the assembled VO equal to the in-process deployment's
        // bytes, and only add/remove the telemetry sidecar frame.
        let served = owner.build_sharded_system_prepared_config(
            &corpus,
            codebook.clone(),
            encodings.clone(),
            SystemConfig::new(scheme),
            SHARDS,
        );
        let (servers, endpoints) = rpc_util::launch_shards(ShardedSp::new(served.shards));
        let payloads: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let telemetry_frames = Arc::new(AtomicUsize::new(0));
        let (rec, tel) = (Arc::clone(&payloads), Arc::clone(&telemetry_frames));
        let proxy = rpc_util::Proxy::start(
            endpoints[0].primary,
            rpc_util::Fault::MapResponses(Arc::new(move |resp| {
                match &resp {
                    Response::Telemetry { .. } => {
                        tel.fetch_add(1, Ordering::SeqCst);
                    }
                    Response::Query { payload, .. } => {
                        rec.lock().unwrap().push(payload.to_wire());
                    }
                    Response::Trim { payload, .. } => {
                        rec.lock().unwrap().push(payload.to_wire());
                    }
                    _ => {}
                }
                Some(resp)
            })),
        );
        let mut wired = endpoints.clone();
        wired[0] = ShardEndpoint::single(proxy.addr());
        let mut coord = RpcCoordinator::connect(wired, &manifest, CoordinatorConfig::default())
            .expect("coordinator connects through recording proxy");

        obs::set_enabled(true);
        let (rpc_on, _) = coord.query(&features, K).expect("socket query, obs on");
        let frames_on = std::mem::take(&mut *payloads.lock().unwrap());
        let sidecars_on = telemetry_frames.load(Ordering::SeqCst);
        assert!(
            sidecars_on >= 1,
            "{scheme:?}: enabled query carries a telemetry sidecar frame"
        );
        assert!(
            coord.shard_registries()[0].is_some(),
            "{scheme:?}: coordinator holds shard 0 telemetry when enabled"
        );

        obs::set_enabled(false);
        let (rpc_off, _) = coord.query(&features, K).expect("socket query, obs off");
        obs::set_enabled(true);
        let frames_off = std::mem::take(&mut *payloads.lock().unwrap());
        assert_eq!(
            telemetry_frames.load(Ordering::SeqCst),
            sidecars_on,
            "{scheme:?}: disabled query must not send a telemetry frame"
        );

        assert!(
            !frames_on.is_empty(),
            "{scheme:?}: proxy captured payload frames"
        );
        assert_eq!(
            frames_on, frames_off,
            "{scheme:?}: payload bytes on the wire must not depend on obs"
        );
        let in_process = sharded_sp.query(&features, K).0.vo.to_wire();
        assert_eq!(
            rpc_on.vo.to_wire(),
            in_process,
            "{scheme:?}: socket VO (obs on) == in-process VO"
        );
        assert_eq!(
            rpc_off.vo.to_wire(),
            in_process,
            "{scheme:?}: socket VO (obs off) == in-process VO"
        );
        sharded_client
            .verify_sharded(&features, K, &rpc_on, &manifest)
            .expect("socket response verifies");
        drop(coord);
        drop(proxy);
        for server in servers {
            server.shutdown();
        }
    }
}

fn assert_counters_equal(on: &SpStats, off: &SpStats, scheme: Scheme, threads: usize) {
    let ctx = format!("{scheme:?}/{threads}t");
    assert_eq!(on.popped, off.popped, "{ctx}: popped");
    assert_eq!(on.total_postings, off.total_postings, "{ctx}: postings");
    assert_eq!(on.hashes_computed, off.hashes_computed, "{ctx}: hashes");
    assert_eq!(on.hashes_cached, off.hashes_cached, "{ctx}: cached");
    assert_eq!(
        on.blocks_skipped, off.blocks_skipped,
        "{ctx}: blocks skipped"
    );
    assert_eq!(
        on.blocks_scanned, off.blocks_scanned,
        "{ctx}: blocks scanned"
    );
    assert_eq!(on.shared_ratio, off.shared_ratio, "{ctx}: shared ratio");
}

// --- satellite: zero-denominator guards on the stats ratios ---

#[test]
fn sp_stats_ratios_guard_zero_denominators() {
    let stats = SpStats::default();
    assert_eq!(stats.popped_ratio(), 0.0);
    assert_eq!(stats.cache_hit_ratio(), 0.0);
    assert_eq!(stats.shared_ratio, 0.0);
}

#[test]
fn sharded_stats_accessors_guard_empty_and_zero() {
    let stats = imageproof_suite::core::ShardedSpStats::default();
    assert_eq!(stats.total_hashes_computed(), 0);
    assert_eq!(stats.total_hashes_cached(), 0);
    assert_eq!(stats.total_popped(), 0);
    assert_eq!(stats.total_postings(), 0);
    assert_eq!(stats.cache_hit_ratio(), 0.0);
    assert_eq!(stats.slowest_shard_seconds(), 0.0);
    assert_eq!(stats.merge_share(), 0.0, "0/0 wall seconds must not be NaN");
}

// --- satellite: the scrape plane is invisible to the served bytes ---

/// Zero-perturbation for the *scrape* plane: the same deployment served
/// with no scrape endpoints vs. with every shard observed, the
/// coordinator's fleet endpoint live, and a monitor hammering `/metrics`
/// and `/healthz` concurrently with the queries must put byte-identical
/// payload frames on the RPC wire and assemble byte-identical VOs. A
/// scrape can never block a query (every scrape answers mid-run) and can
/// never change what is served.
///
/// Runs on one scheme: the full scheme × threads matrix is the main
/// test's job; this one isolates the scrape variable. It deliberately
/// never touches the global recording flag, so it can run concurrently
/// with the matrix test that does.
#[test]
fn scrape_plane_never_blocks_or_perturbs_served_bytes() {
    use std::sync::atomic::AtomicBool;

    const SCHEME: Scheme = Scheme::ImageProof;
    const N_SHARDS: usize = 2;
    const ROUNDS: usize = 2;
    let k = 4;
    let system = rpc_util::build_system(SCHEME, N_SHARDS);
    let client = Client::new(system.published);
    let manifest = system.manifest;
    let in_process = ShardedSp::new(system.shards);
    let features = rpc_util::prepared().corpus.query_from_image(7, 20, 0xA11CE);
    let expected_bytes = in_process.query(&features, k).0.vo.to_wire();

    // One captured run of the deployment: fresh identical build, a
    // recording proxy in front of shard 0, `ROUNDS` identical queries.
    // With `observed` set, every shard gets a scrape endpoint, the
    // coordinator serves its fleet endpoint, and a monitor thread hammers
    // all of them for the whole run.
    let run = |observed: bool| -> Vec<Vec<u8>> {
        let served = ShardedSp::new(rpc_util::build_system(SCHEME, N_SHARDS).shards);
        let engines = served.into_shards();
        let mut servers = Vec::new();
        let mut scrapes = Vec::new();
        let mut endpoints = Vec::new();
        for (shard, engine) in engines.into_iter().enumerate() {
            let builder =
                imageproof_core::rpc::ShardServer::new(engine, shard as u32, N_SHARDS as u32);
            if observed {
                let (server, scrape) = builder
                    .launch_observed("127.0.0.1:0")
                    .expect("launch observed shard server");
                endpoints.push(ShardEndpoint::single(server.addr()));
                servers.push(server);
                scrapes.push(scrape);
            } else {
                let server = builder.launch().expect("launch shard server");
                endpoints.push(ShardEndpoint::single(server.addr()));
                servers.push(server);
            }
        }
        let payloads: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let rec = Arc::clone(&payloads);
        let proxy = rpc_util::Proxy::start(
            endpoints[0].primary,
            rpc_util::Fault::MapResponses(Arc::new(move |resp| {
                match &resp {
                    Response::Query { payload, .. } => rec.lock().unwrap().push(payload.to_wire()),
                    Response::Trim { payload, .. } => rec.lock().unwrap().push(payload.to_wire()),
                    _ => {}
                }
                Some(resp)
            })),
        );
        endpoints[0] = ShardEndpoint::single(proxy.addr());
        let mut coord = RpcCoordinator::connect(endpoints, &manifest, CoordinatorConfig::default())
            .expect("coordinator connects");
        let coord_scrape = observed.then(|| {
            coord
                .launch_scrape("127.0.0.1:0")
                .expect("launch coordinator scrape endpoint")
        });

        // The concurrent monitor: loops over every scrape endpoint for
        // the whole query run; each round-trip must answer 200.
        let stop = Arc::new(AtomicBool::new(false));
        let monitor = coord_scrape.as_ref().map(|cs| {
            let mut addrs: Vec<String> = scrapes.iter().map(|s| s.addr().to_string()).collect();
            addrs.push(cs.addr().to_string());
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> usize {
                let mut ok = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    for addr in &addrs {
                        for path in ["/metrics", "/healthz"] {
                            let (status, body) = imageproof_suite::obs::http_get(addr, path, 5.0)
                                .expect("mid-run scrape must not fail");
                            assert_eq!(status, 200, "mid-run scrape of {path} must answer");
                            assert!(!body.is_empty());
                            ok += 1;
                        }
                    }
                }
                ok
            })
        });

        for round in 0..ROUNDS {
            let (resp, _) = coord.query(&features, k).expect("scraped query");
            assert_eq!(
                resp.vo.to_wire(),
                expected_bytes,
                "round {round} (observed={observed}): served VO bytes changed"
            );
            client
                .verify_sharded(&features, k, &resp, &manifest)
                .expect("response verifies");
        }

        stop.store(true, Ordering::SeqCst);
        if let Some(handle) = monitor {
            let scrapes_answered = handle.join().expect("monitor thread");
            assert!(
                scrapes_answered > 0,
                "the monitor must have scraped the fleet at least once mid-run"
            );
        }
        drop(coord_scrape);
        drop(coord);
        drop(proxy);
        for scrape in scrapes {
            scrape.shutdown();
        }
        for server in servers {
            server.shutdown();
        }
        // Telemetry sidecars (if the concurrently running matrix test has
        // recording enabled) were never pushed: only payload frames count.
        let frames = payloads.lock().unwrap().clone();
        frames
    };

    let frames_unobserved = run(false);
    let frames_observed = run(true);
    assert!(
        !frames_unobserved.is_empty(),
        "the proxy must capture payload frames"
    );
    assert_eq!(
        frames_unobserved, frames_observed,
        "payload bytes on the wire must not depend on the scrape plane"
    );
}
