//! The paper's worked examples as executable tests.
//!
//! Table II walks a top-2 `PostingSearch` over two inverted lists; Table III
//! shows the frequency-grouped version of `Γ_{c_5}`. These tests rebuild
//! those fixtures and check the documented behaviours (chain digests,
//! termination, grouping).

use imageproof_akm::bovw::{impacts_with_weights, SparseBovw};
use imageproof_crypto::Digest;
use imageproof_invindex::grouped::{grouped_search, verify_grouped_topk, GroupedInvertedIndex};
use imageproof_invindex::{
    exhaustive_topk, inv_search, verify_topk, BoundsMode, MerkleInvertedIndex, Posting, BLOCK_SIZE,
};
use std::collections::BTreeMap;

/// Images/frequencies shaped after Table II's lists for clusters 5 and 6
/// (impacts there are pre-normalized; we drive the same structure through
/// the real impact model by choosing counts).
fn table_ii_images() -> Vec<(u64, SparseBovw)> {
    vec![
        (1, SparseBovw::from_counts([(5, 4)])),
        (3, SparseBovw::from_counts([(5, 3), (6, 3)])),
        (4, SparseBovw::from_counts([(5, 3), (6, 1), (0, 2)])),
        (10, SparseBovw::from_counts([(5, 2), (0, 3)])),
        (7, SparseBovw::from_counts([(5, 1), (0, 4)])),
        (2, SparseBovw::from_counts([(5, 1), (0, 5)])),
        (5, SparseBovw::from_counts([(6, 4)])),
        (8, SparseBovw::from_counts([(6, 3), (0, 1)])),
        (6, SparseBovw::from_counts([(6, 2), (0, 2)])),
        (9, SparseBovw::from_counts([(6, 1), (0, 5)])),
    ]
}

fn build_plain() -> MerkleInvertedIndex {
    let images = table_ii_images();
    let encodings: Vec<SparseBovw> = images.iter().map(|(_, b)| b.clone()).collect();
    let model = imageproof_akm::ImpactModel::build(8, &encodings);
    MerkleInvertedIndex::build(8, &images, &model)
}

#[test]
fn lists_have_the_papers_shape() {
    let idx = build_plain();
    // Cluster 5 holds six postings led by image 1, cluster 6 six postings
    // led by image 5 — the structure of Table II.
    let c5: Vec<u64> = idx.list(5).postings.iter().map(|p| p.image).collect();
    let c6: Vec<u64> = idx.list(6).postings.iter().map(|p| p.image).collect();
    assert_eq!(c5.len(), 6);
    assert_eq!(c6.len(), 6);
    assert_eq!(c5[0], 1, "image 1 leads Γ_5 as in Table II");
    assert_eq!(c6[0], 5, "image 5 leads Γ_6 as in Table II");
}

#[test]
fn top2_search_returns_images_1_and_3() {
    // The paper's query: B_Q = (0,0,0,0,0,1,1,0) over clusters 5 and 6 with
    // p_{Q,5} = 2 p_{Q,6}; Table II's top-2 answer is {1, 3}.
    let idx = build_plain();
    let q = SparseBovw::from_counts([(5, 2), (6, 1)]);
    let out = inv_search(&idx, &q, 2, BoundsMode::CuckooFiltered);
    let ids: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
    // Our impact model normalizes by the true ||B_I|| (the paper's table
    // lists pre-baked impacts), so the order within the pair may differ —
    // the *set* is the paper's {1, 3}.
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![1, 3]);

    // And the client agrees.
    let digests: BTreeMap<u32, Digest> =
        idx.lists().iter().map(|l| (l.cluster, l.digest)).collect();
    verify_topk(&out.vo, &q, &digests, &ids, 2, BoundsMode::CuckooFiltered)
        .expect("the worked example verifies");
}

#[test]
fn filtered_search_pops_no_more_than_the_baseline() {
    let idx = build_plain();
    let q = SparseBovw::from_counts([(5, 2), (6, 1)]);
    let filtered = inv_search(&idx, &q, 2, BoundsMode::CuckooFiltered);
    let baseline = inv_search(&idx, &q, 2, BoundsMode::MaxBound);
    assert!(filtered.stats.popped <= baseline.stats.popped);
    assert_eq!(filtered.topk, baseline.topk);
}

#[test]
fn posting_digests_chain_as_in_definition_4() {
    let idx = build_plain();
    let list = idx.list(5);
    // h_{pos_j} = h(I | p | h_{pos_{j+1}}), terminating in the zero digest —
    // blocked lists chain per block, so each block summary's head must equal
    // the Def. 4 fold over exactly its postings.
    for (b, chunk) in list.postings.chunks(BLOCK_SIZE).enumerate() {
        let mut expected = Digest::ZERO;
        for p in chunk.iter().rev() {
            expected = imageproof_invindex::merkle::posting_digest(
                &Posting {
                    image: p.image,
                    impact: p.impact,
                },
                &expected,
            );
        }
        assert_eq!(list.blocks()[b].chain_head, expected, "block {b}");
    }
}

#[test]
fn frequency_grouping_matches_table_iii_structure() {
    // Table III groups Γ_5 by frequency; with the counts above cluster 5
    // has frequencies {4:1 image, 3:2 images, 2:1, 1:2}.
    let images = table_ii_images();
    let encodings: Vec<SparseBovw> = images.iter().map(|(_, b)| b.clone()).collect();
    let model = imageproof_akm::ImpactModel::build(8, &encodings);
    let grouped = GroupedInvertedIndex::build(8, &images, &model);
    let list = grouped.list(5);
    let mut by_freq: BTreeMap<u32, usize> = BTreeMap::new();
    for g in &list.groups {
        *by_freq.entry(g.frequency).or_insert(0) += g.members.len();
    }
    assert_eq!(by_freq[&4], 1);
    assert_eq!(by_freq[&3], 2);
    assert_eq!(by_freq[&2], 1);
    assert_eq!(by_freq[&1], 2);

    // Members within a group are ordered ascending by L2 norm (head) and
    // the group impact is the head's impact (Def. 6 discussion).
    for g in &list.groups {
        for &(_, norm) in &g.members[1..] {
            assert!(g.members[0].1 <= norm);
        }
    }
}

#[test]
fn grouped_top2_matches_plain_top2() {
    let images = table_ii_images();
    let encodings: Vec<SparseBovw> = images.iter().map(|(_, b)| b.clone()).collect();
    let model = imageproof_akm::ImpactModel::build(8, &encodings);
    let plain = build_plain();
    let grouped = GroupedInvertedIndex::build(8, &images, &model);

    let q = SparseBovw::from_counts([(5, 2), (6, 1)]);
    let impacts = impacts_with_weights(&q, |c| plain.list(c).weight);
    let plain_ids: Vec<u64> = exhaustive_topk(&plain, &impacts, 2)
        .iter()
        .map(|&(i, _)| i)
        .collect();
    let out = grouped_search(&grouped, &q, 2);
    let grouped_ids: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
    assert_eq!(plain_ids, grouped_ids);

    let digests: BTreeMap<u32, Digest> = grouped
        .lists()
        .iter()
        .map(|l| (l.cluster, l.digest))
        .collect();
    verify_grouped_topk(&out.vo, &q, &digests, &grouped_ids, 2)
        .expect("grouped worked example verifies");
}
