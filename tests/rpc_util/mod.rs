//! Shared helpers for the socket-RPC test suites: launching shard servers
//! from a built sharded system, and a fault-injection proxy that sits
//! between the coordinator and a shard server, mangling the byte stream
//! in controlled ways (partial writes, mid-frame resets, stalls,
//! duplicated frames, hostile lengths, and frame-aware response
//! rewriting for wire-level adversaries).
//!
//! Each test binary compiles this module independently and uses a
//! different slice of it, so item-level dead-code analysis is noise here.
#![allow(dead_code)]

use imageproof_core::rpc::{
    frame, CoordinatorConfig, FrameBuffer, Response, RpcCoordinator, RunningServer, ShardEndpoint,
    ShardServer,
};
use imageproof_core::{Client, Owner, Scheme, ShardManifest, ShardedSp, SystemConfig};
use imageproof_crypto::wire::{Decode, Encode};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

pub const OWNER_SEED: [u8; 32] = [21u8; 32];

/// A deterministic sharded deployment: in-process fan-out engine, client,
/// manifest, plus a second identical build whose engines feed the socket
/// servers (builds are deterministic, so both serve identical bytes).
pub struct Fixture {
    pub sp: ShardedSp,
    pub client: Client,
    pub manifest: ShardManifest,
    pub servers: Vec<RunningServer>,
    pub endpoints: Vec<ShardEndpoint>,
}

impl Fixture {
    pub fn corpus(&self) -> &'static imageproof_vision::Corpus {
        &prepared().corpus
    }
}

pub fn akm() -> imageproof_akm::AkmParams {
    imageproof_akm::AkmParams {
        n_clusters: 48,
        n_trees: 3,
        max_leaf_size: 2,
        max_checks: 16,
        iterations: 2,
        seed: 7,
    }
}

/// Corpus + codebook + encodings, trained once per test binary and shared
/// across every scheme and shard count.
pub struct Prepared {
    pub corpus: imageproof_vision::Corpus,
    pub codebook: imageproof_akm::Codebook,
    pub encodings: Vec<(imageproof_vision::ImageId, imageproof_akm::SparseBovw)>,
}

pub fn prepared() -> &'static Prepared {
    static PREPARED: std::sync::OnceLock<Prepared> = std::sync::OnceLock::new();
    PREPARED.get_or_init(|| {
        let corpus = imageproof_vision::Corpus::generate(&imageproof_vision::CorpusConfig {
            kind: imageproof_vision::DescriptorKind::Surf,
            n_images: 60,
            n_latent_words: 60,
            ..imageproof_vision::CorpusConfig::small(imageproof_vision::DescriptorKind::Surf)
        });
        let codebook =
            imageproof_akm::Codebook::train(corpus.config.kind, corpus.all_features(), &akm());
        let encodings: Vec<_> = corpus
            .images
            .iter()
            .map(|img| {
                (
                    img.id,
                    imageproof_akm::SparseBovw::encode(
                        &codebook,
                        img.features.iter().map(Vec::as_slice),
                    ),
                )
            })
            .collect();
        Prepared {
            corpus,
            codebook,
            encodings,
        }
    })
}

/// One deterministic sharded system build over the shared [`Prepared`].
pub fn build_system(scheme: Scheme, shard_count: usize) -> imageproof_core::ShardedSystem {
    let p = prepared();
    Owner::new(&OWNER_SEED).build_sharded_system_prepared_config(
        &p.corpus,
        p.codebook.clone(),
        p.encodings.clone(),
        SystemConfig::new(scheme),
        shard_count,
    )
}

/// Builds the deployment twice from the same seed — once kept in-process,
/// once dissolved into socket servers — and returns both halves.
pub fn fixture(scheme: Scheme, shard_count: usize) -> Fixture {
    let system = build_system(scheme, shard_count);
    let served = build_system(scheme, shard_count);
    let client = Client::new(system.published);
    let manifest = system.manifest;
    let sp = ShardedSp::new(system.shards);
    let (servers, endpoints) = launch_shards(ShardedSp::new(served.shards));
    Fixture {
        sp,
        client,
        manifest,
        servers,
        endpoints,
    }
}

/// Dissolves an in-process fan-out into one [`ShardServer`] per shard and
/// returns the running servers with their single-endpoint list.
pub fn launch_shards(sp: ShardedSp) -> (Vec<RunningServer>, Vec<ShardEndpoint>) {
    let engines = sp.into_shards();
    let shard_count = engines.len() as u32;
    let mut servers = Vec::new();
    let mut endpoints = Vec::new();
    for (shard, engine) in engines.into_iter().enumerate() {
        let server = ShardServer::new(engine, shard as u32, shard_count)
            .launch()
            .expect("launch shard server");
        endpoints.push(ShardEndpoint::single(server.addr()));
        servers.push(server);
    }
    (servers, endpoints)
}

/// A coordinator config with short timeouts so stall tests stay fast.
/// The heartbeat deadline stays well under the request deadline so
/// heartbeat-driven failover can beat a stalled query to the punch.
pub fn quick_config() -> CoordinatorConfig {
    CoordinatorConfig {
        request_timeout_seconds: 0.8,
        connect_timeout_seconds: 1.0,
        hello_timeout_seconds: 1.0,
        heartbeat_timeout_seconds: 0.2,
        ..CoordinatorConfig::default()
    }
}

pub fn connect(fx: &Fixture) -> RpcCoordinator {
    RpcCoordinator::connect(fx.endpoints.clone(), &fx.manifest, quick_config())
        .expect("connect coordinator")
}

// ---------------------------------------------------------------------------
// Fault-injection proxy.

/// What the proxy does to the server→coordinator byte stream (the
/// coordinator→server direction is always forwarded transparently, except
/// for [`Fault::StallRequests`]).
#[derive(Clone)]
pub enum Fault {
    /// Forward both directions untouched.
    Transparent,
    /// Forward the response stream one byte at a time (worst-case partial
    /// writes; every frame arrives in `len` fragments).
    Trickle,
    /// Forward exactly `n` response bytes, then close both sockets — a
    /// mid-frame reset when `n` lands inside a frame.
    ResetAfterResponseBytes(usize),
    /// Swallow every response byte: the shard looks alive but stalled.
    StallResponses,
    /// Swallow every request byte (the server never even sees the query).
    StallRequests,
    /// Forward the first complete *payload* response frame twice,
    /// everything else once. Telemetry sidecar frames are exempt: a
    /// duplicated telemetry frame is idempotently absorbed (it carries no
    /// answer), so the interesting duplicate is the answer itself.
    DuplicateFirstResponseFrame,
    /// Answer the first request bytes with a frame header announcing a
    /// hostile length, then stall.
    HostileLengthHeader,
    /// Decode each response frame and rewrite it (`None` drops the
    /// frame). Used for in-flight sub-VO substitution and id replay.
    MapResponses(Arc<dyn Fn(Response) -> Option<Response> + Send + Sync>),
    /// Inject these raw bytes into the response stream before the first
    /// genuine response byte (spoofed telemetry, replayed captures).
    InjectBeforeResponses(Vec<u8>),
}

pub struct Proxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Proxy {
    /// Starts a proxy on a fresh loopback port forwarding to `target`.
    pub fn start(target: SocketAddr, fault: Fault) -> Proxy {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr");
        listener.set_nonblocking(true).expect("nonblocking proxy");
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let fault = fault.clone();
                        let stop = Arc::clone(&accept_stop);
                        conns.push(std::thread::spawn(move || {
                            let _ = relay(client, target, fault, stop);
                        }));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            for c in conns {
                let _ = c.join();
            }
        });
        Proxy {
            addr,
            stop,
            handle: Some(handle),
        }
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Pumps one proxied connection until either side closes, the fault says
/// to cut it, or the proxy stops.
///
/// The opening hello exchange always passes through untouched (one
/// request frame up, one response frame down), so every fault strikes the
/// *query* path of an already-verified connection — the adversarial shape
/// the coordinator's failover logic has to survive.
fn relay(
    mut client: TcpStream,
    target: SocketAddr,
    fault: Fault,
    stop: Arc<AtomicBool>,
) -> std::io::Result<()> {
    let mut server = TcpStream::connect(target)?;
    client.set_read_timeout(Some(Duration::from_millis(10)))?;
    server.set_read_timeout(Some(Duration::from_millis(10)))?;
    client.set_nodelay(true)?;
    server.set_nodelay(true)?;
    let mut cbuf = [0u8; 16 * 1024];
    let mut sbuf = [0u8; 16 * 1024];
    let mut hello_done = false; // one response frame forwarded untouched
    let mut responded = 0usize; // post-hello response bytes forwarded
    let mut injected = false;
    let mut fb = FrameBuffer::new(); // frame-aware faults reassemble here
    let mut duplicated = false;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Coordinator → server direction.
        match client.read(&mut cbuf) {
            Ok(0) => return Ok(()),
            Ok(n) => match &fault {
                Fault::StallRequests if hello_done => {}
                Fault::HostileLengthHeader if hello_done => {
                    // Answer with a poisoned header instead of forwarding.
                    client.write_all(&u32::MAX.to_le_bytes())?;
                }
                _ => server.write_all(&cbuf[..n])?,
            },
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Ok(()),
        }
        // Server → coordinator direction.
        match server.read(&mut sbuf) {
            Ok(0) => return Ok(()),
            Ok(n) => {
                let mut bytes = &sbuf[..n];
                if !hello_done {
                    // Pass the hello response through verbatim, then arm
                    // the fault for everything after it.
                    fb.extend(bytes);
                    bytes = &[];
                    if let Ok(Some(body)) = fb.next_frame() {
                        client.write_all(&frame(&body))?;
                        hello_done = true;
                    }
                }
                if bytes.is_empty() && fb.pending() == 0 {
                    continue;
                }
                match &fault {
                    Fault::Trickle => {
                        for b in bytes {
                            client.write_all(std::slice::from_ref(b))?;
                            std::thread::sleep(Duration::from_micros(50));
                        }
                    }
                    Fault::ResetAfterResponseBytes(cut) => {
                        let room = cut.saturating_sub(responded).min(bytes.len());
                        client.write_all(&bytes[..room])?;
                        responded += room;
                        if responded >= *cut {
                            // Abrupt close, mid-frame when `cut` says so.
                            return Ok(());
                        }
                    }
                    Fault::StallResponses | Fault::StallRequests | Fault::HostileLengthHeader => {}
                    Fault::Transparent => client.write_all(bytes)?,
                    Fault::InjectBeforeResponses(pre) => {
                        if !injected {
                            injected = true;
                            client.write_all(pre)?;
                        }
                        client.write_all(bytes)?;
                    }
                    Fault::DuplicateFirstResponseFrame => {
                        fb.extend(bytes);
                        while let Ok(Some(body)) = fb.next_frame() {
                            let framed = frame(&body);
                            client.write_all(&framed)?;
                            let is_telemetry = matches!(
                                Response::from_wire(&body),
                                Ok(Response::Telemetry { .. })
                            );
                            if !duplicated && !is_telemetry {
                                duplicated = true;
                                client.write_all(&framed)?;
                            }
                        }
                    }
                    Fault::MapResponses(map) => {
                        fb.extend(bytes);
                        while let Ok(Some(body)) = fb.next_frame() {
                            let resp = Response::from_wire(&body).expect("proxy decodes response");
                            if let Some(mapped) = map(resp) {
                                client.write_all(&frame(&mapped.to_wire()))?;
                            }
                        }
                    }
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Ok(()),
        }
    }
}
