//! Blocked top-k is *exact*: block-granular popping and block-max skip
//! proofs change how much the SP discloses, never what it answers. For
//! random tie-heavy corpora (a trio of images shares one encoding, so the
//! k-cut routinely lands inside a tie), the authenticated search of every
//! scheme's inverted path must return bit-for-bit the exhaustive oracle's
//! `(id, score)` list — and its VO must verify to the same winners:
//!
//! * `inv_search` + `BoundsMode::CuckooFiltered` — ImageProof and
//!   Optimized(BoVW);
//! * `inv_search` + `BoundsMode::MaxBound` — Baseline;
//! * `grouped_search` — Optimized(Both);
//! * `inv_search_with_tuning` at the degenerate one-posting batch — the
//!   maximally block-misaligned pop schedule.

use std::collections::BTreeMap;

use imageproof_akm::bovw::{impacts_with_weights, ImpactModel};
use imageproof_akm::SparseBovw;
use imageproof_crypto::Digest;
use imageproof_invindex::grouped::{grouped_search, verify_grouped_topk, GroupedInvertedIndex};
use imageproof_invindex::{
    exhaustive_topk, inv_search, inv_search_with_tuning, verify_topk, BoundsMode,
    MerkleInvertedIndex, SearchTuning,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_CLUSTERS: usize = 8;
const N_IMAGES: u64 = 40;

fn tie_heavy_images(seed: u64) -> Vec<(u64, SparseBovw)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images: Vec<(u64, SparseBovw)> = (0..N_IMAGES)
        .map(|id| {
            let pairs: Vec<(u32, u32)> = (0..rng.gen_range(2..6))
                .map(|_| (rng.gen_range(0..N_CLUSTERS as u32), rng.gen_range(1..4u32)))
                .collect();
            (id, SparseBovw::from_counts(pairs))
        })
        .collect();
    // The trio scores identically for every query, so the k-cut often has
    // to resolve (and prove) a three-way tie.
    let trio = [9usize, 18, 23];
    let shared = images[trio[0]].1.clone();
    for &dup in &trio[1..] {
        images[dup].1 = shared.clone();
    }
    images
}

fn digest_map(digests: Vec<Digest>) -> BTreeMap<u32, Digest> {
    digests
        .into_iter()
        .enumerate()
        .map(|(c, d)| (c as u32, d))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blocked_search_is_bit_equal_to_the_exhaustive_oracle(
        seed in 0u64..10_000,
        k in 1usize..8,
    ) {
        let images = tie_heavy_images(seed);
        let encodings: Vec<SparseBovw> = images.iter().map(|(_, e)| e.clone()).collect();
        let model = ImpactModel::build(N_CLUSTERS, &encodings);
        let plain = MerkleInvertedIndex::build(N_CLUSTERS, &images, &model);
        let grouped = GroupedInvertedIndex::build(N_CLUSTERS, &images, &model);
        let plain_digests = digest_map(plain.list_digests());
        let grouped_digests = digest_map(grouped.list_digests());

        // Query from inside the trio: its three-way tie contends for the cut.
        let query = images[9].1.clone();
        let query_impacts = impacts_with_weights(&query, |c| plain.list(c).weight);
        let oracle = exhaustive_topk(&plain, &query_impacts, k);
        let oracle_ids: Vec<u64> = oracle.iter().map(|&(i, _)| i).collect();

        for mode in [BoundsMode::CuckooFiltered, BoundsMode::MaxBound] {
            let r = inv_search(&plain, &query, k, mode);
            prop_assert_eq!(&r.topk, &oracle, "{:?}: blocked top-k diverged", mode);
            let v = verify_topk(&r.vo, &query, &plain_digests, &oracle_ids, k, mode)
                .expect("honest blocked VO verifies");
            let v_ids: Vec<u64> = v.topk.iter().map(|&(i, _)| i).collect();
            prop_assert_eq!(&v_ids, &oracle_ids);
        }

        // Degenerate tuning: one-posting batches force the most block-
        // misaligned pop requests; block rounding must not change the answer.
        let r = inv_search_with_tuning(
            &plain,
            &query,
            k,
            BoundsMode::CuckooFiltered,
            SearchTuning { initial_batch: 1, growth: 1, max_batch: 1 },
        );
        prop_assert_eq!(&r.topk, &oracle, "degenerate tuning diverged");

        let g = grouped_search(&grouped, &query, k);
        prop_assert_eq!(&g.topk, &oracle, "grouped blocked top-k diverged");
        let v = verify_grouped_topk(&g.vo, &query, &grouped_digests, &oracle_ids, k)
            .expect("honest grouped blocked VO verifies");
        let v_ids: Vec<u64> = v.topk.iter().map(|&(i, _)| i).collect();
        prop_assert_eq!(&v_ids, &oracle_ids);
    }
}
