//! Cross-crate integration tests: the full ImageProof pipeline from corpus
//! generation through owner setup, SP query processing, and client
//! verification, for every scheme.

use imageproof_akm::AkmParams;
use imageproof_core::{Client, ClientError, Owner, Scheme, ServiceProvider};
use imageproof_crypto::wire::Encode;
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};

fn corpus(kind: DescriptorKind, n_images: usize) -> Corpus {
    Corpus::generate(&CorpusConfig {
        kind,
        n_images,
        n_latent_words: 150,
        ..CorpusConfig::small(kind)
    })
}

fn akm(n_clusters: usize) -> AkmParams {
    AkmParams {
        n_clusters,
        n_trees: 4,
        max_leaf_size: 2,
        max_checks: 16,
        iterations: 2,
        seed: 3,
    }
}

#[test]
fn full_pipeline_for_both_descriptor_kinds() {
    for kind in [DescriptorKind::Surf, DescriptorKind::Sift] {
        let corpus = corpus(kind, 150);
        let owner = Owner::new(&[1u8; 32]);
        let (db, published) = owner.build_system(&corpus, &akm(128), Scheme::ImageProof);
        let sp = ServiceProvider::new(db);
        let client = Client::new(published);

        let query = corpus.query_from_image(42, 40, 5);
        let (response, _) = sp.query(&query, 5);
        let verified = client.verify(&query, 5, &response).expect("honest");
        assert!(
            verified.topk.iter().any(|&(id, _)| id == 42),
            "{kind:?}: query source must be retrieved"
        );
    }
}

#[test]
fn retrieval_quality_holds_across_many_queries() {
    // The authenticated pipeline must not change retrieval semantics: for a
    // near-duplicate query the source image should (almost) always win.
    let corpus = corpus(DescriptorKind::Surf, 200);
    let owner = Owner::new(&[2u8; 32]);
    let (db, published) = owner.build_system(&corpus, &akm(160), Scheme::OptimizedBoth);
    let sp = ServiceProvider::new(db);
    let client = Client::new(published);

    let mut hits = 0;
    let trials = 20;
    for i in 0..trials {
        let source = (i * 9 + 1) % 200;
        let query = corpus.query_from_image(source as u64, 40, 100 + i as u64);
        let (response, _) = sp.query(&query, 3);
        let verified = client.verify(&query, 3, &response).expect("honest");
        if verified.topk.iter().any(|&(id, _)| id == source as u64) {
            hits += 1;
        }
    }
    assert!(
        hits >= trials - 2,
        "near-duplicate recall too low: {hits}/{trials}"
    );
}

#[test]
fn scores_returned_by_client_match_sp_claims_for_honest_sp() {
    let corpus = corpus(DescriptorKind::Surf, 150);
    let owner = Owner::new(&[3u8; 32]);
    for scheme in Scheme::ALL {
        let (db, published) = owner.build_system(&corpus, &akm(128), scheme);
        let sp = ServiceProvider::new(db);
        let client = Client::new(published);
        let query = corpus.query_from_image(10, 30, 9);
        let (response, _) = sp.query(&query, 5);
        let verified = client.verify(&query, 5, &response).expect("honest");
        for (claimed, verified) in response.results.iter().zip(&verified.topk) {
            assert_eq!(claimed.id, verified.0, "{scheme:?}");
            assert_eq!(claimed.score, verified.1, "{scheme:?}");
        }
    }
}

#[test]
fn vo_survives_a_network_round_trip() {
    use imageproof_core::QueryVo;
    use imageproof_crypto::wire::Decode;

    let corpus = corpus(DescriptorKind::Surf, 120);
    let owner = Owner::new(&[4u8; 32]);
    let (db, published) = owner.build_system(&corpus, &akm(96), Scheme::OptimizedBoth);
    let sp = ServiceProvider::new(db);
    let client = Client::new(published);

    let query = corpus.query_from_image(60, 30, 11);
    let (mut response, _) = sp.query(&query, 4);
    // Serialize + deserialize the VO, as a real deployment would.
    let bytes = response.vo.to_wire();
    response.vo = QueryVo::from_wire(&bytes).expect("decodes");
    client
        .verify(&query, 4, &response)
        .expect("round-tripped VO verifies");
}

#[test]
fn bitflips_anywhere_in_the_vo_never_verify() {
    use imageproof_core::QueryVo;
    use imageproof_crypto::wire::Decode;

    let corpus = corpus(DescriptorKind::Surf, 100);
    let owner = Owner::new(&[5u8; 32]);
    let (db, published) = owner.build_system(&corpus, &akm(96), Scheme::ImageProof);
    let sp = ServiceProvider::new(db);
    let client = Client::new(published);

    let query = corpus.query_from_image(5, 25, 13);
    let (response, _) = sp.query(&query, 3);
    let bytes = response.vo.to_wire();

    // Flip a spread of bits; every corrupted VO must either fail to decode
    // or fail verification (never silently verify).
    let mut rejected = 0;
    let positions: Vec<usize> = (0..24).map(|i| (i * bytes.len()) / 24).collect();
    for pos in positions {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x01;
        let mut tampered = response.clone();
        match QueryVo::from_wire(&corrupted) {
            Err(_) => {
                rejected += 1;
                continue;
            }
            Ok(vo) => {
                if vo == response.vo {
                    // The flip landed in a don't-care encoding bit that
                    // decodes identically (cannot happen with this codec,
                    // but keep the check meaningful).
                    continue;
                }
                tampered.vo = vo;
            }
        }
        match client.verify(&query, 3, &tampered) {
            Ok(_) => panic!("bit flip at {pos} verified"),
            Err(_) => rejected += 1,
        }
    }
    assert!(rejected >= 20, "too few corruptions exercised: {rejected}");
}

#[test]
fn clients_of_different_queries_do_not_interfere() {
    let corpus = corpus(DescriptorKind::Surf, 150);
    let owner = Owner::new(&[6u8; 32]);
    let (db, published) = owner.build_system(&corpus, &akm(128), Scheme::ImageProof);
    let sp = ServiceProvider::new(db);
    let client = Client::new(published);

    let query_a = corpus.query_from_image(20, 30, 17);
    let query_b = corpus.query_from_image(90, 30, 19);
    let (resp_a, _) = sp.query(&query_a, 3);
    let (resp_b, _) = sp.query(&query_b, 3);

    // Correct pairings verify...
    client.verify(&query_a, 3, &resp_a).expect("a/a verifies");
    client.verify(&query_b, 3, &resp_b).expect("b/b verifies");
    // ...replaying one query's response for another fails.
    assert!(client.verify(&query_a, 3, &resp_b).is_err());
    assert!(client.verify(&query_b, 3, &resp_a).is_err());
}

#[test]
fn wrong_k_is_rejected() {
    let corpus = corpus(DescriptorKind::Surf, 120);
    let owner = Owner::new(&[7u8; 32]);
    let (db, published) = owner.build_system(&corpus, &akm(96), Scheme::ImageProof);
    let sp = ServiceProvider::new(db);
    let client = Client::new(published);

    let query = corpus.query_from_image(8, 25, 23);
    let (response, _) = sp.query(&query, 3);
    // A response for k = 3 cannot satisfy a client asking for k = 5.
    match client.verify(&query, 5, &response) {
        Err(ClientError::Inv(_)) => {}
        other => panic!("under-filled result accepted: {other:?}"),
    }
}
