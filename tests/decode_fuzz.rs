//! Adversarial decode fuzzing: every VO / proof `Decode` impl and
//! `Client::verify` must be *total* over arbitrary byte strings — a hostile
//! SP controls every response byte, so truncated, bit-flipped, and random
//! inputs must surface as `Err(WireError)` / `Err(ClientError)`, never as a
//! panic or abort.
//!
//! Three attack modes per type:
//!   1. **Truncation** — every strict prefix of a valid encoding must `Err`
//!      (a canonical decoder reads the prefix identically and runs out).
//!   2. **Bit flips** — single-bit corruptions of a valid encoding must
//!      decode without panicking (they may legitimately decode `Ok` when the
//!      flip lands in a payload field; verification catches those).
//!   3. **Random bytes** — deterministic-PRNG garbage must decode without
//!      panicking.
//!
//! Deterministic `#[test]`s run everywhere (including the offline stub
//! toolchain); the `proptest!` block at the bottom adds randomized depth on
//! builders with the real dependency graph.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use imageproof_akm::AkmParams;
use imageproof_core::rpc::{
    ErrorClass, QueryPayload, Request, Response, TrimPayload, WireHealth, WireHistogram,
    WireMetricId, WireProfile, WireRegistry, WireSpan, WireStats,
};
use imageproof_core::{
    BovwVoVariant, Client, InvVoVariant, Owner, QueryResponse, QueryVo, Scheme, ServiceProvider,
    ShardBovw, ShardManifest, ShardVo, ShardedResponse, ShardedSp, ShardedVo, SharedSection,
};
use imageproof_crypto::wire::{Decode, Encode, WireError};
use imageproof_invindex::grouped::{Group, GroupedInvVo, GroupedListVo};
use imageproof_invindex::{FilterVo, InvVo, ListVo, RemainingVo};
use imageproof_mrkd::{BaselineBovwVo, BovwVo, Reveal, VoLeafEntry, VoNode};
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Deterministic corruption engine (no external RNG needed).

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
}

/// Decodes under `catch_unwind`, converting any panic into a test failure
/// that names the offending type.
fn decode_total<T: Decode>(name: &str, bytes: &[u8]) -> Result<T, WireError> {
    catch_unwind(AssertUnwindSafe(|| T::from_wire(bytes)))
        .unwrap_or_else(|_| panic!("{name}::from_wire PANICKED on {} bytes", bytes.len()))
}

/// Caps exhaustive sweeps on large encodings: at most ~256 positions,
/// spread evenly, always including the first and last byte.
fn stride_for(len: usize) -> usize {
    (len / 256).max(1)
}

/// Runs all three attack modes against one type, seeded from a valid value.
fn fuzz_decode<T: Decode + Encode + PartialEq + std::fmt::Debug>(name: &str, sample: &T) {
    let wire = sample.to_wire();
    assert_eq!(
        &decode_total::<T>(name, &wire).unwrap_or_else(|e| panic!("{name} roundtrip: {e}")),
        sample,
        "{name}: roundtrip changed the value"
    );

    // Mode 1: truncations.
    let stride = stride_for(wire.len());
    let mut cut = 0;
    while cut < wire.len() {
        assert!(
            decode_total::<T>(name, &wire[..cut]).is_err(),
            "{name}: truncation to {cut}/{} bytes decoded Ok",
            wire.len()
        );
        cut += stride;
    }

    // Mode 2: single-bit flips (must not panic; Ok is allowed).
    let mut pos = 0;
    while pos < wire.len() {
        for bit in 0..8 {
            let mut m = wire.clone();
            m[pos] ^= 1 << bit;
            let _ = decode_total::<T>(name, &m);
        }
        pos += stride;
    }

    // Mode 3: deterministic random garbage, plus garbage-tail splices.
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15 ^ wire.len() as u64);
    for round in 0..128u64 {
        let len = (rng.next() % 192) as usize;
        let mut buf = vec![0u8; len];
        rng.fill(&mut buf);
        let _ = decode_total::<T>(name, &buf);
        // Valid prefix + garbage tail: exercises the trailing-byte check.
        if round % 4 == 0 {
            let keep = (rng.next() as usize) % (wire.len() + 1);
            let mut spliced = wire[..keep].to_vec();
            spliced.extend_from_slice(&buf);
            let _ = decode_total::<T>(name, &spliced);
        }
    }
}

// ---------------------------------------------------------------------------
// Fixture: real responses from the full pipeline, one per scheme family.

struct Fixture {
    client: Client,
    features: Vec<Vec<f32>>,
    k: usize,
    response: QueryResponse,
}

fn build_fixture(scheme: Scheme) -> Fixture {
    let corpus = Corpus::generate(&CorpusConfig {
        kind: DescriptorKind::Surf,
        n_images: 80,
        n_latent_words: 60,
        ..CorpusConfig::small(DescriptorKind::Surf)
    });
    let akm = AkmParams {
        n_clusters: 48,
        n_trees: 3,
        max_leaf_size: 2,
        max_checks: 16,
        iterations: 2,
        seed: 7,
    };
    let owner = Owner::new(&[9u8; 32]);
    let (db, published) = owner.build_system(&corpus, &akm, scheme);
    let sp = ServiceProvider::new(db);
    let client = Client::new(published);
    let features = corpus.query_from_image(17, 24, 3);
    let k = 5;
    let (response, _) = sp.query(&features, k);
    client
        .verify(&features, k, &response)
        .expect("fixture response must verify before we corrupt it");
    Fixture {
        client,
        features,
        k,
        response,
    }
}

fn fixtures() -> &'static [(Scheme, Fixture)] {
    static FIXTURES: OnceLock<Vec<(Scheme, Fixture)>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        [Scheme::Baseline, Scheme::ImageProof, Scheme::OptimizedBoth]
            .into_iter()
            .map(|s| (s, build_fixture(s)))
            .collect()
    })
}

// Sharded fixture: a 3-shard deployment answering the same query shape.

struct ShardedFixture {
    client: Client,
    manifest: ShardManifest,
    features: Vec<Vec<f32>>,
    k: usize,
    response: ShardedResponse,
}

fn sharded_fixture() -> &'static ShardedFixture {
    static FIXTURE: OnceLock<ShardedFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let corpus = Corpus::generate(&CorpusConfig {
            kind: DescriptorKind::Surf,
            n_images: 80,
            n_latent_words: 60,
            ..CorpusConfig::small(DescriptorKind::Surf)
        });
        let akm = AkmParams {
            n_clusters: 48,
            n_trees: 3,
            max_leaf_size: 2,
            max_checks: 16,
            iterations: 2,
            seed: 7,
        };
        let owner = Owner::new(&[9u8; 32]);
        let system = owner.build_sharded_system(&corpus, &akm, Scheme::ImageProof, 3);
        let sp = ShardedSp::new(system.shards);
        let client = Client::new(system.published);
        let features = corpus.query_from_image(17, 24, 3);
        let k = 5;
        let (response, _) = sp.query(&features, k);
        client
            .verify_sharded(&features, k, &response, &system.manifest)
            .expect("sharded fixture response must verify before we corrupt it");
        ShardedFixture {
            client,
            manifest: system.manifest,
            features,
            k,
            response,
        }
    })
}

/// Depth-first search for the first disclosed leaf in a VO tree.
fn find_leaf(node: &VoNode) -> Option<&Vec<VoLeafEntry>> {
    match node {
        VoNode::Pruned(_) => None,
        VoNode::Internal { left, right, .. } => find_leaf(left).or_else(|| find_leaf(right)),
        VoNode::Leaf { entries } => Some(entries),
    }
}

// ---------------------------------------------------------------------------
// Deterministic adversarial-decode tests, one per wire type.

#[test]
fn query_vo_decoding_is_total_for_every_scheme() {
    for (scheme, fx) in fixtures() {
        fuzz_decode(&format!("QueryVo[{scheme:?}]"), &fx.response.vo);
    }
}

#[test]
fn bovw_vo_decoding_is_total() {
    for (scheme, fx) in fixtures() {
        match &fx.response.vo.bovw {
            BovwVoVariant::Shared(vo) => {
                fuzz_decode::<BovwVo>(&format!("BovwVo[{scheme:?}]"), vo);
                if let Some(tree) = vo.trees.first() {
                    fuzz_decode(&format!("VoNode[{scheme:?}]"), tree);
                }
            }
            BovwVoVariant::PerQuery(vo) => {
                fuzz_decode::<BaselineBovwVo>(&format!("BaselineBovwVo[{scheme:?}]"), vo);
            }
        }
    }
}

#[test]
fn leaf_entry_and_reveal_decoding_is_total() {
    let mut checked = 0;
    for (scheme, fx) in fixtures() {
        let trees: &[VoNode] = match &fx.response.vo.bovw {
            BovwVoVariant::Shared(vo) => &vo.trees,
            BovwVoVariant::PerQuery(vo) => match vo.per_query.first() {
                Some(b) => &b.trees,
                None => continue,
            },
        };
        let Some(entries) = trees.iter().find_map(find_leaf) else {
            continue;
        };
        for entry in entries.iter().take(2) {
            fuzz_decode(&format!("VoLeafEntry[{scheme:?}]"), entry);
            fuzz_decode::<Reveal>(&format!("Reveal[{scheme:?}]"), &entry.reveal);
            checked += 1;
        }
    }
    assert!(checked > 0, "no disclosed leaf found in any fixture VO");
}

#[test]
fn inverted_index_vo_decoding_is_total() {
    let (mut plain, mut grouped) = (0, 0);
    for (scheme, fx) in fixtures() {
        match &fx.response.vo.inv {
            InvVoVariant::Plain(vo) => {
                fuzz_decode::<InvVo>(&format!("InvVo[{scheme:?}]"), vo);
                if let Some(list) = vo.lists.first() {
                    fuzz_decode::<ListVo>(&format!("ListVo[{scheme:?}]"), list);
                }
                plain += 1;
            }
            InvVoVariant::Grouped(vo) => {
                fuzz_decode::<GroupedInvVo>(&format!("GroupedInvVo[{scheme:?}]"), vo);
                if let Some(list) = vo.lists.first() {
                    fuzz_decode::<GroupedListVo>(&format!("GroupedListVo[{scheme:?}]"), list);
                    if let Some(group) = list.popped.first() {
                        fuzz_decode::<Group>(&format!("Group[{scheme:?}]"), group);
                    }
                }
                grouped += 1;
            }
        }
    }
    assert!(plain > 0, "no plain inverted VO exercised");
    assert!(grouped > 0, "no grouped inverted VO exercised");
}

/// The blocked-list wire arms: every `RemainingVo` variant — exhausted,
/// skip proof with filter bytes, skip proof with filter digest — plus a
/// `ListVo` carrying a skip proof, fuzzed from hand-built samples so all
/// three tags are exercised even if a particular fixture happens to
/// exhaust its lists. Shared by `ListVo` and `GroupedListVo` (one
/// `Encode`/`Decode` pair), so this also covers the grouped wire.
#[test]
fn blocked_remaining_vo_decoding_is_total() {
    use imageproof_crypto::Digest;
    let arms = [
        (
            "RemainingVo[exhausted]",
            RemainingVo::Exhausted {
                filter_digest: Digest::of(b"filter"),
            },
        ),
        (
            "RemainingVo[skipped/bytes]",
            RemainingVo::Skipped {
                max_impact: 0.75,
                fence_digest: Digest::of(b"fence"),
                filter: FilterVo::Bytes(vec![1, 2, 3, 4, 5, 6, 7, 8]),
            },
        ),
        (
            "RemainingVo[skipped/digest]",
            RemainingVo::Skipped {
                max_impact: 0.125,
                fence_digest: Digest::of(b"fence2"),
                filter: FilterVo::DigestOnly(Digest::of(b"fd")),
            },
        ),
    ];
    for (name, arm) in &arms {
        fuzz_decode(name, arm);
    }
    let list = ListVo {
        cluster: 3,
        weight: 1.5,
        popped: (0..16).map(|i| (i as u64, 2.0 - i as f32 * 0.1)).collect(),
        remaining: arms[1].1.clone(),
    };
    fuzz_decode("ListVo[skipped]", &list);

    // At least one real fixture must leave a list partially scanned, so the
    // skip-proof arm is also reached through the full pipeline.
    let skipped_in_fixtures = fixtures().iter().any(|(_, fx)| match &fx.response.vo.inv {
        InvVoVariant::Plain(vo) => vo
            .lists
            .iter()
            .any(|l| matches!(l.remaining, RemainingVo::Skipped { .. })),
        InvVoVariant::Grouped(vo) => vo
            .lists
            .iter()
            .any(|l| matches!(l.remaining, RemainingVo::Skipped { .. })),
    });
    assert!(
        skipped_in_fixtures,
        "no fixture exercises a skip proof end-to-end"
    );
}

#[test]
fn sharded_wire_types_decoding_is_total() {
    let fx = sharded_fixture();
    fuzz_decode::<ShardManifest>("ShardManifest", &fx.manifest);
    fuzz_decode::<ShardedVo>("ShardedVo", &fx.response.vo);
    fuzz_decode::<SharedSection>("SharedSection", &fx.response.vo.shared);
    let contributing = fx
        .response
        .vo
        .shards
        .iter()
        .find(|s| s.contributed > 0)
        .expect("sharded fixture has a contributing shard");
    fuzz_decode::<ShardVo>("ShardVo", contributing);
    if let Some(trimmed) = fx.response.vo.shards.iter().find(|s| s.contributed == 0) {
        fuzz_decode::<ShardVo>("ShardVo[trimmed]", trimmed);
    }
    // Both ShardBovw wire arms: the fixture's shards carry at least one
    // patched sub-VO (shared codebook ⇒ dedup applies), and resolving it
    // back yields an inline value to fuzz the other arm.
    let patched = fx
        .response
        .vo
        .shards
        .iter()
        .find(|s| matches!(s.bovw, ShardBovw::Patched { .. }))
        .expect("sharded fixture deduplicates at least one sub-VO");
    fuzz_decode::<ShardBovw>("ShardBovw[patched]", &patched.bovw);
    let inline = ShardBovw::Inline(
        patched
            .resolve_bovw(&fx.response.vo.shared)
            .expect("fixture patch resolves")
            .into_owned(),
    );
    fuzz_decode::<ShardBovw>("ShardBovw[inline]", &inline);
}

// ---------------------------------------------------------------------------
// RPC frame types: the socket protocol reuses the audited wire layer, and a
// hostile peer controls every frame byte, so every frame decoder must be
// total too.

/// A representative sample of every RPC wire type, seeded from a real
/// response (so payload arms carry realistic VOs) plus synthetic frames
/// for the arms a healthy fixture never produces.
type RpcSamples = (Vec<(&'static str, Request)>, Vec<(&'static str, Response)>);

fn rpc_samples() -> RpcSamples {
    use imageproof_crypto::Digest;
    let (_, fx) = &fixtures()[1]; // the ImageProof fixture
    let features = vec![vec![0.25f32; 8], vec![-1.5f32; 8]];
    let stats = WireStats {
        shared_ratio: 0.5,
        popped: 12,
        total_postings: 80,
        hashes_computed: 9,
        hashes_cached: 3,
        blocks_skipped: 2,
        blocks_scanned: 5,
    };
    let payload = QueryPayload {
        results: fx.response.results.clone(),
        vo: fx.response.vo.clone(),
        stats,
    };
    let trim = TrimPayload {
        topk: vec![(5, 0.9), (17, 0.25)],
        inv: fx.response.vo.inv.clone(),
        signatures: fx.response.vo.signatures.clone(),
    };
    let profile = WireProfile {
        root: Some(WireSpan {
            name: "rpc.query".into(),
            seconds: 0.125,
            counters: vec![("candidates".into(), 7)],
            children: vec![WireSpan {
                name: "fanout".into(),
                seconds: 0.0625,
                counters: Vec::new(),
                children: Vec::new(),
            }],
        }),
    };
    let registry = WireRegistry {
        counters: vec![(
            WireMetricId {
                name: "imageproof_rpc_failovers_total".into(),
                labels: Vec::new(),
            },
            3,
        )],
        gauges: vec![(
            WireMetricId {
                name: "g".into(),
                labels: vec![("shard".into(), "0".into())],
            },
            -4,
        )],
        histograms: vec![(
            WireMetricId {
                name: "imageproof_rpc_request_micros".into(),
                labels: vec![("shard".into(), "1".into())],
            },
            WireHistogram {
                count: 2,
                sum: 300,
                buckets: vec![(100, 1), (1000, 1)],
            },
        )],
    };
    let requests = vec![
        ("Request[hello]", Request::Hello),
        (
            "Request[query]",
            Request::Query {
                id: 7,
                k: 5,
                want_telemetry: true,
                features: features.clone(),
            },
        ),
        (
            "Request[query_batch]",
            Request::QueryBatch {
                id: 8,
                k: 3,
                want_telemetry: false,
                queries: vec![features.clone(), Vec::new()],
            },
        ),
        (
            "Request[trim]",
            Request::Trim {
                id: 9,
                k_trim: 1,
                features: features.clone(),
            },
        ),
        (
            "Request[trim_batch]",
            Request::TrimBatch {
                id: 10,
                items: vec![(2, features)],
            },
        ),
        ("Request[health]", Request::Health { id: 11 }),
    ];
    let responses = vec![
        (
            "Response[hello]",
            Response::Hello {
                shard_id: 1,
                shard_count: 4,
                root: Digest::of(b"root"),
            },
        ),
        (
            "Response[query]",
            Response::Query {
                id: 7,
                payload: payload.clone(),
            },
        ),
        (
            "Response[query_batch]",
            Response::QueryBatch {
                id: 8,
                payloads: vec![payload],
            },
        ),
        (
            "Response[trim]",
            Response::Trim {
                id: 9,
                payload: trim.clone(),
            },
        ),
        (
            "Response[trim_batch]",
            Response::TrimBatch {
                id: 10,
                payloads: vec![trim],
            },
        ),
        (
            "Response[telemetry]",
            Response::Telemetry {
                id: 7,
                profile,
                registry,
            },
        ),
        (
            "Response[error]",
            Response::Error {
                id: 0,
                message: "malformed request frame".into(),
            },
        ),
        (
            "Response[health]",
            Response::Health {
                id: 11,
                health: sample_wire_health(),
            },
        ),
    ];
    (requests, responses)
}

/// A heartbeat report with every field non-trivial, including a
/// non-default error class (the last byte on the wire — the strictly
/// decoded one worth corrupting).
fn sample_wire_health() -> WireHealth {
    use imageproof_crypto::Digest;
    WireHealth {
        shard_id: 3,
        shard_count: 8,
        root: Digest::of(b"fuzz-health-root"),
        uptime_seconds: 321.0625,
        queue_depth: 11,
        queries_served: 4096,
        last_error: ErrorClass::Oversize,
    }
}

#[test]
fn rpc_request_decoding_is_total() {
    let (requests, _) = rpc_samples();
    for (name, sample) in &requests {
        fuzz_decode(name, sample);
    }
}

#[test]
fn rpc_response_decoding_is_total() {
    let (_, responses) = rpc_samples();
    for (name, sample) in &responses {
        fuzz_decode(name, sample);
    }
}

/// The bare heartbeat report frame: truncations, bit flips, and garbage
/// must all reject or round-trip — and the trailing error-class byte is a
/// closed set, so any unknown class byte must be a typed decode error.
#[test]
fn rpc_health_frame_decoding_is_total() {
    let sample = sample_wire_health();
    fuzz_decode("WireHealth", &sample);
    let mut wire = sample.to_wire();
    let last = wire.len() - 1;
    for hostile in [4u8, 5, 17, 99, 255] {
        wire[last] = hostile;
        assert!(
            decode_total::<WireHealth>("WireHealth[hostile error class]", &wire).is_err(),
            "error class byte {hostile} must be rejected, not invented"
        );
    }
}

/// End-to-end for the sharded path: bit-flip the serialized sharded VO;
/// whenever the corruption still *decodes*, `verify_sharded` must reject
/// or accept without panicking — never crash.
#[test]
fn verify_sharded_never_panics_on_corrupted_vo() {
    let fx = sharded_fixture();
    let wire = fx.response.vo.to_wire();
    let stride = stride_for(wire.len()).max(3);
    let mut pos = 0;
    let mut verified_runs = 0u32;
    while pos < wire.len() {
        for bit in [0, 3, 7] {
            let mut m = wire.clone();
            m[pos] ^= 1 << bit;
            let Ok(vo) = decode_total::<ShardedVo>("ShardedVo", &m) else {
                continue;
            };
            let response = ShardedResponse {
                results: fx.response.results.clone(),
                vo,
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                fx.client
                    .verify_sharded(&fx.features, fx.k, &response, &fx.manifest)
                    .err()
            }));
            assert!(
                outcome.is_ok(),
                "verify_sharded PANICKED with bit {bit} of byte {pos} flipped"
            );
            verified_runs += 1;
        }
        pos += stride;
    }
    assert!(
        verified_runs > 0,
        "no flipped sharded VO decoded; corruption sweep too narrow"
    );
}

/// End-to-end: bit-flip the serialized VO; whenever the corruption still
/// *decodes*, the full client verification must reject or accept without
/// panicking — never crash.
#[test]
fn client_verify_never_panics_on_corrupted_vo() {
    for (scheme, fx) in fixtures() {
        let wire = fx.response.vo.to_wire();
        let stride = stride_for(wire.len()).max(3);
        let mut pos = 0;
        let mut verified_runs = 0u32;
        while pos < wire.len() {
            for bit in [0, 3, 7] {
                let mut m = wire.clone();
                m[pos] ^= 1 << bit;
                let Ok(vo) = decode_total::<QueryVo>("QueryVo", &m) else {
                    continue;
                };
                let response = QueryResponse {
                    results: fx.response.results.clone(),
                    vo,
                };
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    fx.client.verify(&fx.features, fx.k, &response).err()
                }));
                assert!(
                    outcome.is_ok(),
                    "Client::verify PANICKED for {scheme:?} with bit {bit} of byte {pos} flipped"
                );
                verified_runs += 1;
            }
            pos += stride;
        }
        assert!(
            verified_runs > 0,
            "{scheme:?}: no flipped VO decoded; corruption sweep too narrow"
        );
    }
}

// ---------------------------------------------------------------------------
// Randomized depth on builders with the real proptest crate (the offline
// stub toolchain compiles this block away).

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_any_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let _ = decode_total::<QueryVo>("QueryVo", &bytes);
        let _ = decode_total::<BovwVo>("BovwVo", &bytes);
        let _ = decode_total::<BaselineBovwVo>("BaselineBovwVo", &bytes);
        let _ = decode_total::<VoNode>("VoNode", &bytes);
        let _ = decode_total::<VoLeafEntry>("VoLeafEntry", &bytes);
        let _ = decode_total::<Reveal>("Reveal", &bytes);
        let _ = decode_total::<InvVo>("InvVo", &bytes);
        let _ = decode_total::<ListVo>("ListVo", &bytes);
        let _ = decode_total::<RemainingVo>("RemainingVo", &bytes);
        let _ = decode_total::<GroupedInvVo>("GroupedInvVo", &bytes);
        let _ = decode_total::<GroupedListVo>("GroupedListVo", &bytes);
        let _ = decode_total::<Group>("Group", &bytes);
        let _ = decode_total::<ShardManifest>("ShardManifest", &bytes);
        let _ = decode_total::<ShardVo>("ShardVo", &bytes);
        let _ = decode_total::<ShardBovw>("ShardBovw", &bytes);
        let _ = decode_total::<SharedSection>("SharedSection", &bytes);
        let _ = decode_total::<ShardedVo>("ShardedVo", &bytes);
        let _ = decode_total::<Request>("Request", &bytes);
        let _ = decode_total::<Response>("Response", &bytes);
        let _ = decode_total::<QueryPayload>("QueryPayload", &bytes);
        let _ = decode_total::<TrimPayload>("TrimPayload", &bytes);
        let _ = decode_total::<WireStats>("WireStats", &bytes);
        let _ = decode_total::<WireSpan>("WireSpan", &bytes);
        let _ = decode_total::<WireProfile>("WireProfile", &bytes);
        let _ = decode_total::<WireRegistry>("WireRegistry", &bytes);
    }

    #[test]
    fn corrupted_tails_of_real_vos_never_panic(
        scheme_idx in 0usize..3,
        cut in 0usize..4096,
        tail in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let (_, fx) = &fixtures()[scheme_idx];
        let wire = fx.response.vo.to_wire();
        let keep = cut % (wire.len() + 1);
        let mut bytes = wire[..keep].to_vec();
        bytes.extend_from_slice(&tail);
        let _ = decode_total::<QueryVo>("QueryVo", &bytes);
    }
}

// A separate low-case-count block: each case builds two full systems.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Trimmed sharded verification is *exact*: for random tie-heavy
    /// corpora (a trio of images shares one encoding, so ties straddle
    /// shard boundaries), every scheme, S ∈ {1, 2, 4, 8}, and k, the
    /// verified sharded top-k equals the monolith's bit-for-bit — ids,
    /// scores, and tie resolution included — even though the sub-VOs are
    /// merge-trimmed and deduplicated.
    #[test]
    fn tie_heavy_trimmed_sharded_topk_equals_monolith(
        seed in 0u64..500,
        scheme_idx in 0usize..4,
        s_idx in 0usize..4,
        k in 1usize..7,
    ) {
        let scheme = Scheme::ALL[scheme_idx];
        let shard_count = [1usize, 2, 4, 8][s_idx];
        let mut corpus = Corpus::generate(&CorpusConfig {
            kind: DescriptorKind::Surf,
            n_images: 40,
            n_latent_words: 40,
            features_per_image: 24,
            seed,
            ..CorpusConfig::small(DescriptorKind::Surf)
        });
        // Tie-heavy: three images share one feature set and latent words,
        // so they score identically for every query and land in distinct
        // shards for every S ≥ 2 (9, 18, 23 differ mod 2, 4, and 8).
        let trio = [9usize, 18, 23];
        let f0 = corpus.images[trio[0]].features.clone();
        let w0 = corpus.images[trio[0]].latent_words.clone();
        for &dup in &trio[1..] {
            corpus.images[dup].features = f0.clone();
            corpus.images[dup].latent_words = w0.clone();
        }
        let akm = AkmParams {
            n_clusters: 24,
            n_trees: 2,
            max_leaf_size: 2,
            max_checks: 8,
            iterations: 1,
            seed: seed + 1,
        };
        let owner = Owner::new(&[13u8; 32]);
        let (db, published) = owner.build_system(&corpus, &akm, scheme);
        let mono_sp = ServiceProvider::new(db);
        let mono_client = Client::new(published);
        let system = owner.build_sharded_system(&corpus, &akm, scheme, shard_count);
        let sp = ShardedSp::new(system.shards);
        let client = Client::new(system.published);
        // Query from the trio so its three-way tie contends for the cut.
        let features = corpus.query_from_image(trio[0] as u64, 16, seed);
        let (mono_resp, _) = mono_sp.query(&features, k);
        let mono = mono_client
            .verify(&features, k, &mono_resp)
            .expect("monolith verifies");
        let (resp, _) = sp.query(&features, k);
        let verified = client
            .verify_sharded(&features, k, &resp, &system.manifest)
            .expect("trimmed sharded response verifies");
        prop_assert_eq!(
            verified.topk,
            mono.topk,
            "scheme {:?} S={} k={}: trimmed sharded top-k diverged",
            scheme,
            shard_count,
            k
        );
    }
}
