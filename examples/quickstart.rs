//! Quickstart: build an authenticated image-retrieval system, run one
//! query, and verify the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use imageproof_akm::AkmParams;
use imageproof_core::{Client, Owner, Scheme, ServiceProvider};
use imageproof_crypto::wire::Encode;
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};

fn main() {
    // 1. The image owner generates (here: synthesizes) an image corpus and
    //    extracts local SURF-like features.
    let corpus = Corpus::generate(&CorpusConfig {
        n_images: 500,
        n_latent_words: 300,
        ..CorpusConfig::small(DescriptorKind::Surf)
    });
    println!(
        "corpus: {} images, {} descriptors ({:?}, {}-d)",
        corpus.images.len(),
        corpus.total_features(),
        corpus.config.kind,
        corpus.config.kind.dim(),
    );

    // 2. The owner trains an AKM codebook, builds the two authenticated
    //    data structures (Merkle randomized k-d trees + Merkle inverted
    //    index with cuckoo filters), signs everything, and outsources the
    //    database to the service provider.
    let owner = Owner::new(&[42u8; 32]);
    let akm = AkmParams {
        n_clusters: 512,
        ..AkmParams::default()
    };
    let (db, published) = owner.build_system(&corpus, &akm, Scheme::ImageProof);
    println!(
        "owner: built {} MRKD trees over a {}-word codebook; root signed",
        published.n_trees, 512
    );
    let sp = ServiceProvider::new(db);

    // 3. A client photographs one of the catalogue scenes again (query
    //    features re-sampled around image 17's visual words) and asks the
    //    SP for the top-5 similar images.
    let query = corpus.query_from_image(17, 100, 7);
    let k = 5;
    let (response, sp_stats) = sp.query(&query, k);
    println!(
        "SP: answered top-{k} in {:.1} ms (BoVW) + {:.1} ms (inverted index); \
         VO is {} bytes, {:.1}% of relevant postings popped",
        sp_stats.bovw_seconds * 1e3,
        sp_stats.inv_seconds * 1e3,
        response.vo.wire_size(),
        sp_stats.popped_ratio() * 100.0,
    );

    // 4. The client verifies soundness and completeness against the owner's
    //    public key — without trusting the SP.
    let client = Client::new(published);
    let verified = client
        .verify(&query, k, &response)
        .expect("the honest SP's response must verify");
    println!(
        "client: verified in {:.1} ms; top-{k}:",
        verified.stats.total_seconds() * 1e3
    );
    for (rank, (id, score)) in verified.topk.iter().enumerate() {
        println!("  #{:<2} image {:<4} similarity {:.4}", rank + 1, id, score);
    }
    assert!(
        verified.topk.iter().any(|&(id, _)| id == 17),
        "the photographed scene must rank among the top-{k}"
    );
    println!("ok: image 17 (the photographed scene) is in the verified top-{k}");
}
