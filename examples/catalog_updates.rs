//! Dynamic catalogue maintenance: the owner inserts and removes images
//! after outsourcing, incrementally re-signing the authenticated state —
//! clients with fresh parameters verify, clients with stale parameters
//! reject.
//!
//! ```sh
//! cargo run --release --example catalog_updates
//! ```

use imageproof_akm::AkmParams;
use imageproof_core::{Client, Owner, Scheme, ServiceProvider};
use imageproof_obs::Stopwatch;
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig {
        n_images: 300,
        n_latent_words: 200,
        ..CorpusConfig::small(DescriptorKind::Surf)
    });
    let owner = Owner::new(&[0x11; 32]);
    let akm = AkmParams {
        n_clusters: 256,
        ..AkmParams::default()
    };
    let t = Stopwatch::start();
    let (mut db, original_params) = owner.build_system(&corpus, &akm, Scheme::ImageProof);
    println!(
        "initial build: {} images in {:.1}s",
        corpus.images.len(),
        t.elapsed_seconds()
    );

    // A new photograph of scene 42 arrives.
    let new_id = 5_000;
    let new_features = corpus.query_from_image(42, 45, 901);
    let t = Stopwatch::start();
    let fresh_params = owner
        .insert_image(&mut db, new_id, vec![0xAB; 256], &new_features)
        .expect("insert");
    println!(
        "insert image {new_id}: incremental re-hash + re-sign in {:.1} ms",
        t.elapsed_seconds() * 1e3
    );

    let query = corpus.query_from_image(42, 45, 902);
    let sp = ServiceProvider::new(db);

    // A client with the refreshed parameters retrieves and verifies the
    // new image…
    let client = Client::new(fresh_params.clone());
    let (response, _) = sp.query(&query, 5);
    let verified = client.verify(&query, 5, &response).expect("fresh verifies");
    assert!(verified.topk.iter().any(|&(id, _)| id == new_id));
    println!("fresh client: verified top-5 includes the new image {new_id}");

    // …while a client still holding the pre-update signature rejects: the
    // SP cannot silently serve a different catalogue version.
    let stale_client = Client::new(original_params);
    match stale_client.verify(&query, 5, &response) {
        Err(e) => println!("stale client: rejected as expected ({e})"),
        Ok(_) => panic!("stale parameters must not verify an updated catalogue"),
    }

    // The owner can also retire images; insert ∘ remove is the identity on
    // the authenticated state.
    let mut db = sp.into_database();
    let root_before = db.mrkd.combined_root_digest();
    owner
        .insert_image(
            &mut db,
            6_000,
            vec![1; 64],
            &corpus.query_from_image(7, 30, 903),
        )
        .expect("insert");
    owner.remove_image(&mut db, 6_000).expect("remove");
    assert_eq!(db.mrkd.combined_root_digest(), root_before);
    println!("insert + remove restored the exact ADS root — incremental updates are consistent.");
}
