//! Codebook scaling: how VO size and popped-posting ratio react as the
//! vocabulary grows (a miniature of the paper's Figs. 8/10/13).
//!
//! Larger codebooks → shorter posting lists → earlier termination and
//! smaller inverted-index VOs, while the BoVW step is nearly insensitive
//! (tree height grows logarithmically).
//!
//! ```sh
//! cargo run --release --example codebook_scaling
//! ```

use imageproof_akm::AkmParams;
use imageproof_core::{Client, Owner, Scheme, ServiceProvider};
use imageproof_crypto::wire::Encode;
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig {
        n_images: 400,
        features_per_image: 50,
        n_latent_words: 200,
        ..CorpusConfig::small(DescriptorKind::Surf)
    });
    let owner = Owner::new(&[5u8; 32]);

    println!(
        "{:>9} {:>12} {:>12} {:>10} {:>12}",
        "codebook", "VO bytes", "SP ms", "popped %", "client ms"
    );
    for n_clusters in [256usize, 512, 1024] {
        let akm = AkmParams {
            n_clusters,
            ..AkmParams::default()
        };
        let (db, published) = owner.build_system(&corpus, &akm, Scheme::ImageProof);
        let sp = ServiceProvider::new(db);
        let client = Client::new(published);

        let mut vo = 0usize;
        let mut sp_ms = 0.0;
        let mut popped = 0.0;
        let mut client_ms = 0.0;
        let queries = 3;
        for q in 0..queries {
            let query = corpus.query_from_image(q * 37, 80, 500 + q);
            let (response, stats) = sp.query(&query, 10);
            let verified = client.verify(&query, 10, &response).expect("honest");
            vo += response.vo.wire_size();
            sp_ms += (stats.bovw_seconds + stats.inv_seconds) * 1e3;
            popped += stats.popped_ratio() * 100.0;
            client_ms += verified.stats.total_seconds() * 1e3;
        }
        let n = queries as f64;
        println!(
            "{:>9} {:>12} {:>12.1} {:>10.1} {:>12.1}",
            n_clusters,
            vo / queries as usize,
            sp_ms / n,
            popped / n,
            client_ms / n,
        );
    }
}
