//! Photo-stock scenario: a stock-photography agency outsources its
//! catalogue and serves near-duplicate lookups to paying clients, comparing
//! the four authentication schemes on the same workload.
//!
//! This is the workload the paper's introduction motivates: a small
//! enterprise outsources CBIR to an untrusted cloud; customers submit query
//! photos and must be able to verify they received the genuine best matches
//! (e.g. for licensing disputes — "is this really the closest catalogue
//! image?").
//!
//! ```sh
//! cargo run --release --example photo_stock
//! ```

use imageproof_akm::{AkmParams, Codebook, SparseBovw};
use imageproof_core::{Client, Owner, Scheme, ServiceProvider, ShardedSp, SystemConfig};
use imageproof_crypto::wire::Encode;
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};

fn main() {
    // The agency's catalogue: SIFT-like 128-d descriptors.
    let corpus = Corpus::generate(&CorpusConfig {
        kind: DescriptorKind::Sift,
        n_images: 400,
        features_per_image: 60,
        n_latent_words: 250,
        words_per_image: 10,
        zipf_exponent: 1.0,
        noise_sigma: 0.02,
        image_bytes: 512,
        seed: 2024,
    });
    let owner = Owner::new(&[77u8; 32]);
    let akm = AkmParams {
        n_clusters: 512,
        ..AkmParams::default()
    };
    // Train the codebook once; every scheme indexes the same catalogue.
    let codebook = Codebook::train(corpus.config.kind, corpus.all_features(), &akm);

    // Three customers photograph catalogue scenes 3, 141 and 299.
    let customers = [(3u64, 80usize), (141, 120), (299, 100)];
    let k = 10;

    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>10}",
        "scheme", "VO bytes", "SP ms", "client ms", "popped %"
    );
    for scheme in Scheme::ALL {
        let (db, published) = owner.build_system_with_codebook(&corpus, codebook.clone(), scheme);
        let sp = ServiceProvider::new(db);
        let client = Client::new(published);

        let mut vo_bytes = 0usize;
        let mut sp_ms = 0.0;
        let mut client_ms = 0.0;
        let mut popped = 0.0;
        for (i, &(source, n_features)) in customers.iter().enumerate() {
            let query = corpus.query_from_image(source, n_features, 1000 + i as u64);
            let (response, stats) = sp.query(&query, k);
            let verified = client
                .verify(&query, k, &response)
                .expect("honest SP verifies");
            assert!(
                verified.topk.iter().any(|&(id, _)| id == source),
                "{scheme:?}: customer {i}'s scene must be found"
            );
            vo_bytes += response.vo.wire_size();
            sp_ms += (stats.bovw_seconds + stats.inv_seconds) * 1e3;
            client_ms += verified.stats.total_seconds() * 1e3;
            popped += stats.popped_ratio() * 100.0;
        }
        let n = customers.len() as f64;
        println!(
            "{:<18} {:>10} {:>12.1} {:>12.1} {:>10.1}",
            scheme.label(),
            vo_bytes / customers.len(),
            sp_ms / n,
            client_ms / n,
            popped / n,
        );
    }
    println!("\nall three customers' results verified under every scheme.");

    // The agency outgrows one server: the same catalogue split across four
    // shards, served with an authenticated cross-shard top-k merge. The
    // aggregate stats show where the fan-out spends its time.
    let encodings: Vec<_> = corpus
        .images
        .iter()
        .map(|img| {
            (
                img.id,
                SparseBovw::encode(&codebook, img.features.iter().map(Vec::as_slice)),
            )
        })
        .collect();
    let system = owner.build_sharded_system_prepared_config(
        &corpus,
        codebook,
        encodings,
        SystemConfig::new(Scheme::ImageProof),
        4,
    );
    let sp = ShardedSp::new(system.shards);
    let client = Client::new(system.published);
    println!("\nsharded serving (ImageProof scheme, 4 shards):");
    for (i, &(source, n_features)) in customers.iter().enumerate() {
        let query = corpus.query_from_image(source, n_features, 1000 + i as u64);
        let (response, stats) = sp.query(&query, k);
        let verified = client
            .verify_sharded(&query, k, &response, &system.manifest)
            .expect("honest sharded SP verifies");
        assert!(
            verified.topk.iter().any(|&(id, _)| id == source),
            "sharded: customer {i}'s scene must be found"
        );
        println!(
            "  customer {i}: popped {} postings across shards | hash cache {:.0}% | \
             slowest shard {:.1} ms | merge {:.0}% of wall | {} trim queries | {} entries trimmed | {} B deduped",
            stats.total_popped(),
            stats.cache_hit_ratio() * 100.0,
            stats.slowest_shard_seconds() * 1e3,
            stats.merge_share() * 100.0,
            stats.trim_queries,
            stats.trimmed_entries,
            stats.dedup_bytes_saved,
        );
    }
    println!("sharded top-k verified against the signed shard manifest for every customer.");
}
