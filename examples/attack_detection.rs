//! Attack detection: a malicious service provider attempts each of the
//! §V-D attack cases; the client catches every one.
//!
//! ```sh
//! cargo run --release --example attack_detection
//! ```

use imageproof_akm::AkmParams;
use imageproof_core::{adversary, Client, Owner, QueryResponse, Scheme, ServiceProvider};
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};

fn check_rejected(
    name: &str,
    client: &Client,
    query: &[Vec<f32>],
    k: usize,
    response: &QueryResponse,
) {
    match client.verify(query, k, response) {
        Ok(_) => panic!("ATTACK SUCCEEDED: {name} was not detected!"),
        Err(e) => println!("  ✗ {name:<42} rejected: {e}"),
    }
}

fn main() {
    let corpus = Corpus::generate(&CorpusConfig {
        n_images: 300,
        n_latent_words: 200,
        ..CorpusConfig::small(DescriptorKind::Surf)
    });
    let owner = Owner::new(&[13u8; 32]);
    let akm = AkmParams {
        n_clusters: 256,
        ..AkmParams::default()
    };
    let (db, published) = owner.build_system(&corpus, &akm, Scheme::ImageProof);
    let sp = ServiceProvider::new(db);
    let client = Client::new(published);

    let query = corpus.query_from_image(9, 60, 3);
    let k = 4;
    let (honest, _) = sp.query(&query, k);

    println!("honest response:");
    let verified = client.verify(&query, k, &honest).expect("honest verifies");
    for (id, score) in &verified.topk {
        println!("  ✓ image {id:<4} similarity {score:.4}");
    }

    println!("\nattacks (paper §V-D):");

    // Case 3: fake image data.
    let mut attack = honest.clone();
    adversary::tamper_image_data(&mut attack);
    check_rejected("case 3: tampered image bytes", &client, &query, k, &attack);

    let mut attack = honest.clone();
    adversary::forge_image_signature(&mut attack);
    check_rejected(
        "case 3: forged image signature",
        &client,
        &query,
        k,
        &attack,
    );

    // Case 2: forged top-k set.
    let mut attack = honest.clone();
    let winner_ids: Vec<u64> = attack.results.iter().map(|r| r.id).collect();
    let substitute = corpus
        .images
        .iter()
        .find(|img| !winner_ids.contains(&img.id))
        .expect("a non-winner image exists");
    let stored = sp.database().images[&substitute.id].clone();
    adversary::substitute_result(&mut attack, substitute.id, stored.data, stored.signature);
    check_rejected(
        "case 2: substituted (validly signed) image",
        &client,
        &query,
        k,
        &attack,
    );

    let mut attack = honest.clone();
    assert!(adversary::tamper_posting(&mut attack));
    check_rejected(
        "case 2: tampered posting impact",
        &client,
        &query,
        k,
        &attack,
    );

    // Case 1: forged BoVW encoding.
    let mut attack = honest.clone();
    assert!(adversary::tamper_bovw_centroid(&mut attack));
    check_rejected(
        "case 1: tampered cluster centroid",
        &client,
        &query,
        k,
        &attack,
    );

    let mut attack = honest.clone();
    assert!(adversary::tamper_bovw_split(&mut attack));
    check_rejected(
        "case 1: tampered k-d splitting hyperplane",
        &client,
        &query,
        k,
        &attack,
    );

    println!("\nall attacks detected.");
}
