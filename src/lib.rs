//! Umbrella crate re-exporting the ImageProof workspace crates, plus the
//! [`parallel_eq`] test utilities proving parallel/serial equivalence.
pub use imageproof_akm as akm;
pub use imageproof_core as core;
pub use imageproof_crypto as crypto;
pub use imageproof_cuckoo as cuckoo;
pub use imageproof_invindex as invindex;
pub use imageproof_mrkd as mrkd;
pub use imageproof_obs as obs;
pub use imageproof_parallel as parallel;
pub use imageproof_vision as vision;

pub mod parallel_eq;
