//! `imageproof-demo` — a parameterized end-to-end demonstration CLI.
//!
//! ```sh
//! cargo run --release --bin imageproof-demo -- \
//!     --images 800 --codebook 1024 --scheme imageproof -k 10 --queries 5
//! ```
//!
//! Builds a synthetic catalogue, outsources it under the chosen
//! authentication scheme, runs verified queries, and prints a cost summary —
//! the "try it on your own parameters" entry point for the library.

use imageproof_akm::AkmParams;
use imageproof_core::{Client, Owner, Scheme, ServiceProvider};
use imageproof_crypto::wire::Encode;
use imageproof_obs::Stopwatch;
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};

struct Args {
    images: usize,
    codebook: usize,
    scheme: Scheme,
    k: usize,
    queries: usize,
    features: usize,
    kind: DescriptorKind,
    profile: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            images: 500,
            codebook: 1024,
            scheme: Scheme::ImageProof,
            k: 10,
            queries: 3,
            features: 100,
            kind: DescriptorKind::Surf,
            profile: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--images" => args.images = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--codebook" => args.codebook = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "-k" | "--topk" => args.k = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queries" => args.queries = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--features" => args.features = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--scheme" => {
                args.scheme = match value(&mut i).to_lowercase().as_str() {
                    "baseline" => Scheme::Baseline,
                    "imageproof" => Scheme::ImageProof,
                    "optimized-bovw" | "opt-bovw" => Scheme::OptimizedBovw,
                    "optimized" | "optimized-both" | "opt-both" => Scheme::OptimizedBoth,
                    _ => usage(),
                }
            }
            "--descriptor" => {
                args.kind = match value(&mut i).to_lowercase().as_str() {
                    "sift" => DescriptorKind::Sift,
                    "surf" => DescriptorKind::Surf,
                    _ => usage(),
                }
            }
            "--profile" => args.profile = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    args
}

fn usage() -> ! {
    eprintln!(
        "usage: imageproof-demo [--images N] [--codebook N] [-k N] [--queries N]\n\
         \x20                      [--features N] [--scheme baseline|imageproof|opt-bovw|opt-both]\n\
         \x20                      [--descriptor sift|surf] [--profile]\n\
         \n\
         --profile dumps the per-query span tree (SP + client) and the\n\
         metrics-registry snapshot after the run"
    );
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    println!(
        "building: {} images ({:?}), codebook {}, scheme {}",
        args.images,
        args.kind,
        args.codebook,
        args.scheme.label()
    );

    let t = Stopwatch::start();
    let corpus = Corpus::generate(&CorpusConfig {
        kind: args.kind,
        n_images: args.images,
        n_latent_words: (args.codebook / 2).max(50),
        ..CorpusConfig::small(args.kind)
    });
    println!(
        "  corpus: {} descriptors in {:.1}s",
        corpus.total_features(),
        t.elapsed_seconds()
    );

    let t = Stopwatch::start();
    let owner = Owner::new(&[0xD3; 32]);
    let akm = AkmParams {
        n_clusters: args.codebook,
        ..AkmParams::default()
    };
    let (db, published) = owner.build_system(&corpus, &akm, args.scheme);
    println!(
        "  owner setup (codebook + ADSs + signatures): {:.1}s",
        t.elapsed_seconds()
    );
    let sp = ServiceProvider::new(db);
    let client = Client::new(published);

    let mut sp_total = 0.0;
    let mut client_total = 0.0;
    let mut vo_total = 0usize;
    for q in 0..args.queries {
        let source = ((q * 71 + 13) % args.images) as u64;
        let query = corpus.query_from_image(source, args.features, 5000 + q as u64);

        let t = Stopwatch::start();
        let (response, stats, sp_profile) =
            sp.query_profiled(&query, args.k, imageproof_core::Concurrency::serial());
        let sp_time = t.elapsed_seconds();

        let t = Stopwatch::start();
        let (verified, client_profile) = client
            .verify_profiled(&query, args.k, &response)
            .expect("honest SP must verify");
        let client_time = t.elapsed_seconds();

        let hit = verified.topk.iter().any(|&(id, _)| id == source);
        println!(
            "  query {q}: source {source:>4} {} | SP {:.0} ms (popped {:.0}%) | \
             client {:.0} ms | VO {} KiB",
            if hit { "FOUND" } else { "miss " },
            sp_time * 1e3,
            stats.popped_ratio() * 100.0,
            client_time * 1e3,
            response.vo.wire_size() / 1024,
        );
        if args.profile {
            print!("{}", sp_profile.render());
            print!("{}", client_profile.render());
        }
        sp_total += sp_time;
        client_total += client_time;
        vo_total += response.vo.wire_size();
    }
    let n = args.queries as f64;
    println!(
        "averages: SP {:.0} ms | client {:.0} ms | VO {} KiB",
        sp_total / n * 1e3,
        client_total / n * 1e3,
        vo_total / args.queries / 1024
    );
    if args.profile {
        println!("\n-- metrics registry (Prometheus text exposition) --");
        print!("{}", imageproof_obs::global().prometheus_text());
    }
}
