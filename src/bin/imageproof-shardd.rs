//! `imageproof-shardd` — the sharded deployment over real sockets.
//!
//! Both halves of a split deployment rebuild the same deterministic
//! synthetic catalogue from fixed seeds, so a shard process and the
//! coordinator agree on the codebook, the manifest, and every committed
//! ADS root without exchanging any files — the only thing crossing the
//! process boundary is the length-prefixed RPC protocol itself.
//!
//! ```sh
//! # one-command demo: every shard on its own loopback port, coordinator
//! # fans out, the client verifies, RPC latency quantiles are printed
//! cargo run --release --bin imageproof-shardd -- demo --shards 4
//!
//! # or run each shard as its own OS process...
//! cargo run --release --bin imageproof-shardd -- shard --index 0 --shards 2
//! cargo run --release --bin imageproof-shardd -- shard --index 1 --shards 2
//! # ...and point the coordinator at the two printed addresses
//! cargo run --release --bin imageproof-shardd -- coordinator --shards 2 \
//!     --connect 127.0.0.1:PORT0,127.0.0.1:PORT1
//! ```
//!
//! Build parameters (`--images`, `--codebook`, `--scheme`) must match
//! between the shard processes and the coordinator: the coordinator pins
//! every shard's hello (shard id, deployment size, committed ADS root)
//! against its own owner-signed manifest and refuses any mismatch.

use imageproof_akm::AkmParams;
use imageproof_core::rpc::{CoordinatorConfig, RpcCoordinator, ShardEndpoint, ShardServer};
use imageproof_core::{Client, Owner, Scheme, ShardManifest, ShardedSp, SystemConfig};
use imageproof_crypto::wire::Encode;
use imageproof_obs::Stopwatch;
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};
use std::net::SocketAddr;

const OWNER_SEED: [u8; 32] = [0x21; 32];

enum Mode {
    Demo,
    Shard,
    Coordinator,
}

struct Args {
    mode: Mode,
    shards: usize,
    index: usize,
    connect: Vec<SocketAddr>,
    images: usize,
    codebook: usize,
    scheme: Scheme,
    k: usize,
    queries: usize,
    /// Scrape-endpoint bind address for this role (`--obs-addr`). The
    /// demo autobinds `127.0.0.1:0` for every shard and the coordinator
    /// and prints the resulting addresses.
    obs_addr: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            mode: Mode::Demo,
            shards: 2,
            index: 0,
            connect: Vec::new(),
            images: 120,
            codebook: 96,
            scheme: Scheme::ImageProof,
            k: 5,
            queries: 3,
            obs_addr: None,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = argv.first() else { usage() };
    args.mode = match mode.as_str() {
        "demo" => Mode::Demo,
        "shard" => Mode::Shard,
        "coordinator" => Mode::Coordinator,
        _ => usage(),
    };
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--shards" => args.shards = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--index" => args.index = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--images" => args.images = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--codebook" => args.codebook = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "-k" | "--topk" => args.k = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queries" => args.queries = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--connect" => {
                args.connect = value(&mut i)
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--obs-addr" => args.obs_addr = Some(value(&mut i)),
            "--scheme" => {
                args.scheme = match value(&mut i).to_lowercase().as_str() {
                    "baseline" => Scheme::Baseline,
                    "imageproof" => Scheme::ImageProof,
                    "optimized-bovw" | "opt-bovw" => Scheme::OptimizedBovw,
                    "optimized" | "optimized-both" | "opt-both" => Scheme::OptimizedBoth,
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    if args.shards == 0 || args.index >= args.shards {
        usage();
    }
    args
}

fn usage() -> ! {
    eprintln!(
        "usage: imageproof-shardd <demo|shard|coordinator> [options]\n\
         \n\
         demo         launch every shard server on a loopback port, fan out,\n\
         \x20            verify, and print per-shard RPC latency quantiles\n\
         shard        serve one shard of the deployment on a loopback port\n\
         \x20            (--index I, blocks until killed)\n\
         coordinator  connect to running shard processes (--connect a,b,...)\n\
         \n\
         options: [--shards N] [--index I] [--connect addr,addr,...]\n\
         \x20        [--images N] [--codebook N] [-k N] [--queries N]\n\
         \x20        [--scheme baseline|imageproof|opt-bovw|opt-both]\n\
         \x20        [--obs-addr HOST:PORT]\n\
         \n\
         --obs-addr serves /metrics, /metrics.json, /healthz, and /events\n\
         for the role (the demo autobinds one per shard plus one for the\n\
         coordinator and prints the addresses)\n\
         \n\
         build parameters must match across all processes of one deployment"
    );
    std::process::exit(2);
}

/// The deterministic build both sides derive independently.
fn build(args: &Args) -> (Corpus, imageproof_core::ShardedSystem) {
    let corpus = Corpus::generate(&CorpusConfig {
        kind: DescriptorKind::Surf,
        n_images: args.images,
        n_latent_words: (args.codebook / 2).max(50),
        ..CorpusConfig::small(DescriptorKind::Surf)
    });
    let akm = AkmParams {
        n_clusters: args.codebook,
        ..AkmParams::default()
    };
    let system = Owner::new(&OWNER_SEED).build_sharded_system_config(
        &corpus,
        &akm,
        SystemConfig::new(args.scheme),
        args.shards,
    );
    (corpus, system)
}

fn main() {
    let args = parse_args();
    println!(
        "building deterministic deployment: {} images, codebook {}, scheme {}, {} shards",
        args.images,
        args.codebook,
        args.scheme.label(),
        args.shards
    );
    let t = Stopwatch::start();
    let (corpus, system) = build(&args);
    println!("  built in {:.1}s", t.elapsed_seconds());

    match args.mode {
        Mode::Shard => run_shard(args, system),
        Mode::Coordinator => {
            let client = Client::new(system.published);
            let endpoints: Vec<ShardEndpoint> = args
                .connect
                .iter()
                .map(|a| ShardEndpoint::single(*a))
                .collect();
            if endpoints.len() != args.shards {
                eprintln!(
                    "--connect must list exactly {} addresses (got {})",
                    args.shards,
                    endpoints.len()
                );
                std::process::exit(2);
            }
            run_coordinator(&args, &corpus, &client, &system.manifest, endpoints, &[]);
        }
        Mode::Demo => {
            let client = Client::new(system.published);
            let manifest = system.manifest;
            let engines = ShardedSp::new(system.shards).into_shards();
            let shard_count = engines.len() as u32;
            let mut servers = Vec::new();
            let mut scrapes = Vec::new();
            let mut endpoints = Vec::new();
            for (shard, engine) in engines.into_iter().enumerate() {
                let (server, scrape) = ShardServer::new(engine, shard as u32, shard_count)
                    .launch_observed("127.0.0.1:0")
                    .unwrap_or_else(|e| {
                        eprintln!("failed to launch shard {shard}: {e}");
                        std::process::exit(1);
                    });
                println!(
                    "  shard {shard} listening on {} (obs http://{})",
                    server.addr(),
                    scrape.addr()
                );
                endpoints.push(ShardEndpoint::single(server.addr()));
                servers.push(server);
                scrapes.push(scrape);
            }
            let mut demo_args = args;
            if demo_args.obs_addr.is_none() {
                demo_args.obs_addr = Some("127.0.0.1:0".to_string());
            }
            let scrape_addrs: Vec<SocketAddr> = scrapes.iter().map(|s| s.addr()).collect();
            run_coordinator(
                &demo_args,
                &corpus,
                &client,
                &manifest,
                endpoints,
                &scrape_addrs,
            );
            for scrape in scrapes {
                scrape.shutdown();
            }
            for server in servers {
                server.shutdown();
            }
        }
    }
}

fn run_shard(args: Args, system: imageproof_core::ShardedSystem) -> ! {
    let mut engines = ShardedSp::new(system.shards).into_shards();
    let engine = engines.remove(args.index);
    let builder = ShardServer::new(engine, args.index as u32, args.shards as u32);
    let (server, scrape) = match &args.obs_addr {
        Some(addr) => {
            let (server, scrape) = builder.launch_observed(addr).unwrap_or_else(|e| {
                eprintln!("failed to launch shard {}: {e}", args.index);
                std::process::exit(1);
            });
            (server, Some(scrape))
        }
        None => {
            let server = builder.launch().unwrap_or_else(|e| {
                eprintln!("failed to launch shard {}: {e}", args.index);
                std::process::exit(1);
            });
            (server, None)
        }
    };
    match &scrape {
        Some(s) => println!(
            "shard {}/{} listening on {} (obs http://{}, kill the process to stop)",
            args.index,
            args.shards,
            server.addr(),
            s.addr()
        ),
        None => println!(
            "shard {}/{} listening on {} (kill the process to stop)",
            args.index,
            args.shards,
            server.addr()
        ),
    }
    loop {
        std::thread::park();
    }
}

fn run_coordinator(
    args: &Args,
    corpus: &Corpus,
    client: &Client,
    manifest: &ShardManifest,
    endpoints: Vec<ShardEndpoint>,
    shard_obs: &[SocketAddr],
) {
    let shard_count = endpoints.len();
    let mut coord = RpcCoordinator::connect(endpoints, manifest, CoordinatorConfig::default())
        .unwrap_or_else(|e| {
            eprintln!("coordinator failed to connect: {e}");
            std::process::exit(1);
        });
    println!("coordinator connected: all {shard_count} hellos matched the manifest pin");
    let scrape = args.obs_addr.as_deref().map(|addr| {
        let scrape = coord.launch_scrape(addr).unwrap_or_else(|e| {
            eprintln!("coordinator failed to bind obs endpoint {addr}: {e}");
            std::process::exit(1);
        });
        println!("coordinator obs on http://{}", scrape.addr());
        scrape
    });

    for q in 0..args.queries {
        let source = ((q * 71 + 13) % args.images) as u64;
        let query = corpus.query_from_image(source, 60, 5000 + q as u64);
        let t = Stopwatch::start();
        let (response, _stats) = coord.query(&query, args.k).unwrap_or_else(|e| {
            eprintln!("query {q} failed: {e}");
            std::process::exit(1);
        });
        let rpc_time = t.elapsed_seconds();
        let t = Stopwatch::start();
        let verified = client
            .verify_sharded(&query, args.k, &response, manifest)
            .expect("honest deployment must verify");
        let verify_time = t.elapsed_seconds();
        let hit = verified.topk.iter().any(|&(id, _)| id == source);
        println!(
            "  query {q}: source {source:>4} {} | rpc {:.0} ms | verify {:.0} ms | VO {} KiB",
            if hit { "FOUND" } else { "miss " },
            rpc_time * 1e3,
            verify_time * 1e3,
            response.vo.wire_size() / 1024,
        );
    }

    // One explicit heartbeat sweep: every shard must report a verified
    // health frame under its manifest-pinned root.
    let states = coord.heartbeat();
    println!(
        "heartbeat sweep: [{}]",
        states
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let stats = coord.stats();
    println!(
        "per-shard RPC round-trip latency (over {} queries):",
        args.queries
    );
    for shard in 0..shard_count {
        let ms = |q: f64| match stats.latency_quantile(shard, q) {
            Some(s) => format!("{:.1}", s * 1e3),
            None => "n/a".to_string(),
        };
        println!(
            "  shard {shard}: p50 {} ms | p95 {} ms | max {} ms",
            ms(0.5),
            ms(0.95),
            ms(1.0),
        );
    }
    let windowed = coord.fleet().windowed_latency();
    let wq = |p: f64| match windowed.quantile(p) {
        Some(us) => format!("{:.1}", us as f64 / 1e3),
        None => "n/a".to_string(),
    };
    println!(
        "windowed RPC latency: p50 {} ms | p90 {} ms | p99 {} ms | SLO burn rate {}",
        wq(0.5),
        wq(0.9),
        wq(0.99),
        match coord.fleet().slo().burn_rate() {
            Some(b) => format!("{b:.3}"),
            None => "n/a".to_string(),
        },
    );
    println!("fleet events: {}", coord.fleet().events().counts_json());
    println!("failovers: {}", stats.failovers);

    // Self-scrape smoke: when an obs endpoint is up, scrape ourselves and
    // every known shard endpoint the way an external monitor would, and
    // only claim success if the whole fleet answers healthy.
    if let Some(scrape) = &scrape {
        let all_healthy = states
            .iter()
            .all(|s| *s == imageproof_core::rpc::ShardHealthState::Healthy);
        obs_smoke(scrape.addr(), shard_obs, all_healthy);
    }
}

/// Scrapes the coordinator's `/healthz` and every shard's `/metrics` over
/// plain HTTP and prints `OBS SMOKE OK` (grep target for CI) only when the
/// whole fleet answers and reports healthy.
fn obs_smoke(coordinator: SocketAddr, shard_obs: &[SocketAddr], fleet_healthy: bool) {
    let fail = |what: &str, detail: &str| -> ! {
        eprintln!("OBS SMOKE FAILED: {what}: {detail}");
        std::process::exit(1);
    };
    let (status, body) = imageproof_obs::http_get(&coordinator.to_string(), "/healthz", 5.0)
        .unwrap_or_else(|e| fail("coordinator /healthz", &e.to_string()));
    if status != 200 {
        fail("coordinator /healthz", &format!("status {status}"));
    }
    if !body.contains("\"status\": \"healthy\"") {
        fail("coordinator /healthz", &format!("not healthy: {body}"));
    }
    if !fleet_healthy {
        fail("heartbeat sweep", "not every shard reported healthy");
    }
    for (shard, addr) in shard_obs.iter().enumerate() {
        let (status, metrics) = imageproof_obs::http_get(&addr.to_string(), "/metrics", 5.0)
            .unwrap_or_else(|e| fail(&format!("shard {shard} /metrics"), &e.to_string()));
        if status != 200 {
            fail(
                &format!("shard {shard} /metrics"),
                &format!("status {status}"),
            );
        }
        if !metrics.contains("imageproof_shard_queries_served_total") {
            fail(
                &format!("shard {shard} /metrics"),
                "missing imageproof_shard_queries_served_total",
            );
        }
    }
    println!("OBS SMOKE OK ({} shard scrape endpoints)", shard_obs.len());
}
