//! `imageproof-obstop` — a terminal fleet monitor for the shard
//! observability plane.
//!
//! Points at any mix of shard and coordinator scrape endpoints (the
//! addresses `imageproof-shardd` prints for `--obs-addr`, or the demo's
//! autobound ones), asks each for `/healthz` and `/metrics`, and renders
//! one table row per endpoint plus the coordinator's windowed latency
//! and fleet event counters when a coordinator is among them.
//!
//! ```sh
//! cargo run --release --bin imageproof-obstop -- \
//!     --scrape 127.0.0.1:9100,127.0.0.1:9101,127.0.0.1:9102
//! # refresh every 2 seconds until killed
//! cargo run --release --bin imageproof-obstop -- --scrape ... --watch 2
//! ```
//!
//! Everything here is read-only HTTP against the scrape plane: obstop
//! never joins the RPC fabric, so pointing it at a live fleet can slow
//! nothing down and prove nothing wrong — it only reads the sidecar.

use std::net::SocketAddr;

struct Args {
    scrape: Vec<SocketAddr>,
    watch_seconds: Option<f64>,
    timeout_seconds: f64,
}

fn parse_args() -> Args {
    let mut scrape = Vec::new();
    let mut watch_seconds = None;
    let mut timeout_seconds = 5.0;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--scrape" => {
                scrape = value(&mut i)
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--watch" => watch_seconds = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--timeout" => timeout_seconds = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    if scrape.is_empty() {
        usage();
    }
    Args {
        scrape,
        watch_seconds,
        timeout_seconds,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: imageproof-obstop --scrape addr,addr,... [--watch SECONDS] [--timeout SECONDS]\n\
         \n\
         scrapes /healthz and /metrics from each listed observability\n\
         endpoint (shard or coordinator) and renders a fleet health table;\n\
         --watch refreshes forever at the given interval"
    );
    std::process::exit(2);
}

// ---------------------------------------------------------------------------
// Tiny flat-JSON field extraction — the healthz bodies are flat,
// machine-written objects, so targeted key scans beat a JSON parser.

/// The raw text following `"key": ` up to the next `,`/`}`/`]`, with one
/// level of quotes stripped. `None` when the key is absent.
fn json_field(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": ");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    if let Some(inner) = rest.strip_prefix('"') {
        let end = inner.find('"')?;
        return Some(inner[..end].to_string());
    }
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    Some(rest[..end].trim().to_string())
}

/// The value of the sorted-label Prometheus sample
/// `name{labels} value`, scanned from text exposition lines.
fn prom_sample(metrics: &str, name_and_labels: &str) -> Option<String> {
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix(name_and_labels) {
            if let Some(v) = rest.strip_prefix(' ') {
                return Some(v.to_string());
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Rendering.

struct Row {
    endpoint: String,
    role: String,
    status: String,
    detail: String,
}

fn endpoint_row(addr: SocketAddr, timeout: f64) -> (Row, Option<String>) {
    let unreachable = |why: String| Row {
        endpoint: addr.to_string(),
        role: "?".to_string(),
        status: "unreachable".to_string(),
        detail: why,
    };
    let (status, body) = match imageproof_obs::http_get(&addr.to_string(), "/healthz", timeout) {
        Ok(r) => r,
        Err(e) => return (unreachable(e.to_string()), None),
    };
    if status != 200 {
        return (unreachable(format!("healthz status {status}")), None);
    }
    let role = json_field(&body, "role").unwrap_or_else(|| "?".to_string());
    let health = json_field(&body, "status").unwrap_or_else(|| "?".to_string());
    match role.as_str() {
        "shard" => {
            let f = |k: &str| json_field(&body, k).unwrap_or_else(|| "?".to_string());
            let row = Row {
                endpoint: addr.to_string(),
                role: format!("shard {}/{}", f("id"), f("shard_count")),
                status: health,
                detail: format!(
                    "served={} queue={} up={}s err={} root={}",
                    f("queries_served"),
                    f("queue_depth"),
                    f("uptime_seconds"),
                    f("last_error"),
                    &f("root")[..f("root").len().min(8)],
                ),
            };
            (row, None)
        }
        "coordinator" => {
            let shard_states: Vec<&str> = body.matches("\"state\": \"healthy\"").collect();
            let total = body.matches("\"shard\": ").count();
            let row = Row {
                endpoint: addr.to_string(),
                role: "coordinator".to_string(),
                status: health,
                detail: format!("{}/{} shards healthy", shard_states.len(), total),
            };
            // The coordinator's /metrics carries the fleet-level windowed
            // latency and event series worth a second panel.
            let metrics = imageproof_obs::http_get(&addr.to_string(), "/metrics", timeout)
                .ok()
                .filter(|(s, _)| *s == 200)
                .map(|(_, m)| m);
            (row, metrics)
        }
        other => {
            let row = Row {
                endpoint: addr.to_string(),
                role: other.to_string(),
                status: health,
                detail: String::new(),
            };
            (row, None)
        }
    }
}

fn render_once(args: &Args) {
    let mut rows = Vec::new();
    let mut coordinator_metrics = None;
    for &addr in &args.scrape {
        let (row, metrics) = endpoint_row(addr, args.timeout_seconds);
        if coordinator_metrics.is_none() {
            coordinator_metrics = metrics;
        }
        rows.push(row);
    }

    let w = |s: &str, n: usize| format!("{s:<n$}");
    println!(
        "{} {} {} DETAIL",
        w("ENDPOINT", 22),
        w("ROLE", 13),
        w("STATUS", 11)
    );
    for r in &rows {
        println!(
            "{} {} {} {}",
            w(&r.endpoint, 22),
            w(&r.role, 13),
            w(&r.status, 11),
            r.detail
        );
    }

    if let Some(metrics) = coordinator_metrics {
        println!("\nwindowed RPC latency (coordinator /metrics, micros):");
        let shard_count = rows
            .iter()
            .filter(|r| r.role.starts_with("shard"))
            .count()
            .max(1);
        for s in 0..shard_count.max(
            // The coordinator may watch shards obstop was not pointed at;
            // probe shard ids until a p50 sample stops appearing.
            (0..64)
                .take_while(|s| {
                    prom_sample(
                        &metrics,
                        &format!(
                            "imageproof_rpc_windowed_latency_micros{{quantile=\"p50\",shard=\"{s}\"}}"
                        ),
                    )
                    .is_some()
                })
                .count(),
        ) {
            let q = |qn: &str| {
                prom_sample(
                    &metrics,
                    &format!(
                        "imageproof_rpc_windowed_latency_micros{{quantile=\"{qn}\",shard=\"{s}\"}}"
                    ),
                )
                .unwrap_or_else(|| "n/a".to_string())
            };
            println!(
                "  shard {s}: p50 {} | p90 {} | p99 {}",
                q("p50"),
                q("p90"),
                q("p99")
            );
        }
        let burn = prom_sample(&metrics, "imageproof_slo_burn_rate_milli")
            .map(|m| format!("{} milli", m))
            .unwrap_or_else(|| "n/a (empty window)".to_string());
        println!("  SLO burn rate: {burn}");
        println!("fleet events:");
        for kind in imageproof_obs::EVENT_KINDS {
            let n = prom_sample(
                &metrics,
                &format!("imageproof_fleet_events_total{{kind=\"{}\"}}", kind.name()),
            )
            .unwrap_or_else(|| "0".to_string());
            println!("  {:<18} {n}", kind.name());
        }
    }
}

fn main() {
    let args = parse_args();
    match args.watch_seconds {
        None => render_once(&args),
        Some(interval) => loop {
            render_once(&args);
            println!();
            std::thread::sleep(std::time::Duration::from_millis(
                (interval.max(0.1) * 1000.0) as u64,
            ));
        },
    }
}
