//! Reusable parallel-vs-serial equivalence assertions.
//!
//! A VO is a cryptographic artifact: the client re-hashes its bytes against
//! the owner's signature, so the parallel execution layer must produce
//! *bit-identical* output to the serial reference for every thread count.
//! These helpers state that contract once; the `parallel_equivalence`
//! integration suite and proptests call them across schemes, corpora, and
//! thread counts.

use crate::core::{
    Concurrency, Owner, QueryResponse, Scheme, ServiceProvider, SpStats, SystemConfig,
};
use crate::crypto::wire::Encode;
use imageproof_akm::Codebook;
use imageproof_vision::Corpus;

/// Asserts the non-timing fields of two [`SpStats`] agree exactly.
///
/// Wall-clock fields (`bovw_seconds`, `inv_seconds`) legitimately differ
/// between runs; the counters and ratios are pure functions of the query
/// and must not.
pub fn assert_stats_equivalent(serial: &SpStats, parallel: &SpStats, context: &str) {
    assert_eq!(serial.popped, parallel.popped, "{context}: popped differs");
    assert_eq!(
        serial.total_postings, parallel.total_postings,
        "{context}: total_postings differs"
    );
    assert_eq!(
        serial.shared_ratio.to_bits(),
        parallel.shared_ratio.to_bits(),
        "{context}: shared_ratio differs"
    );
    assert_eq!(
        serial.hashes_computed, parallel.hashes_computed,
        "{context}: hashes_computed differs"
    );
    assert_eq!(
        serial.hashes_cached, parallel.hashes_cached,
        "{context}: hashes_cached differs"
    );
}

/// Asserts two responses are interchangeable: byte-identical wire-serialized
/// VOs and identical result rows (ids, scores, payloads).
pub fn assert_responses_equivalent(
    serial: &QueryResponse,
    parallel: &QueryResponse,
    context: &str,
) {
    assert_eq!(
        serial.vo.to_wire(),
        parallel.vo.to_wire(),
        "{context}: VO wire bytes differ"
    );
    assert_eq!(
        serial.results.len(),
        parallel.results.len(),
        "{context}: result count differs"
    );
    for (s, p) in serial.results.iter().zip(&parallel.results) {
        assert_eq!(s.id, p.id, "{context}: top-k image id differs");
        assert_eq!(
            s.score.to_bits(),
            p.score.to_bits(),
            "{context}: score differs for image {}",
            s.id
        );
        assert_eq!(
            s.data, p.data,
            "{context}: payload differs for image {}",
            s.id
        );
    }
}

/// Runs one query on the serial path and on the parallel path with
/// `threads` workers, asserting bit-identical VO bytes, top-k, and stats
/// counters. Returns the serial response for further checks.
pub fn assert_query_equivalent(
    sp: &ServiceProvider,
    features: &[Vec<f32>],
    k: usize,
    threads: usize,
) -> QueryResponse {
    let (serial, serial_stats) = sp.query(features, k);
    let (parallel, parallel_stats) = sp.query_with(features, k, Concurrency::new(threads));
    let context = format!("query threads={threads} scheme={:?}", sp.database().scheme);
    assert_responses_equivalent(&serial, &parallel, &context);
    assert_stats_equivalent(&serial_stats, &parallel_stats, &context);
    serial
}

/// Asserts `query_batch` over `threads` workers returns, in input order,
/// exactly what per-query serial calls return.
pub fn assert_batch_equivalent(
    sp: &ServiceProvider,
    queries: &[Vec<Vec<f32>>],
    k: usize,
    threads: usize,
) {
    let batch = sp.query_batch(queries, k, Concurrency::new(threads));
    assert_eq!(batch.len(), queries.len(), "batch length mismatch");
    for (i, ((response, stats), features)) in batch.iter().zip(queries).enumerate() {
        let (serial, serial_stats) = sp.query(features, k);
        let context = format!("batch[{i}] threads={threads}");
        assert_responses_equivalent(&serial, response, &context);
        assert_stats_equivalent(&serial_stats, stats, &context);
    }
}

/// Builds `scheme` serially and with `threads` workers from the same corpus
/// and codebook, asserting the two databases commit to identical roots,
/// signatures, list digests, and stored images. Returns both service
/// providers (serial first) so callers can continue with query checks.
pub fn assert_build_equivalent(
    owner: &Owner,
    corpus: &Corpus,
    codebook: &Codebook,
    scheme: Scheme,
    threads: usize,
) -> (ServiceProvider, ServiceProvider) {
    let (db_serial, pub_serial) =
        owner.build_system_with_codebook(corpus, codebook.clone(), scheme);
    let (db_parallel, pub_parallel) = owner.build_system_with_codebook_config(
        corpus,
        codebook.clone(),
        SystemConfig::new(scheme).with_threads(threads),
    );
    let context = format!("build threads={threads} scheme={scheme:?}");

    assert_eq!(
        db_serial.mrkd.combined_root_digest(),
        db_parallel.mrkd.combined_root_digest(),
        "{context}: combined root digest differs"
    );
    assert_eq!(
        pub_serial.root_signature, pub_parallel.root_signature,
        "{context}: root signature differs"
    );
    assert_eq!(
        pub_serial.public_key, pub_parallel.public_key,
        "{context}: public key differs"
    );
    assert_eq!(
        pub_serial.n_trees, pub_parallel.n_trees,
        "{context}: tree count differs"
    );
    assert_eq!(
        db_serial.inv.list_digests(),
        db_parallel.inv.list_digests(),
        "{context}: inverted-list digests differ"
    );
    assert_eq!(
        db_serial.images.len(),
        db_parallel.images.len(),
        "{context}: image count differs"
    );
    for (id, stored) in &db_serial.images {
        let other = &db_parallel.images[id];
        assert_eq!(
            stored.data, other.data,
            "{context}: image {id} payload differs"
        );
        assert_eq!(
            stored.signature, other.signature,
            "{context}: image {id} signature differs"
        );
    }
    assert_eq!(
        db_serial.encodings.len(),
        db_parallel.encodings.len(),
        "{context}: encoding count differs"
    );
    for ((id_s, bovw_s), (id_p, bovw_p)) in db_serial.encodings.iter().zip(&db_parallel.encodings) {
        assert_eq!(id_s, id_p, "{context}: encoding order differs");
        assert_eq!(
            bovw_s, bovw_p,
            "{context}: BoVW encoding differs for image {id_s}"
        );
    }
    (
        ServiceProvider::new(db_serial),
        ServiceProvider::new(db_parallel),
    )
}

/// Asserts the memoized hot path is invisible on the wire: every query run
/// against `sp` (memos intact) and against a clone whose build-time digest
/// caches were cleared must produce byte-identical VOs, results, and
/// counters — only the `hashes_computed`/`hashes_cached` split may move, and
/// it must move *conservatively* (the cleared copy never serves more cache
/// hits than the memoized one).
pub fn assert_memoization_invisible(
    sp: &ServiceProvider,
    queries: &[Vec<Vec<f32>>],
    k: usize,
    threads: usize,
) {
    let mut cleared_db = sp.database().clone();
    cleared_db.clear_hot_path_caches();
    let cleared = ServiceProvider::new(cleared_db);
    for (i, features) in queries.iter().enumerate() {
        let (memo_resp, memo_stats) = sp.query_with(features, k, Concurrency::new(threads));
        let (ref_resp, ref_stats) = cleared.query_with(features, k, Concurrency::new(threads));
        let context = format!(
            "memoization[{i}] threads={threads} scheme={:?}",
            sp.database().scheme
        );
        assert_responses_equivalent(&ref_resp, &memo_resp, &context);
        assert_eq!(
            ref_stats.popped, memo_stats.popped,
            "{context}: popped differs"
        );
        assert_eq!(
            ref_stats.total_postings, memo_stats.total_postings,
            "{context}: total_postings differs"
        );
        assert_eq!(
            ref_stats.shared_ratio.to_bits(),
            memo_stats.shared_ratio.to_bits(),
            "{context}: shared_ratio differs"
        );
        // Same digests flow into the VO either way, so the *totals* match;
        // clearing only moves digests from the cached to the computed bin.
        assert_eq!(
            ref_stats.hashes_computed + ref_stats.hashes_cached,
            memo_stats.hashes_computed + memo_stats.hashes_cached,
            "{context}: digest totals differ"
        );
        assert!(
            ref_stats.hashes_cached <= memo_stats.hashes_cached,
            "{context}: cleared caches served more hits than the memoized path"
        );
    }
}
