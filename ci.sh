#!/usr/bin/env sh
# Tier-1 gate plus the parallel-equivalence suite. Everything runs offline;
# fmt/clippy run only when the components are installed.
set -eu

echo "== build (release, warnings are errors) =="
RUSTFLAGS="-D warnings" cargo build --release

echo "== test (workspace) =="
cargo test -q

echo "== parallel equivalence at 2 worker threads =="
# Re-runs the parallel suites explicitly so a green gate always includes
# them, even if test filtering changes upstream.
cargo test -q --test parallel_equivalence
cargo test -q -p imageproof-core --test parallel_adversary
cargo test -q -p imageproof-parallel

echo "== sharded serving: shard-vs-monolith differential + adversary matrix =="
# Re-runs the sharded suites explicitly, mirroring the parallel gate above.
cargo test -q --test shard_equivalence
cargo test -q --test shard_adversary

echo "== socket RPC: loopback equivalence + fault injection =="
# Shards behind the length-prefixed RPC boundary: the coordinator must be
# bit-equal to in-process ShardedSp (all schemes x shard counts), and every
# injected transport fault must surface as a typed error or a verified
# failover. All servers bind port 0 (the OS picks a free loopback port and
# the bound addr is passed along), so the suites are parallel-safe and run
# offline.
cargo test -q --test rpc_equivalence
cargo test -q --test rpc_faults

echo "== observability: obs-on/off VO byte-equivalence =="
# The zero-perturbation gate: recording on vs off must serve byte-identical
# VOs and identical top-k for every scheme × thread count, monolith and
# sharded.
cargo test -q --test obs_equivalence
cargo test -q -p imageproof-obs

echo "== audit: self-tests (includes the Instant/SystemTime confinement rule) =="
cargo test -q -p imageproof-audit

echo "== audit: zero findings on the tree =="
# The auditor emits a JSON artifact (findings, per-rule counts, files
# scanned) and exits non-zero on any finding; the gate requires a clean
# tree. The per-rule summary below always prints the interprocedural
# rules explicitly — zeros included — so a pass that silently stopped
# firing is visible in the log.
cargo run -q --release -p imageproof-audit -- --json . > audit_findings.json || {
    echo "audit findings:" >&2
    python3 -c 'import json
for f in json.load(open("audit_findings.json"))["findings"]:
    print("  %s:%d %s %s" % (f["path"], f["line"], f["rule"], f["message"]))' >&2
    exit 1
}
python3 - <<'PYEOF'
import json

data = json.load(open("audit_findings.json"))
counts = data.get("counts", {})
print(f"  files scanned: {data['files_scanned']}")
for rule in ["panic", "alloc", "lockorder", "relaxed"]:
    print(f"  {rule}: {counts.get(rule, 0)} finding(s)")
for rule, n in sorted(counts.items()):
    if rule not in {"panic", "alloc", "lockorder", "relaxed"}:
        print(f"  {rule}: {n} finding(s)")
PYEOF

echo "== bench smoke: machine-readable query benchmarks =="
# Small sweep that exercises the timed build + query + verify loop for all
# four schemes and emits BENCH_queries.json (consumed by the README table).
cargo run -q --release -p imageproof-bench --bin figures -- --fig 15 --quick
test -s BENCH_queries.json

echo "== observability smoke: demo fleet + live scrape endpoints =="
# The demo autobinds a scrape endpoint per shard plus one for the
# coordinator, runs its queries, heartbeats the fleet, then scrapes itself
# the way an external monitor would (/healthz healthy, /metrics parseable
# with the per-shard serving counters). The binary prints OBS SMOKE OK
# only when the whole fleet answered healthy.
cargo run -q --release --bin imageproof-shardd -- demo --shards 2 \
    --images 60 --codebook 64 --queries 2 > obs_smoke.log 2>&1 || {
    cat obs_smoke.log >&2
    exit 1
}
grep -q "OBS SMOKE OK" obs_smoke.log || {
    echo "demo fleet never printed OBS SMOKE OK:" >&2
    cat obs_smoke.log >&2
    exit 1
}
grep "OBS SMOKE OK" obs_smoke.log
rm -f obs_smoke.log

echo "== bench smoke: shard-count sweep =="
# Sharded build + fan-out query + verify_sharded across shard counts for all
# four schemes; emits BENCH_shards.json.
cargo run -q --release -p imageproof-bench --bin figures -- --fig 16 --quick
test -s BENCH_shards.json

echo "== regression gate: BENCH_shards.json carries windowed SLO + event fields =="
# Every sockets-mode record must embed the coordinator's rolling-window
# latency summary (p50/p90/p99 in micros plus the SLO burn rate) and the
# per-kind fleet event counts — if they vanish, the fig16 scrape path has
# stopped exercising the observability plane.
python3 - <<'PYEOF'
import json, sys

data = json.load(open("BENCH_shards.json"))
SLO_KEYS = {"windowed_p50_us", "windowed_p90_us", "windowed_p99_us",
            "burn_rate", "breached_total", "observed_total"}
EVENT_KEYS = {"failover", "timeout", "slow_query", "hello_reverify",
              "health_transition", "wire_error"}
failed = False
for rec in data["results"]:
    cell = f"{rec['scheme']} S={rec['shards']}"
    rpc = rec.get("rpc", {})
    slo = rpc.get("slo")
    events = rpc.get("events")
    if not isinstance(slo, dict) or not SLO_KEYS <= set(slo):
        print(f"  {cell}: rpc.slo missing or incomplete: {slo}", file=sys.stderr)
        failed = True
        continue
    if not isinstance(events, dict) or not EVENT_KEYS <= set(events):
        print(f"  {cell}: rpc.events missing or incomplete: {events}", file=sys.stderr)
        failed = True
        continue
    if slo["observed_total"] < 1:
        print(f"  {cell}: SLO tracker observed nothing", file=sys.stderr)
        failed = True
        continue
    print(f"  {cell}: windowed p50/p90/p99 = {slo['windowed_p50_us']}/"
          f"{slo['windowed_p90_us']}/{slo['windowed_p99_us']} us, "
          f"observed {slo['observed_total']} [ok]")
if failed:
    sys.exit("fig16 records are missing windowed SLO or event-count fields")
PYEOF

echo "== regression gate: sharded VO size must stay near-flat in S =="
# Merge-trimmed sub-VOs + shared-section dedup keep the sharded proof from
# blowing up with the shard count: vo_bytes(S=4) / vo_bytes(S=1) must stay
# ≤ 1.3 for every scheme, or the trimming/dedup path has regressed.
python3 - <<'PYEOF'
import json, sys

data = json.load(open("BENCH_shards.json"))
by_scheme = {}
for rec in data["results"]:
    by_scheme.setdefault(rec["scheme"], {})[rec["shards"]] = rec["vo_bytes"]
failed = False
for scheme, sizes in sorted(by_scheme.items()):
    if 1 not in sizes or 4 not in sizes:
        print(f"  {scheme}: missing S=1 or S=4 record", file=sys.stderr)
        failed = True
        continue
    ratio = sizes[4] / sizes[1]
    status = "ok" if ratio <= 1.3 else "FAIL"
    print(f"  {scheme}: vo_bytes(S=4)/vo_bytes(S=1) = {ratio:.3f} [{status}]")
    if ratio > 1.3:
        failed = True
if failed:
    sys.exit("sharded VO size regression: ratio exceeds 1.3")
PYEOF

echo "== regression gate: blocked search must skip blocks and shrink the VO =="
# Block-max skip proofs replace per-posting disclosure of the tail with one
# fence digest, so per-scheme vo_bytes on the fig15 smoke must stay at or
# below the pre-block baseline (measured on the same quick fixture before
# blocking landed), and the sweep must actually record skipped blocks —
# otherwise the skip test has stopped firing and the optimisation is dead
# code.
python3 - <<'PYEOF'
import json, sys

# Pre-block vo_bytes on the fig15 --quick fixture (threads=1), rounded up —
# measured at the commit before blocked posting lists landed, with the same
# 3-query sweep.
BASELINE = {
    "Baseline": 12408448,
    "ImageProof": 921318,
    "Optimized (BoVW)": 834064,
    "Optimized (Both)": 833518,
}

data = json.load(open("BENCH_queries.json"))
failed = False
skipped_total = 0
for rec in data["results"]:
    if rec["threads"] != 1:
        continue
    scheme = rec["scheme"]
    skipped_total += rec.get("blocks_skipped", 0)
    ceiling = BASELINE.get(scheme)
    if ceiling is None:
        print(f"  {scheme}: no pre-block baseline recorded", file=sys.stderr)
        failed = True
        continue
    vo = rec["vo_bytes"]
    status = "ok" if vo <= ceiling else "FAIL"
    print(f"  {scheme}: vo_bytes = {vo} (pre-block baseline {ceiling}) [{status}]")
    if vo > ceiling:
        failed = True
if skipped_total == 0:
    print("  blocks_skipped = 0 across every scheme: skip test never fired", file=sys.stderr)
    failed = True
else:
    print(f"  blocks_skipped (threads=1, all schemes) = {skipped_total} [ok]")
if failed:
    sys.exit("blocked-search regression: VO grew past the pre-block baseline or no blocks were skipped")
PYEOF

if cargo fmt --version >/dev/null 2>&1; then
    echo "== fmt =="
    cargo fmt --check
else
    echo "== fmt: rustfmt not installed, skipping =="
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "== clippy =="
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== clippy: not installed, skipping =="
fi

echo "CI OK"
