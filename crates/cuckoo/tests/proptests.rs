//! Property-based tests for cuckoo-filter invariants the protocol relies
//! on.

use imageproof_cuckoo::{max_count, CuckooFilter};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No false negatives: every inserted item is always found.
    #[test]
    fn no_false_negatives(items in proptest::collection::hash_set(any::<u64>(), 0..300)) {
        let mut f = CuckooFilter::with_capacity(items.len().max(1) * 2);
        for &i in &items {
            f.insert(i).expect("capacity is double the item count");
        }
        for &i in &items {
            prop_assert!(f.contains(i));
        }
    }

    /// Deleting what was inserted restores emptiness and digests match the
    /// canonical serialization round trip throughout.
    #[test]
    fn delete_inverts_insert(items in proptest::collection::hash_set(any::<u64>(), 1..150)) {
        let mut f = CuckooFilter::with_capacity(items.len() * 2);
        let empty_digest = f.digest();
        for &i in &items {
            f.insert(i).expect("sized");
        }
        let full = CuckooFilter::from_bytes(&f.to_bytes()).expect("canonical");
        prop_assert_eq!(&full, &f);
        for &i in &items {
            prop_assert!(f.delete(i), "delete of inserted item succeeds");
        }
        prop_assert!(f.is_empty());
        prop_assert_eq!(f.digest(), empty_digest);
    }

    /// γ from MaxCount upper-bounds the true max frequency of any item
    /// across arbitrary filter sets (Lemma 1).
    #[test]
    fn gamma_upper_bounds_frequency(
        assignments in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(0usize..12, 1..6)), 0..80)
    ) {
        let mut filters: Vec<CuckooFilter> =
            (0..12).map(|_| CuckooFilter::with_buckets(128)).collect();
        let mut true_freq: std::collections::HashMap<u64, u32> = Default::default();
        for (item, filter_ids) in assignments {
            let distinct: HashSet<usize> = filter_ids.into_iter().collect();
            for fid in distinct {
                if filters[fid].insert(item).is_ok() {
                    *true_freq.entry(item).or_insert(0) += 1;
                }
            }
        }
        let refs: Vec<&CuckooFilter> = filters.iter().collect();
        let gamma = max_count(&refs);
        let true_max = true_freq.values().copied().max().unwrap_or(0);
        prop_assert!(gamma >= true_max, "gamma {} < max {}", gamma, true_max);
    }

    /// Serialization is canonical: decode(encode(f)) == f byte-for-byte.
    #[test]
    fn serialization_is_canonical(items in proptest::collection::vec(any::<u64>(), 0..200)) {
        let mut f = CuckooFilter::with_capacity(400);
        for i in items {
            let _ = f.insert(i);
        }
        let bytes = f.to_bytes();
        let g = CuckooFilter::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(g.to_bytes(), bytes);
    }
}
