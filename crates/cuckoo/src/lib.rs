//! # imageproof-cuckoo
//!
//! Cuckoo filters (Fan et al., CoNEXT '14; paper §II-B, Fig. 2) plus the
//! `MaxCount` algorithm (paper Alg. 2).
//!
//! A cuckoo filter is a compact approximate-membership structure: each item
//! is reduced to an 8-bit fingerprint stored in one of two alternate buckets
//! (4 slots per bucket, the paper's parameters). ImageProof attaches one
//! filter to every Merkle inverted list to let the SP — and, during
//! verification, the client — prove that an image does *not* appear in a
//! posting list, which tightens the similarity upper bounds of Eqs. 11–12.
//!
//! Two properties drive the design here:
//!
//! * **Common geometry.** `MaxCount`'s soundness (Lemma 1) needs an item to
//!   hash to the *same* two bucket indices in every filter, so all filters
//!   of one index share a bucket count; [`max_count`] enforces this.
//! * **Canonical bytes.** The filter travels inside the VO and its digest is
//!   committed in the inverted-list digest (Def. 5), so [`CuckooFilter::to_bytes`]
//!   is a canonical serialization and [`CuckooFilter::digest`] hashes it.

use imageproof_crypto::sha3::Sha3_256;
use imageproof_crypto::Digest;
use std::sync::OnceLock;

/// Slots per bucket (paper/Fig. 2: four).
pub const SLOTS_PER_BUCKET: usize = 4;
/// Fingerprint width in bits (paper §VII-A: eight).
pub const FINGERPRINT_BITS: usize = 8;
/// Maximum displacement chain length before an insert is declared failed.
const MAX_KICKS: usize = 500;
/// Target load factor when sizing from a capacity.
const TARGET_LOAD: f64 = 0.95;

/// Per-fingerprint offset hashes, shared by all filters: `offset_table()[fp]`
/// is a full-width hash of the fingerprint byte; the partial-key index is
/// `i2 = i1 ^ (offset & mask)`.
fn offset_table() -> &'static [u64; 256] {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        for (fp, slot) in t.iter_mut().enumerate() {
            *slot = splitmix64(0xCF00 | fp as u64);
        }
        t
    })
}

/// A statistically strong 64-bit mixer (SplitMix64 finalizer). Filter
/// placement needs *uniformity*, not cryptographic strength — integrity
/// comes from the SHA3 digest over the filter's canonical bytes (Def. 5) —
/// so a fast mixer keeps lookups and deletions off every hot path's
/// critical hash budget.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fingerprint of an item: a nonzero byte (zero marks an empty slot).
#[inline]
pub fn fingerprint_of(item: u64) -> u8 {
    ((splitmix64(item) as u8) % 255) + 1
}

/// The primary bucket index of an item for a filter with `n_buckets`
/// (a power of two).
#[inline]
pub fn primary_bucket(item: u64, n_buckets: usize) -> usize {
    ((splitmix64(item) >> 32) as usize) & (n_buckets - 1)
}

/// The alternate bucket for a fingerprint currently at `bucket`.
// audit:allow(panic) fp as usize is below 256, the fixed offset table's length
pub fn alternate_bucket(bucket: usize, fp: u8, n_buckets: usize) -> usize {
    bucket ^ ((offset_table()[fp as usize] as usize) & (n_buckets - 1))
}

/// Power-of-two bucket count able to hold `capacity` items at the standard
/// ~95% cuckoo load factor.
pub fn buckets_for_capacity(capacity: usize) -> usize {
    let needed = ((capacity.max(1) as f64) / (SLOTS_PER_BUCKET as f64 * TARGET_LOAD)).ceil();
    (needed as usize).next_power_of_two()
}

/// Error returned when the displacement chain cannot find space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterFull;

impl std::fmt::Display for FilterFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cuckoo filter is full (displacement chain exhausted)")
    }
}

impl std::error::Error for FilterFull {}

/// A cuckoo filter with 8-bit fingerprints and 4-slot buckets.
///
/// Equality compares the semantic contents (buckets and count), not the
/// internal kick-chain state, so a filter equals its serialization round
/// trip.
#[derive(Clone, Debug)]
pub struct CuckooFilter {
    buckets: Vec<[u8; SLOTS_PER_BUCKET]>,
    len: usize,
    /// Deterministic eviction-choice state (layout-only; reproducible
    /// builds beat randomized kick order here).
    kick_state: u64,
}

impl PartialEq for CuckooFilter {
    fn eq(&self, other: &Self) -> bool {
        self.buckets == other.buckets && self.len == other.len
    }
}

impl Eq for CuckooFilter {}

impl CuckooFilter {
    /// Creates a filter with an explicit power-of-two bucket count.
    ///
    /// # Panics
    /// Panics if `n_buckets` is zero or not a power of two (the partial-key
    /// XOR trick requires it).
    pub fn with_buckets(n_buckets: usize) -> Self {
        assert!(
            n_buckets > 0 && n_buckets.is_power_of_two(),
            "bucket count must be a nonzero power of two"
        );
        CuckooFilter {
            buckets: vec![[0u8; SLOTS_PER_BUCKET]; n_buckets],
            len: 0,
            kick_state: 0x9e3779b97f4a7c15,
        }
    }

    /// Creates a filter able to hold `capacity` items at a healthy load
    /// factor.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_buckets(buckets_for_capacity(capacity))
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of stored fingerprints.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read-only view of one bucket's slots (used by `MaxCount`).
    // audit:allow(panic) callers iterate 0..n_buckets of this very filter (MaxCount asserts common geometry)
    pub fn bucket(&self, index: usize) -> &[u8; SLOTS_PER_BUCKET] {
        &self.buckets[index]
    }

    /// Inserts an item; duplicates are stored again (multiset semantics,
    /// matching the reference filter).
    pub fn insert(&mut self, item: u64) -> Result<(), FilterFull> {
        let fp = fingerprint_of(item);
        let i1 = primary_bucket(item, self.n_buckets());
        let i2 = alternate_bucket(i1, fp, self.n_buckets());
        if self.try_place(i1, fp) || self.try_place(i2, fp) {
            self.len += 1;
            return Ok(());
        }
        // Displace: walk a kick chain starting from a pseudo-random choice of
        // the two buckets.
        let mut bucket = if self.next_kick_bit() { i1 } else { i2 };
        let mut fp = fp;
        for _ in 0..MAX_KICKS {
            let slot = (self.next_kick() as usize) % SLOTS_PER_BUCKET;
            std::mem::swap(&mut fp, &mut self.buckets[bucket][slot]);
            bucket = alternate_bucket(bucket, fp, self.n_buckets());
            if self.try_place(bucket, fp) {
                self.len += 1;
                return Ok(());
            }
        }
        // Undo is impossible mid-chain; the reference filter also leaves the
        // displaced chain in place and reports failure. Callers size filters
        // from capacity, so this is exceptional.
        Err(FilterFull)
    }

    fn try_place(&mut self, bucket: usize, fp: u8) -> bool {
        for slot in self.buckets[bucket].iter_mut() {
            if *slot == 0 {
                *slot = fp;
                return true;
            }
        }
        false
    }

    fn next_kick(&mut self) -> u64 {
        // xorshift64*: deterministic, cheap, layout-quality randomness.
        let mut x = self.kick_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.kick_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn next_kick_bit(&mut self) -> bool {
        self.next_kick() & 1 == 1
    }

    /// Approximate membership: false means *definitely absent*; true means
    /// present with probability `1 - FPR`.
    pub fn contains(&self, item: u64) -> bool {
        let fp = fingerprint_of(item);
        let i1 = primary_bucket(item, self.n_buckets());
        let i2 = alternate_bucket(i1, fp, self.n_buckets());
        self.buckets[i1].contains(&fp) || self.buckets[i2].contains(&fp)
    }

    /// Deletes one copy of an item's fingerprint; returns whether a copy was
    /// found. Only call for items known to be present (standard cuckoo-filter
    /// contract), which ImageProof guarantees: the client deletes exactly the
    /// image ids of verified popped postings (Alg. 3 `UpdateBounds`).
    // audit:allow(panic) i1/i2 are masked to the power-of-two bucket count, so both indices are in bounds
    pub fn delete(&mut self, item: u64) -> bool {
        let fp = fingerprint_of(item);
        let i1 = primary_bucket(item, self.n_buckets());
        let i2 = alternate_bucket(i1, fp, self.n_buckets());
        for bucket in [i1, i2] {
            for slot in self.buckets[bucket].iter_mut() {
                if *slot == fp {
                    *slot = 0;
                    self.len -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Canonical serialization: `u64` little-endian bucket count followed by
    /// the bucket slots in order.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.buckets.len() * SLOTS_PER_BUCKET);
        out.extend_from_slice(&(self.buckets.len() as u64).to_le_bytes());
        for bucket in &self.buckets {
            out.extend_from_slice(bucket);
        }
        out
    }

    /// Parses a canonical serialization; `None` on malformed input (wrong
    /// length or non-power-of-two bucket count).
    // audit:allow(panic) both slice bounds follow the explicit `bytes.len() < 8` rejection above them
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let n_buckets: usize = u64::from_le_bytes(bytes[..8].try_into().ok()?)
            .try_into()
            .ok()?;
        if n_buckets == 0 || !n_buckets.is_power_of_two() {
            return None;
        }
        // Checked arithmetic: a hostile header can claim 2^62 buckets, which
        // would wrap the expected length to 8 and reach with_capacity.
        let expected = n_buckets
            .checked_mul(SLOTS_PER_BUCKET)
            .and_then(|b| b.checked_add(8))?;
        if bytes.len() != expected {
            return None;
        }
        let mut buckets = Vec::with_capacity(n_buckets);
        let mut len = 0;
        for chunk in bytes[8..].chunks_exact(SLOTS_PER_BUCKET) {
            let bucket: [u8; SLOTS_PER_BUCKET] = chunk.try_into().ok()?;
            len += bucket.iter().filter(|&&s| s != 0).count();
            buckets.push(bucket);
        }
        Some(CuckooFilter {
            buckets,
            len,
            kick_state: 0x9e3779b97f4a7c15,
        })
    }

    /// `h(Θ)`: the SHA3-256 digest of the canonical serialization, as
    /// committed by the inverted-list digest (Def. 5).
    ///
    /// Streams the canonical bytes (bucket-count prefix, then bucket slots
    /// in order — exactly [`CuckooFilter::to_bytes`]) straight into the
    /// sponge, so no intermediate serialization buffer is allocated.
    pub fn digest(&self) -> Digest {
        let mut h = Sha3_256::new();
        h.update(&(self.buckets.len() as u64).to_le_bytes());
        for bucket in &self.buckets {
            h.update(bucket);
        }
        Digest(h.finalize())
    }
}

/// `MaxCount` (paper Alg. 2): an upper bound `γ` on the frequency of the most
/// frequent item across a set of filters with common geometry.
///
/// For every bucket position, counts the most frequent fingerprint among the
/// slots at that position across *all* filters, and returns twice the
/// maximum (each item has two alternate buckets).
///
/// # Panics
/// Panics when filters disagree on bucket count — that would break Lemma 1.
// audit:allow(panic) fingerprint bytes index the fixed [u32; 256] table; bucket ids run 0..n_buckets after the geometry assert
pub fn max_count(filters: &[&CuckooFilter]) -> u32 {
    let Some(first) = filters.first() else {
        return 0;
    };
    let n_buckets = first.n_buckets();
    assert!(
        filters.iter().all(|f| f.n_buckets() == n_buckets),
        "MaxCount requires a common bucket count (Lemma 1)"
    );

    let mut max_fp = 0u32;
    let mut counts = [0u32; 256];
    let mut touched: Vec<u8> = Vec::with_capacity(filters.len() * SLOTS_PER_BUCKET);
    for i in 0..n_buckets {
        for f in filters {
            for &slot in f.bucket(i) {
                if slot != 0 {
                    counts[slot as usize] += 1;
                    if counts[slot as usize] > max_fp {
                        max_fp = counts[slot as usize];
                    }
                    touched.push(slot);
                }
            }
        }
        for &t in &touched {
            counts[t as usize] = 0;
        }
        touched.clear();
    }
    2 * max_fp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_items_are_found() {
        let mut f = CuckooFilter::with_capacity(1000);
        for i in 0..1000u64 {
            f.insert(i).expect("capacity sized for 1000");
        }
        for i in 0..1000u64 {
            assert!(f.contains(i), "no false negatives: {i}");
        }
        assert_eq!(f.len(), 1000);
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = CuckooFilter::with_capacity(2000);
        for i in 0..2000u64 {
            f.insert(i).expect("sized");
        }
        let fp = (10_000..60_000u64).filter(|&i| f.contains(i)).count();
        let rate = fp as f64 / 50_000.0;
        // 8-bit fingerprints, 4-slot buckets → FPR ≈ 2·4/256 ≈ 3%.
        assert!(rate < 0.06, "false positive rate too high: {rate}");
    }

    #[test]
    fn delete_removes_exactly_one_copy() {
        let mut f = CuckooFilter::with_capacity(100);
        f.insert(7).expect("room");
        f.insert(7).expect("room");
        assert!(f.delete(7));
        assert!(f.contains(7), "second copy remains");
        assert!(f.delete(7));
        assert!(!f.contains(7), "both copies gone");
        assert!(!f.delete(7), "nothing left to delete");
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn deleting_absent_item_with_shared_fingerprint_is_safe() {
        // Deleting an item that was never inserted can remove a colliding
        // fingerprint — the documented cuckoo-filter contract. We only check
        // the operation never panics and never underflows.
        let mut f = CuckooFilter::with_capacity(10);
        f.insert(1).expect("room");
        let _ = f.delete(99);
        assert!(f.len() <= 1);
    }

    #[test]
    fn serialization_round_trips() {
        let mut f = CuckooFilter::with_capacity(500);
        for i in 0..400u64 {
            f.insert(i * 3).expect("sized");
        }
        let bytes = f.to_bytes();
        let g = CuckooFilter::from_bytes(&bytes).expect("canonical");
        assert_eq!(f, g);
        assert_eq!(f.digest(), g.digest());
    }

    #[test]
    fn from_bytes_rejects_malformed_input() {
        assert!(CuckooFilter::from_bytes(&[]).is_none());
        assert!(CuckooFilter::from_bytes(&[1, 2, 3]).is_none());
        // Bucket count 3 is not a power of two.
        let mut bad = 3u64.to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 12]);
        assert!(CuckooFilter::from_bytes(&bad).is_none());
        // Truncated body.
        let mut short = 4u64.to_le_bytes().to_vec();
        short.extend_from_slice(&[0u8; 8]);
        assert!(CuckooFilter::from_bytes(&short).is_none());
    }

    #[test]
    fn from_bytes_rejects_overflowing_bucket_count() {
        // n_buckets = 2^62: `n_buckets * SLOTS_PER_BUCKET` wraps to zero on
        // 64-bit targets, so an unchecked length test would accept the
        // 8-byte header and try to allocate 2^62 buckets.
        let huge = [0, 0, 0, 0, 0, 0, 0, 0x40];
        assert!(CuckooFilter::from_bytes(&huge).is_none());
        // u64::MAX bucket count must not wrap the usize conversion either.
        assert!(CuckooFilter::from_bytes(&u64::MAX.to_le_bytes()).is_none());
    }

    #[test]
    fn streaming_digest_matches_digest_of_canonical_bytes() {
        // The streamed digest must hash exactly the `to_bytes` stream —
        // clients recompute `h(Θ)` from the serialized filter.
        for n in [0u64, 1, 7, 120, 400] {
            let mut f = CuckooFilter::with_capacity(500);
            for i in 0..n {
                f.insert(i * 11 + 5).expect("sized");
            }
            assert_eq!(f.digest(), Digest::of(&f.to_bytes()), "{n} items");
        }
    }

    #[test]
    fn digest_changes_when_contents_change() {
        let mut a = CuckooFilter::with_capacity(100);
        let mut b = CuckooFilter::with_capacity(100);
        a.insert(1).expect("room");
        b.insert(2).expect("room");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn alternate_bucket_is_an_involution() {
        for item in 0..200u64 {
            let fp = fingerprint_of(item);
            let i1 = primary_bucket(item, 64);
            let i2 = alternate_bucket(i1, fp, 64);
            assert_eq!(alternate_bucket(i2, fp, 64), i1);
        }
    }

    #[test]
    fn fingerprints_are_never_zero() {
        for item in 0..10_000u64 {
            assert_ne!(fingerprint_of(item), 0);
        }
    }

    #[test]
    fn max_count_bounds_true_max_frequency() {
        // Build 20 filters of common geometry; item frequencies vary.
        let mut filters: Vec<CuckooFilter> =
            (0..20).map(|_| CuckooFilter::with_buckets(64)).collect();
        let mut true_freq = std::collections::HashMap::new();
        for item in 0..100u64 {
            let occurrences = (item % 7) as usize;
            for f in filters.iter_mut().take(occurrences) {
                f.insert(item).expect("room");
                *true_freq.entry(item).or_insert(0u32) += 1;
            }
        }
        let refs: Vec<&CuckooFilter> = filters.iter().collect();
        let gamma = max_count(&refs);
        let true_max = true_freq.values().copied().max().unwrap_or(0);
        assert!(gamma >= true_max, "gamma {gamma} < true max {true_max}");
    }

    #[test]
    fn max_count_of_empty_set_is_zero() {
        assert_eq!(max_count(&[]), 0);
        let f = CuckooFilter::with_buckets(8);
        assert_eq!(max_count(&[&f]), 0);
    }

    #[test]
    #[should_panic(expected = "common bucket count")]
    fn max_count_rejects_mismatched_geometry() {
        let a = CuckooFilter::with_buckets(8);
        let b = CuckooFilter::with_buckets(16);
        let _ = max_count(&[&a, &b]);
    }

    #[test]
    fn high_load_insertion_succeeds_via_kicking() {
        // 95% load on a small filter exercises the displacement chain.
        let mut f = CuckooFilter::with_buckets(32);
        let capacity = (32 * SLOTS_PER_BUCKET) as u64 * 95 / 100;
        let mut inserted = 0;
        for i in 0..capacity {
            if f.insert(i).is_ok() {
                inserted += 1;
            }
        }
        assert!(
            inserted as f64 >= capacity as f64 * 0.95,
            "too many failures: {inserted}/{capacity}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_bucket_count_rejected() {
        let _ = CuckooFilter::with_buckets(6);
    }
}
