//! CI entry point: `imageproof-audit [--json] [workspace-root]`.
//!
//! Default output is one machine-readable `file:line rule message` per
//! finding on stdout, exit 1 on any finding (2 on I/O failure), so `ci.sh`
//! can gate on it directly. With `--json`, stdout is instead a single JSON
//! object (`findings`, `files_scanned`, per-rule `counts`) suitable as a
//! CI artifact; the exit code is unchanged.

use imageproof_audit::rules::Finding;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root = ".".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            root = arg;
        }
    }
    let root = PathBuf::from(root);
    match imageproof_audit::run_audit(&root) {
        Ok(findings) => {
            let scanned = imageproof_audit::count_files(&root).unwrap_or(0);
            if json {
                println!("{}", render_json(&findings, scanned));
            } else {
                for f in &findings {
                    println!("{}:{} {} {}", f.path, f.line, f.rule, f.message);
                }
            }
            if findings.is_empty() {
                eprintln!("audit: clean ({scanned} files scanned)");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "audit: {} finding(s) in {scanned} scanned files",
                    findings.len()
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("audit: cannot scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Hand-rolled JSON (the audit crate is dependency-free by design).
fn render_json(findings: &[Finding], scanned: usize) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
            json_str(&f.path),
            f.line,
            json_str(f.rule),
            json_str(&f.message)
        ));
    }
    out.push_str(&format!("],\"files_scanned\":{scanned},\"counts\":{{"));
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{n}", json_str(rule)));
    }
    out.push_str("}}");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
