//! CI entry point: `imageproof-audit [workspace-root]`.
//!
//! Prints one machine-readable `file:line rule message` per finding on
//! stdout and exits 1 on any finding (2 on I/O failure), so `ci.sh` can
//! gate on it directly.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let root = PathBuf::from(root);
    match imageproof_audit::run_audit(&root) {
        Ok(findings) => {
            for f in &findings {
                println!("{}:{} {} {}", f.path, f.line, f.rule, f.message);
            }
            let scanned = imageproof_audit::count_files(&root).unwrap_or(0);
            if findings.is_empty() {
                eprintln!("audit: clean ({scanned} files scanned)");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "audit: {} finding(s) in {scanned} scanned files",
                    findings.len()
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("audit: cannot scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
