//! A hand-rolled token-level Rust scanner.
//!
//! The rules in [`crate::rules`] match on *code*, never on comments or
//! string literals, so the scanner produces a "scrubbed" copy of each
//! source file in which every comment, string, char literal, and raw
//! string is blanked with spaces. Blanking (rather than deleting)
//! preserves byte offsets and line numbers, so findings point at the
//! original source. Comment text is retained separately to parse
//! `// audit:allow(<rule>) <reason>` escape hatches.

/// One `audit:allow` annotation extracted from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment starts on. The annotation suppresses
    /// findings on this line and the next (so it can sit on its own line
    /// above the code it excuses, or trail the code itself).
    pub line: usize,
    /// Rule names inside the parentheses, comma-separated.
    pub rules: Vec<String>,
    /// Whether any justification text follows the closing parenthesis.
    pub has_reason: bool,
}

/// A source file after comment/string scrubbing.
pub struct Scrubbed {
    /// Same length as the input; comments and literals blanked with
    /// spaces (newlines preserved).
    pub text: String,
    /// Every `audit:allow` annotation found in a comment.
    pub allows: Vec<Allow>,
    /// Byte offsets at which each line starts (index 0 = line 1).
    line_starts: Vec<usize>,
}

impl Scrubbed {
    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i, // insertion point; offset belongs to line `i`
        }
    }

    /// The scrubbed text of the line containing `offset` (no newline).
    pub fn line_text(&self, offset: usize) -> &str {
        let line = self.line_of(offset);
        let start = self.line_starts.get(line - 1).copied().unwrap_or(0);
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(self.text.len());
        self.text.get(start..end).unwrap_or("")
    }
}

pub(crate) fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Parses `audit:allow(rule_a, rule_b) reason` out of one comment's text.
/// The annotation must start the comment body, so prose that merely
/// *mentions* the syntax (like this crate's own docs) is not an annotation.
fn parse_allow(comment: &str, line: usize, allows: &mut Vec<Allow>) {
    let body = comment.trim_start_matches(['/', '!', '*']).trim_start();
    let Some(after) = body.strip_prefix("audit:allow(") else {
        return;
    };
    let Some(close) = after.find(')') else {
        // An unterminated annotation still counts (and will be reported
        // as malformed by the allow rule, since it names no rules).
        allows.push(Allow {
            line,
            rules: Vec::new(),
            has_reason: false,
        });
        return;
    };
    let rules: Vec<String> = after[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let reason = after[close + 1..].trim();
    allows.push(Allow {
        line,
        rules,
        // Punctuation-only "reasons" (`---`, `..`) don't justify anything.
        has_reason: reason.chars().any(|c| c.is_ascii_alphanumeric()),
    });
}

/// Blanks comments, strings, chars, and raw strings; collects
/// `audit:allow` annotations.
pub fn scrub(src: &str) -> Scrubbed {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut line_starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |off: usize| match line_starts.binary_search(&off) {
        Ok(i) => i + 1,
        Err(i) => i,
    };

    let mut allows = Vec::new();
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for slot in out.iter_mut().take(to).skip(from) {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };

    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = bytes[i..]
                    .iter()
                    .position(|&b| b == b'\n')
                    .map(|p| i + p)
                    .unwrap_or(bytes.len());
                if let Ok(text) = std::str::from_utf8(&bytes[i..end]) {
                    parse_allow(text, line_of(i), &mut allows);
                }
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                if let Ok(text) = std::str::from_utf8(&bytes[start..j]) {
                    parse_allow(text, line_of(start), &mut allows);
                }
                blank(&mut out, start, j);
                i = j;
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let (hash_from, hashes) = raw_string_hashes(bytes, i);
                // Find the closing quote followed by the same number of #s.
                let open_quote = hash_from + hashes;
                let mut j = open_quote + 1;
                while j < bytes.len() {
                    if bytes[j] == b'"'
                        && bytes[j + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&b| b == b'#')
                            .count()
                            == hashes
                    {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'"' => {
                let mut j = i + 1;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'\'' => {
                // Disambiguate char literal vs lifetime: a lifetime is `'`
                // followed by an identifier NOT terminated by another `'`.
                if bytes.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal; skip the escaped byte so that
                    // `'\''` and `'\\'` terminate at the right quote.
                    let mut j = i + 3;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    blank(&mut out, i, (j + 1).min(bytes.len()));
                    i = (j + 1).min(bytes.len());
                } else if bytes.get(i + 1).is_some_and(|&b| is_ident(b))
                    && bytes.get(i + 2) != Some(&b'\'')
                {
                    // Lifetime like `'a` — leave as code.
                    i += 2;
                    while i < bytes.len() && is_ident(bytes[i]) {
                        i += 1;
                    }
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    // Plain char literal like 'x'.
                    blank(&mut out, i, i + 3);
                    i += 3;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    Scrubbed {
        text: String::from_utf8_lossy(&out).into_owned(),
        allows,
        line_starts,
    }
}

/// True when position `i` starts a raw (possibly byte) string: `r"`,
/// `r#"`, `br"`, `br#"` — and is not merely an identifier containing `r`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && is_ident(bytes[i - 1]) {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) != Some(&b'r') {
            // A plain byte string b"…" is handled by the `"` arm.
            return false;
        }
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Returns (offset of the first `#` or the quote, number of `#`s).
fn raw_string_hashes(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    j += 1; // the `r`
    let from = j;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (from, hashes)
}

/// Byte ranges of `#[cfg(test)]`-gated items (attribute through matching
/// closing brace), found by brace matching on scrubbed text.
pub fn test_regions(scrubbed: &str) -> Vec<(usize, usize)> {
    let bytes = scrubbed.as_bytes();
    let mut regions = Vec::new();
    let needle = b"#[cfg(test)]";
    let mut i = 0usize;
    while let Some(pos) = find_from(bytes, needle, i) {
        let mut j = pos + needle.len();
        // Scan to the item's opening brace (or a terminating semicolon for
        // brace-less items like `#[cfg(test)] use …;`).
        while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
            j += 1;
        }
        let end = if j < bytes.len() && bytes[j] == b'{' {
            matching_brace(bytes, j).unwrap_or(bytes.len())
        } else {
            (j + 1).min(bytes.len())
        };
        regions.push((pos, end));
        i = end.max(pos + 1);
    }
    regions
}

pub(crate) fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| from + p)
}

/// Offset one past the `}` matching the `{` at `open`.
pub(crate) fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// A trait impl block found in scrubbed text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplBlock {
    /// Byte range of the whole `impl … { … }` item.
    pub start: usize,
    pub end: usize,
    /// The base name of the implementing type (`Foo` in
    /// `impl<'a> Trait for Foo<'a>`).
    pub type_name: String,
}

/// An `impl`, trait-`impl`, or `trait` declaration block, with both sides
/// of the item resolved — the general form [`crate::model`] builds the
/// item/call model from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemBlock {
    /// Byte range of the whole item.
    pub start: usize,
    pub end: usize,
    /// The implementing type's base name (`Foo` in `impl Trait for Foo`,
    /// `impl Foo`, …); for a `trait Foo { … }` declaration, the trait's own
    /// name (its items are addressed as `Foo::item`).
    pub type_name: String,
    /// `Some(Trait)` for `impl Trait for Type` and for `trait Trait { … }`
    /// declarations; `None` for inherent impls.
    pub trait_name: Option<String>,
}

/// Finds every `impl [<…>] TRAIT for TYPE { … }` block for `trait_name`.
pub fn impl_blocks(scrubbed: &str, trait_name: &str) -> Vec<ImplBlock> {
    all_item_blocks(scrubbed)
        .into_iter()
        .filter(|b| b.trait_name.as_deref() == Some(trait_name) && b.type_name != trait_name)
        .map(|b| ImplBlock {
            start: b.start,
            end: b.end,
            type_name: b.type_name,
        })
        .collect()
}

/// Finds every `impl` block (inherent or trait) and every `trait`
/// declaration in scrubbed text.
pub fn all_item_blocks(scrubbed: &str) -> Vec<ItemBlock> {
    let bytes = scrubbed.as_bytes();
    let mut blocks = Vec::new();

    let mut i = 0usize;
    while let Some(pos) = find_word(bytes, b"impl", i) {
        i = pos + 4;
        let mut j = skip_ws(bytes, i);
        // Optional generic parameters on the impl.
        if bytes.get(j) == Some(&b'<') {
            j = skip_angles(bytes, j);
        }
        j = skip_ws(bytes, j);
        // First path: the trait (when `for` follows) or the inherent type.
        let (first, after_first) = read_path_base(bytes, j);
        if first.is_empty() {
            continue;
        }
        let mut j = skip_ws(bytes, after_first);
        if bytes.get(j) == Some(&b'<') {
            j = skip_angles(bytes, j);
            j = skip_ws(bytes, j);
        }
        let (kw, after_kw) = read_word(bytes, j);
        let (type_name, trait_name, after) = if kw == "for" {
            let k = skip_ws(bytes, after_kw);
            let (ty, after_ty) = read_path_base(bytes, k);
            if ty.is_empty() {
                continue;
            }
            (ty, Some(first), after_ty)
        } else {
            (first, None, after_first)
        };
        // The item body: first `{` after the type (where-clauses carry no
        // braces of their own).
        let Some(open) = bytes[after..]
            .iter()
            .position(|&b| b == b'{')
            .map(|p| after + p)
        else {
            continue;
        };
        let end = matching_brace(bytes, open).unwrap_or(bytes.len());
        blocks.push(ItemBlock {
            start: pos,
            end,
            type_name,
            trait_name,
        });
        i = end;
    }

    let mut i = 0usize;
    while let Some(pos) = find_word(bytes, b"trait", i) {
        i = pos + 5;
        let j = skip_ws(bytes, i);
        let (name, after) = read_word(bytes, j);
        if name.is_empty() {
            continue;
        }
        // Supertrait bounds and generics carry no braces, so the first `{`
        // opens the trait body.
        let Some(open) = bytes[after..]
            .iter()
            .position(|&b| b == b'{' || b == b';')
            .map(|p| after + p)
        else {
            continue;
        };
        if bytes[open] == b';' {
            continue; // trait alias / marker declaration without a body
        }
        let end = matching_brace(bytes, open).unwrap_or(bytes.len());
        blocks.push(ItemBlock {
            start: pos,
            end,
            type_name: name.clone(),
            trait_name: Some(name),
        });
        i = end;
    }

    blocks.sort_by_key(|b| b.start);
    blocks
}

/// Next occurrence of `word` at an identifier boundary, at or after `from`.
pub fn find_word(bytes: &[u8], word: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while let Some(pos) = find_from(bytes, word, i) {
        let before_ok = pos == 0 || !is_ident(bytes[pos - 1]);
        let after_ok = pos + word.len() >= bytes.len() || !is_ident(bytes[pos + word.len()]);
        if before_ok && after_ok {
            return Some(pos);
        }
        i = pos + 1;
    }
    None
}

pub(crate) fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Skips a balanced `<…>` group starting at `i` (which must be `<`);
/// tolerates `->` inside by not counting a `>` preceded by `-`.
pub(crate) fn skip_angles(bytes: &[u8], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {}
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Reads one identifier; returns it and the offset past it.
pub(crate) fn read_word(bytes: &[u8], i: usize) -> (String, usize) {
    let mut j = i;
    while j < bytes.len() && is_ident(bytes[j]) {
        j += 1;
    }
    (
        String::from_utf8_lossy(bytes.get(i..j).unwrap_or(b"")).into_owned(),
        j,
    )
}

/// Reads a (possibly `::`-qualified, possibly `&`-prefixed) path and
/// returns its final segment's base identifier plus the offset past the
/// whole path (excluding generic arguments).
pub(crate) fn read_path_base(bytes: &[u8], i: usize) -> (String, usize) {
    let mut j = skip_ws(bytes, i);
    while j < bytes.len() && (bytes[j] == b'&' || bytes[j] == b'\'') {
        if bytes[j] == b'\'' {
            j += 1;
            while j < bytes.len() && is_ident(bytes[j]) {
                j += 1;
            }
        } else {
            j += 1;
        }
        j = skip_ws(bytes, j);
    }
    let (mut seg, mut end) = read_word(bytes, j);
    loop {
        let k = skip_ws(bytes, end);
        if bytes.get(k) == Some(&b':') && bytes.get(k + 1) == Some(&b':') {
            let (next, next_end) = read_word(bytes, skip_ws(bytes, k + 2));
            if next.is_empty() {
                break;
            }
            seg = next;
            end = next_end;
        } else {
            break;
        }
    }
    (seg, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"unwrap()\"; // .unwrap() here\nlet y = 1;";
        let s = scrub(src);
        assert!(!s.text.contains("unwrap"));
        assert!(s.text.contains("let y = 1;"));
        assert_eq!(s.text.len(), src.len());
    }

    #[test]
    fn block_comments_nest() {
        let src = "a /* outer /* inner */ still comment */ b";
        let s = scrub(src);
        assert!(!s.text.contains("comment"));
        assert!(s.text.starts_with('a'));
        assert!(s.text.ends_with('b'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = r####"let p = r#"HashMap "quoted" inside"#; let q = 2;"####;
        let s = scrub(src);
        assert!(!s.text.contains("HashMap"));
        assert!(s.text.contains("let q = 2;"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) -> char { '{' }";
        let s = scrub(src);
        assert!(s.text.contains("&'a str"));
        assert!(!s.text.contains("'{'"));
        // The blanked brace must not confuse brace matching.
        assert_eq!(s.text.matches('{').count(), 1);
    }

    #[test]
    fn allow_annotations_are_parsed() {
        let src = "x(); // audit:allow(determinism) stats only, never hashed\ny();";
        let s = scrub(src);
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].line, 1);
        assert_eq!(s.allows[0].rules, vec!["determinism".to_string()]);
        assert!(s.allows[0].has_reason);
    }

    #[test]
    fn allow_without_reason_is_flagged_as_reasonless() {
        let src = "// audit:allow(panic)\nfoo();";
        let s = scrub(src);
        assert_eq!(s.allows.len(), 1);
        assert!(!s.allows[0].has_reason);
    }

    #[test]
    fn prose_mentioning_the_allow_syntax_is_not_an_annotation() {
        let src = "//! Escape with `// audit:allow(<rule>) <reason>` comments.\nfn f() {}";
        let s = scrub(src);
        assert!(s.allows.is_empty());
    }

    #[test]
    fn cfg_test_regions_are_found() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() { x.unwrap(); }\n}\nfn c() {}";
        let s = scrub(src);
        let regions = test_regions(&s.text);
        assert_eq!(regions.len(), 1);
        let (start, end) = regions[0];
        assert!(s.text[start..end].contains("unwrap"));
        assert!(!s.text[..start].contains("unwrap"));
        assert!(s.text[end..].contains("fn c"));
    }

    #[test]
    fn impl_blocks_are_located_with_type_names() {
        let src = "impl Encode for Foo { fn encode(&self) {} }\n\
                   impl<'a> Decode for Bar<'a> { fn decode() {} }\n\
                   impl Display for Baz { }";
        let blocks = impl_blocks(&scrub(src).text, "Encode");
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].type_name, "Foo");
        let blocks = impl_blocks(&scrub(src).text, "Decode");
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].type_name, "Bar");
    }

    #[test]
    fn line_numbers_are_one_based() {
        let s = scrub("a\nb\nc");
        assert_eq!(s.line_of(0), 1);
        assert_eq!(s.line_of(2), 2);
        assert_eq!(s.line_of(4), 3);
    }
}
