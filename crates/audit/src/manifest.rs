//! Rule `deps`: dependency hygiene for every workspace `Cargo.toml`.
//!
//! A line-oriented TOML subset parser — enough to read dependency section
//! headers and the crate name on each entry line. The allowed set is the
//! offline crates baked into the build environment; anything else would
//! fail to resolve in CI anyway, so the rule turns a confusing resolver
//! error into a one-line finding.

use crate::rules::Finding;

/// External crates the workspace may depend on.
const ALLOWED: &[&str] = &[
    "rand",
    "proptest",
    "criterion",
    "crossbeam",
    "parking_lot",
    "bytes",
    "serde",
    "serde_derive",
];

fn allowed(name: &str) -> bool {
    // Workspace-internal crates are always fine.
    ALLOWED.contains(&name) || name.starts_with("imageproof")
}

/// Section headers whose entries are dependency declarations:
/// `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]`, `[target.….dependencies]`, ….
fn is_dep_section(section: &str) -> bool {
    matches!(
        section.rsplit('.').next().unwrap_or(section),
        "dependencies" | "dev-dependencies" | "build-dependencies"
    )
}

/// `[patch.*]` and `[replace]` tables also name external crates — a patch
/// pulling in a crate outside the offline set breaks the build the same
/// way a dependency does.
fn is_patch_section(section: &str) -> bool {
    section == "replace" || section == "patch" || section.starts_with("patch.")
}

/// For `[dependencies.NAME]`- and `[patch.src.NAME]`-style headers, the
/// declared crate name. In `[patch.SOURCE]` the trailing segment is the
/// patched *source* (e.g. `crates-io`), not a crate — only a three-part
/// `patch` header names one.
fn dep_of_section_header(section: &str) -> Option<&str> {
    let (parent, name) = section.rsplit_once('.')?;
    (is_dep_section(parent) || parent.starts_with("patch.")).then_some(name)
}

/// Scans one manifest; returns a `deps` finding per disallowed crate.
pub fn analyze_manifest(path: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    let flag = |name: &str, line: usize, out: &mut Vec<Finding>| {
        if !name.is_empty() && !allowed(name) {
            out.push(Finding {
                path: path.to_string(),
                line,
                rule: "deps",
                message: format!("dependency '{name}' is outside the allowed crate set"),
            });
        }
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(section) = line.strip_prefix('[') {
            let section = section.trim_start_matches('[').trim_end_matches(']').trim();
            if let Some(name) = dep_of_section_header(section) {
                // Expanded form: the header names the crate; body lines
                // are its attributes (version, path, …), not crates.
                flag(name, idx + 1, &mut out);
                in_dep_section = false;
            } else {
                in_dep_section = is_dep_section(section) || is_patch_section(section);
            }
            continue;
        }
        if in_dep_section {
            // `:` covers `[replace]`'s `"crate:version" = …` keys.
            let name = line
                .split(['=', '.', ' ', '\t', ':'])
                .next()
                .unwrap_or("")
                .trim_matches('"');
            flag(name, idx + 1, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_rule_flags_a_disallowed_crate() {
        let toml = "[package]\nname = \"x\"\n\n[dependencies]\nlibc = \"0.2\"\n";
        let f = analyze_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "deps");
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("libc"));
    }

    #[test]
    fn deps_rule_flags_expanded_section_headers() {
        let toml = "[dependencies.syn]\nversion = \"2\"\n";
        let f = analyze_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("syn"));
    }

    #[test]
    fn deps_rule_passes_the_allowed_set_and_workspace_crates() {
        let toml = "[package]\nname = \"imageproof-core\"\n\n\
                    [dependencies]\n\
                    imageproof-crypto = { path = \"../crypto\" }\n\
                    rand.workspace = true\n\
                    serde = { version = \"1\", features = [\"derive\"] } # ok\n\n\
                    [dev-dependencies]\n\
                    proptest = \"1\"\n\n\
                    [workspace.dependencies]\n\
                    criterion = \"0.5\"\n\
                    crossbeam = \"0.8\"\n\
                    parking_lot = \"0.12\"\n";
        let f = analyze_manifest("Cargo.toml", toml);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn deps_rule_scans_build_dependencies() {
        let toml = "[package]\nname = \"x\"\n\n[build-dependencies]\ncc = \"1.0\"\n";
        let f = analyze_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("cc"));
    }

    #[test]
    fn deps_rule_scans_vendored_stub_dev_dependencies() {
        // Vendored stubs are still workspace manifests: a stub quietly
        // growing a dev-dependency outside the offline set must flag.
        let toml = "[package]\nname = \"proptest\"\n\n[dev-dependencies]\nquickcheck = \"1\"\n";
        let f = analyze_manifest("vendor/proptest/Cargo.toml", toml);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("quickcheck"));
    }

    #[test]
    fn deps_rule_scans_target_specific_tables() {
        let toml = "[target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n\n\
                    [target.'cfg(windows)'.dependencies.winapi]\nversion = \"0.3\"\n";
        let f = analyze_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("libc"));
        assert!(f[1].message.contains("winapi"));
    }

    #[test]
    fn deps_rule_scans_patch_and_replace_tables() {
        let toml = "[patch.crates-io]\n\
                    serde = { path = \"vendor/serde\" }\n\
                    libc = { path = \"vendor/libc\" }\n\n\
                    [patch.crates-io.getrandom]\npath = \"vendor/getrandom\"\n\n\
                    [replace]\n\"memoffset:0.6.4\" = { path = \"vendor/memoffset\" }\n";
        let f = analyze_manifest("Cargo.toml", toml);
        let names: Vec<&str> = f.iter().map(|x| x.message.as_str()).collect();
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(names[0].contains("libc"), "{names:?}");
        assert!(names[1].contains("getrandom"), "{names:?}");
        assert!(names[2].contains("memoffset"), "{names:?}");
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let toml = "[package]\nname = \"x\"\nlibc = \"not a dep, just a weird key\"\n\
                    [[bin]]\nname = \"tool\"\n[features]\nextra = []\n";
        let f = analyze_manifest("Cargo.toml", toml);
        assert!(f.is_empty(), "{f:?}");
    }
}
