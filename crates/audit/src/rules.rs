//! The audit rule families.
//!
//! Every rule works on [`crate::lexer::scrub`]bed text, so comments and
//! string literals never produce findings. Rules are deliberately
//! syntactic — the goal is not a type checker but a cheap, zero-dependency
//! gate that makes the paper's total-verifier assumption machine-checked:
//! the client must be able to consume arbitrary attacker-controlled bytes
//! without panicking, and everything feeding a digest must be
//! bit-deterministic across threads and runs.

use crate::lexer::{self, Scrubbed};
use crate::model::Model;

/// Rule names a `// audit:allow(<rule>) <reason>` annotation may name.
pub const SUPPRESSIBLE: &[&str] = &[
    "panic",
    "determinism",
    "wire",
    "deps",
    "unsafe",
    "alloc",
    "lockorder",
    "relaxed",
];

/// One audit finding, printed as `path:line rule message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

/// One workspace source file. `path` is workspace-relative with `/`
/// separators, so rules can match on it portably.
pub struct SourceFile {
    pub path: String,
    pub text: String,
}

/// Path prefixes exempt from the determinism rule: measurement harnesses
/// and demo binaries that never feed a digest.
const DETERMINISM_SKIP: &[&str] = &["crates/bench/", "src/bin/", "examples/"];

/// The only places allowed to name `Instant`/`SystemTime` in non-test
/// code: the observability crate (whose `Stopwatch` is the workspace's
/// single clock) and vendored third-party sources. Everything else —
/// bench harnesses and demo binaries included — must route timing through
/// `imageproof_obs`, so the zero-perturbation guarantee has one audit
/// surface.
const TIME_ALLOW_PREFIXES: &[&str] = &["crates/obs/", "vendor/"];

/// The one file allowed to reduce floats: its summation order is fixed and
/// shared verbatim by owner, SP, and client.
const FLOAT_KERNEL: &str = "crates/akm/src/kernel.rs";

/// Files allowed to contain `unsafe` (currently none).
const UNSAFE_ALLOW: &[&str] = &[];

/// Keywords that may directly precede `[` without it being an index
/// expression (`&mut [u8]`, `return [a, b]`, …).
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "dyn", "impl", "return", "else", "in", "match", "if", "as", "move", "ref", "const",
    "break", "static", "where",
];

/// Runs every source-level rule over the workspace — the per-file lexical
/// rules plus the three interprocedural passes over the item/call model —
/// and applies `audit:allow` suppression with stale-annotation detection.
pub fn analyze_sources(files: &[SourceFile]) -> Vec<Finding> {
    let scrubbed: Vec<Scrubbed> = files.iter().map(|f| lexer::scrub(&f.text)).collect();
    let model = Model::build(files, &scrubbed);
    let mut findings = Vec::new();
    for (f, s) in files.iter().zip(&scrubbed) {
        check_allows(f, s, &mut findings);
        check_unsafe(f, s, &mut findings);
        if !is_test_path(&f.path) {
            check_determinism(f, s, &mut findings);
            check_wire_lines(f, s, &mut findings);
        }
    }
    check_wire_pairing(files, &scrubbed, &mut findings);
    crate::reach::check(files, &scrubbed, &model, &mut findings);
    crate::dataflow::check(files, &scrubbed, &model, &mut findings);
    crate::concurrency::check(files, &scrubbed, &model, &mut findings);
    findings.sort();
    findings.dedup();
    apply_allows(files, &scrubbed, &model, findings)
}

/// Integration-test and bench files are test code in their entirety (they
/// carry no `#[cfg(test)]` attribute).
pub fn is_test_path(path: &str) -> bool {
    path.split('/').any(|c| c == "tests" || c == "benches")
}

fn in_any(regions: &[(usize, usize)], pos: usize) -> bool {
    regions.iter().any(|&(a, b)| pos >= a && pos < b)
}

/// Rule `determinism`: no wall-clock types anywhere outside `crates/obs`,
/// and no HashMap/HashSet or float reductions in files that mention
/// `Digest` or `Encode` in code.
fn check_determinism(f: &SourceFile, s: &Scrubbed, out: &mut Vec<Finding>) {
    let bytes = s.text.as_bytes();
    let tests = lexer::test_regions(&s.text);

    // The time half is workspace-wide (no digest trigger, no bench/demo
    // skip): `Instant`/`SystemTime` are legal only inside the obs crate,
    // so every timing source funnels through one auditable clock.
    if !TIME_ALLOW_PREFIXES.iter().any(|p| f.path.starts_with(p)) {
        for word in ["Instant", "SystemTime"] {
            let mut i = 0;
            while let Some(pos) = lexer::find_word(bytes, word.as_bytes(), i) {
                i = pos + 1;
                if in_any(&tests, pos) {
                    continue;
                }
                out.push(Finding {
                    path: f.path.clone(),
                    line: s.line_of(pos),
                    rule: "determinism",
                    message: format!(
                        "{word} outside crates/obs; route timing through imageproof_obs (Stopwatch or spans)"
                    ),
                });
            }
        }
    }

    if DETERMINISM_SKIP.iter().any(|p| f.path.starts_with(p)) {
        return;
    }
    let triggered = lexer::find_word(bytes, b"Digest", 0).is_some()
        || lexer::find_word(bytes, b"Encode", 0).is_some();
    if !triggered {
        return;
    }

    for word in ["HashMap", "HashSet"] {
        let mut i = 0;
        while let Some(pos) = lexer::find_word(bytes, word.as_bytes(), i) {
            i = pos + 1;
            if in_any(&tests, pos) {
                continue;
            }
            out.push(Finding {
                path: f.path.clone(),
                line: s.line_of(pos),
                rule: "determinism",
                message: format!(
                    "{word} iteration order is nondeterministic near digest/wire code; use a BTree collection"
                ),
            });
        }
    }
    if f.path != FLOAT_KERNEL {
        for pat in [".sum::<f32>()", ".sum::<f64>()"] {
            let mut i = 0;
            while let Some(pos) = lexer::find_from(bytes, pat.as_bytes(), i) {
                i = pos + 1;
                if in_any(&tests, pos) {
                    continue;
                }
                out.push(Finding {
                    path: f.path.clone(),
                    line: s.line_of(pos),
                    rule: "determinism",
                    message:
                        "float reduction order affects digests; only akm::kernel may reduce floats"
                            .to_string(),
                });
            }
        }
        let mut i = 0;
        while let Some(pos) = lexer::find_from(bytes, b".fold(", i) {
            i = pos + 1;
            if in_any(&tests, pos) {
                continue;
            }
            let mut k = pos + ".fold(".len();
            while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                k += 1;
            }
            let start = k;
            while k < bytes.len()
                && (bytes[k].is_ascii_alphanumeric() || bytes[k] == b'.' || bytes[k] == b'_')
            {
                k += 1;
            }
            let seed = &s.text[start..k];
            let float_seed = seed.ends_with("f32")
                || seed.ends_with("f64")
                || (seed.contains('.') && seed.chars().next().is_some_and(|c| c.is_ascii_digit()));
            if float_seed {
                out.push(Finding {
                    path: f.path.clone(),
                    line: s.line_of(pos),
                    rule: "determinism",
                    message: "float fold order affects digests; only akm::kernel may reduce floats"
                        .to_string(),
                });
            }
        }
    }
}

/// Rule `wire` (per-file half): inside `impl Encode` blocks, a
/// `.len() as <int>` cast is a usize smuggled onto the wire unless it goes
/// through the bounded `seq_len`/`varint` writers.
fn check_wire_lines(f: &SourceFile, s: &Scrubbed, out: &mut Vec<Finding>) {
    let bytes = s.text.as_bytes();
    let tests = lexer::test_regions(&s.text);
    for b in lexer::impl_blocks(&s.text, "Encode") {
        let mut i = b.start;
        while let Some(pos) = lexer::find_from(bytes, b".len() as ", i) {
            if pos >= b.end {
                break;
            }
            i = pos + 1;
            if in_any(&tests, pos) {
                continue;
            }
            let line = s.line_text(pos);
            if line.contains("seq_len(") || line.contains("varint(") {
                continue;
            }
            out.push(Finding {
                path: f.path.clone(),
                line: s.line_of(pos),
                rule: "wire",
                message: "usize length cast encoded to the wire; use Writer::seq_len or varint"
                    .to_string(),
            });
        }
    }
}

/// Rule `wire` (cross-file half): every non-test `impl Encode for T` needs
/// a matching `impl Decode for T` and a test that roundtrips `T` through
/// `from_wire`.
fn check_wire_pairing(files: &[SourceFile], scrubbed: &[Scrubbed], out: &mut Vec<Finding>) {
    struct Site {
        path: String,
        line: usize,
        type_name: String,
    }
    let mut encode_sites: Vec<Site> = Vec::new();
    let mut decode_names: Vec<String> = Vec::new();
    let mut test_corpus: Vec<&str> = Vec::new();

    for (f, s) in files.iter().zip(scrubbed) {
        if is_test_path(&f.path) {
            test_corpus.push(&s.text);
            continue;
        }
        let tests = lexer::test_regions(&s.text);
        for &(a, b) in &tests {
            if let Some(region) = s.text.get(a..b) {
                test_corpus.push(region);
            }
        }
        for blk in lexer::impl_blocks(&s.text, "Encode") {
            if in_any(&tests, blk.start) {
                continue;
            }
            encode_sites.push(Site {
                path: f.path.clone(),
                line: s.line_of(blk.start),
                type_name: blk.type_name,
            });
        }
        for blk in lexer::impl_blocks(&s.text, "Decode") {
            if !in_any(&tests, blk.start) {
                decode_names.push(blk.type_name);
            }
        }
    }

    for site in encode_sites {
        if !decode_names.contains(&site.type_name) {
            out.push(Finding {
                path: site.path.clone(),
                line: site.line,
                rule: "wire",
                message: format!(
                    "impl Encode for {} has no matching impl Decode",
                    site.type_name
                ),
            });
        }
        let covered = test_corpus.iter().any(|t| {
            let tb = t.as_bytes();
            lexer::find_word(tb, site.type_name.as_bytes(), 0).is_some()
                && lexer::find_from(tb, b"from_wire", 0).is_some()
        });
        if !covered {
            out.push(Finding {
                path: site.path,
                line: site.line,
                rule: "wire",
                message: format!(
                    "no roundtrip test references {} together with from_wire",
                    site.type_name
                ),
            });
        }
    }
}

/// Rule `unsafe`: no `unsafe` anywhere outside the (empty) allowlist —
/// test code included.
fn check_unsafe(f: &SourceFile, s: &Scrubbed, out: &mut Vec<Finding>) {
    if UNSAFE_ALLOW.contains(&f.path.as_str()) {
        return;
    }
    let bytes = s.text.as_bytes();
    let mut i = 0;
    while let Some(pos) = lexer::find_word(bytes, b"unsafe", i) {
        i = pos + 1;
        out.push(Finding {
            path: f.path.clone(),
            line: s.line_of(pos),
            rule: "unsafe",
            message: "unsafe is not allowed in this workspace".to_string(),
        });
    }
}

/// Rule `allow`: every `audit:allow` must name known rules and carry a
/// justification.
fn check_allows(f: &SourceFile, s: &Scrubbed, out: &mut Vec<Finding>) {
    for a in &s.allows {
        if a.rules.is_empty() {
            out.push(Finding {
                path: f.path.clone(),
                line: a.line,
                rule: "allow",
                message: "malformed audit:allow annotation names no rules".to_string(),
            });
        }
        for r in &a.rules {
            if !SUPPRESSIBLE.contains(&r.as_str()) {
                out.push(Finding {
                    path: f.path.clone(),
                    line: a.line,
                    rule: "allow",
                    message: format!("unknown rule '{r}' in audit:allow"),
                });
            }
        }
        if !a.has_reason {
            out.push(Finding {
                path: f.path.clone(),
                line: a.line,
                rule: "allow",
                message: "audit:allow without a justification".to_string(),
            });
        }
    }
}

/// Drops findings excused by an `audit:allow`, then reports any allow
/// that excused nothing (allow-rot). Findings about the annotations
/// themselves are never suppressed.
///
/// An allow's scope is its own line plus the next — unless a function
/// signature sits on one of those lines, in which case the scope widens to
/// the whole function body (a *fn-level allow*, for code like fixed-size
/// crypto kernels whose every line indexes arrays).
fn apply_allows(
    files: &[SourceFile],
    scrubbed: &[Scrubbed],
    model: &Model,
    mut findings: Vec<Finding>,
) -> Vec<Finding> {
    struct Scope {
        path: String,
        lines: (usize, usize), // inclusive
        rules: Vec<String>,
        well_formed: bool,
        used: bool,
    }
    let mut scopes: Vec<Scope> = Vec::new();
    for (fidx, (f, s)) in files.iter().zip(scrubbed).enumerate() {
        for a in &s.allows {
            let mut lines = (a.line, a.line + 1);
            for d in &model.fns {
                if d.file != fidx || (d.line != a.line && d.line != a.line + 1) {
                    continue;
                }
                if let Some((_, bend)) = d.body {
                    lines.1 = lines.1.max(s.line_of(bend.saturating_sub(1)));
                }
            }
            let well_formed = !a.rules.is_empty()
                && a.has_reason
                && a.rules.iter().all(|r| SUPPRESSIBLE.contains(&r.as_str()));
            scopes.push(Scope {
                path: f.path.clone(),
                lines,
                rules: a.rules.clone(),
                well_formed,
                used: false,
            });
        }
    }

    findings.retain(|fi| {
        if fi.rule == "allow" {
            return true;
        }
        for sc in scopes.iter_mut() {
            if sc.path == fi.path
                && sc.lines.0 <= fi.line
                && fi.line <= sc.lines.1
                && sc.rules.iter().any(|r| r == fi.rule)
            {
                sc.used = true;
                return false;
            }
        }
        true
    });

    for sc in &scopes {
        if sc.well_formed && !sc.used {
            findings.push(Finding {
                path: sc.path.clone(),
                line: sc.lines.0,
                rule: "allow",
                message: format!(
                    "audit:allow({}) suppresses no findings; remove the stale annotation",
                    sc.rules.join(", ")
                ),
            });
        }
    }
    findings.sort();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(path: &str, text: &str) -> Vec<Finding> {
        analyze_sources(&[SourceFile {
            path: path.to_string(),
            text: text.to_string(),
        }])
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // --- rule `panic`: known-bad fixtures must be flagged ---

    #[test]
    fn panic_rule_flags_unwrap_in_client_verify_methods() {
        let f = one(
            "crates/core/src/client.rs",
            "impl Client { fn verify(&self, x: Option<u32>) -> u32 { x.unwrap() } }",
        );
        assert!(rules_of(&f).contains(&"panic"), "{f:?}");
        assert!(
            f.iter().any(|x| x.message.contains("Client::verify")),
            "{f:?}"
        );
    }

    #[test]
    fn panic_rule_flags_expect_macros_and_indexing_in_reader_methods() {
        let src = "impl Reader {\n\
                   fn f(&self, v: Vec<u8>) -> u8 {\n\
                   let a = v.first().expect(\"boom\");\n\
                   if v.is_empty() { unreachable!() }\n\
                   v[0]\n\
                   }\n\
                   }";
        let f = one("crates/crypto/src/wire.rs", src);
        let lines: Vec<usize> = f
            .iter()
            .filter(|x| x.rule == "panic")
            .map(|x| x.line)
            .collect();
        assert_eq!(lines, vec![3, 4, 5], "{f:?}");
    }

    #[test]
    fn panic_rule_covers_decode_impls_in_any_file() {
        let src = "impl Decode for Foo { fn from_wire(d: &[u8]) -> u8 { d[0] } }";
        let f = one("crates/cuckoo/src/lib.rs", src);
        assert!(rules_of(&f).contains(&"panic"), "{f:?}");
    }

    #[test]
    fn panic_rule_walks_the_call_graph_to_helpers() {
        // The interprocedural core: the panic site is one call away from
        // the Decode entry point, in a fn no hand-maintained list names.
        let src = "impl Decode for Foo { fn from_wire(d: &[u8]) -> u8 { helper(d) } }\n\
                   fn helper(d: &[u8]) -> u8 { d[0] }";
        let f = one("crates/invindex/src/newmod.rs", src);
        assert!(
            f.iter()
                .any(|x| x.rule == "panic" && x.line == 2 && x.message.contains("Foo::from_wire")),
            "{f:?}"
        );
    }

    #[test]
    fn panic_rule_flags_nonconstant_division_in_reach() {
        let src = "impl Client { fn verify_avg(&self, sum: u64, n: u64) -> u64 { sum / n } }";
        let f = one("crates/core/src/client.rs", src);
        assert!(
            f.iter()
                .any(|x| x.rule == "panic" && x.message.contains("division")),
            "{f:?}"
        );
    }

    // --- rule `panic`: known-good fixtures must pass ---

    #[test]
    fn panic_rule_passes_checked_code_and_test_modules() {
        let src = "impl Reader {\n\
                   fn f<'a>(&self, buf: &mut [u8], v: &'a [u8]) -> Option<u8> {\n\
                   let x: [u8; 2] = [1, 2];\n\
                   let _ = (buf, x);\n\
                   v.get(0).copied()\n\
                   }\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests { fn t(v: Vec<u8>) -> u8 { v[0] } }";
        let f = one("crates/crypto/src/wire.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panic_rule_ignores_unreachable_helpers() {
        // Owner-side code no Decode/verify/Reader entry point reaches.
        let f = one(
            "crates/mrkd/src/build.rs",
            "fn build_index(v: Vec<u8>) -> u8 { v[0] }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    // --- rule `determinism` ---

    #[test]
    fn determinism_rule_flags_hashmap_near_digest_code() {
        let src = "use std::collections::HashMap;\n\
                   fn d(h: &HashMap<u32, u32>) -> Digest { Digest::zero() }";
        let f = one("crates/core/src/owner.rs", src);
        assert!(rules_of(&f).contains(&"determinism"), "{f:?}");
    }

    #[test]
    fn determinism_rule_flags_wall_clock_and_float_reductions() {
        let src = "fn d(v: &[f32]) -> Digest {\n\
                   let t = std::time::Instant::now();\n\
                   let s = v.iter().sum::<f32>();\n\
                   let p = v.iter().fold(0.0f32, |a, b| a + b);\n\
                   Digest::of(s + p)\n\
                   }";
        let f = one("crates/akm/src/lib.rs", src);
        let det: Vec<usize> = f
            .iter()
            .filter(|x| x.rule == "determinism")
            .map(|x| x.line)
            .collect();
        assert_eq!(det, vec![2, 3, 4], "{f:?}");
    }

    #[test]
    fn determinism_rule_passes_btree_code_and_the_float_kernel() {
        let good = "use std::collections::BTreeMap;\n\
                    fn d(h: &BTreeMap<u32, u32>) -> Digest { Digest::zero() }";
        assert!(one("crates/core/src/owner.rs", good).is_empty());
        let kernel = "fn dot(v: &[f32]) -> f32 { let d: Digest; v.iter().sum::<f32>() }";
        assert!(one("crates/akm/src/kernel.rs", kernel).is_empty());
    }

    #[test]
    fn determinism_rule_skips_untriggered_and_bench_files() {
        // No Digest/Encode trigger: the collection half stays quiet.
        let src = "use std::collections::HashMap;\nfn f(h: HashMap<u32, u32>) {}";
        assert!(one("crates/mrkd/src/stats.rs", src).is_empty());
        let bench = "fn b() -> Digest { let h: HashMap<u32, u32>; Digest::zero() }";
        assert!(one("crates/bench/src/lib.rs", bench).is_empty());
    }

    #[test]
    fn time_rule_fires_everywhere_outside_obs() {
        // Self-test fixture for the time half: a raw Instant must be
        // flagged even in files the collection half skips (bench
        // harnesses, demo binaries, untriggered library code).
        let src = "fn f() { let t = std::time::Instant::now(); }";
        for path in [
            "crates/bench/src/measure.rs",
            "src/bin/imageproof-demo.rs",
            "examples/quickstart.rs",
            "crates/mrkd/src/stats.rs",
        ] {
            let f = one(path, src);
            assert!(
                f.iter()
                    .any(|x| x.rule == "determinism" && x.message.contains("Instant")),
                "{path}: {f:?}"
            );
        }
        let sys = "fn f() { let t = std::time::SystemTime::now(); }";
        let f = one("crates/core/src/sp.rs", sys);
        assert!(f.iter().any(|x| x.message.contains("SystemTime")), "{f:?}");
    }

    #[test]
    fn time_rule_allows_obs_vendor_and_test_code() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert!(one("crates/obs/src/clock.rs", src).is_empty());
        assert!(one("vendor/crossbeam/src/lib.rs", src).is_empty());
        let test_only =
            "#[cfg(test)]\nmod t { use std::time::Instant;\nfn f() { let t = Instant::now(); } }";
        assert!(one("crates/core/src/sp.rs", test_only).is_empty());
        // `Duration` is a plain value type, not a clock — never flagged.
        let dur = "fn f(d: std::time::Duration) -> u64 { d.as_micros() as u64 }";
        assert!(one("crates/core/src/sp.rs", dur).is_empty());
    }

    // --- rule `wire` ---

    #[test]
    fn wire_rule_flags_unpaired_encode_and_missing_roundtrip() {
        let src = "impl Encode for Foo { fn to_wire(&self) -> Vec<u8> { Vec::new() } }";
        let f = one("crates/mrkd/src/vo.rs", src);
        let msgs: Vec<&str> = f
            .iter()
            .filter(|x| x.rule == "wire")
            .map(|x| x.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 2, "{f:?}");
        assert!(msgs[0].contains("no matching impl Decode"));
        assert!(msgs[1].contains("no roundtrip test"));
    }

    #[test]
    fn wire_rule_flags_len_cast_but_accepts_seq_len() {
        let bad = "impl Encode for Foo { fn e(&self, w: &mut W) { w.u32(self.xs.len() as u32); } }";
        let f = one("crates/invindex/src/vo.rs", bad);
        assert!(
            f.iter()
                .any(|x| x.rule == "wire" && x.message.contains("seq_len")),
            "{f:?}"
        );
        let good =
            "impl Encode for Foo { fn e(&self, w: &mut W) { w.seq_len(self.xs.len() as u32); } }";
        let f = one("crates/invindex/src/vo.rs", good);
        assert!(
            !f.iter().any(|x| x.message.contains("usize length cast")),
            "{f:?}"
        );
    }

    #[test]
    fn wire_rule_passes_paired_impls_with_a_roundtrip_test() {
        let src = "impl Encode for Foo { fn to_wire(&self) -> Vec<u8> { Vec::new() } }\n\
                   impl Decode for Foo { fn from_wire(d: &[u8]) -> Option<Foo> { None } }\n\
                   #[cfg(test)]\n\
                   mod tests { fn rt() { let f = Foo::from_wire(&Foo.to_wire()); } }";
        let f = one("crates/mrkd/src/vo.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wire_rule_flags_a_shard_wire_type_without_a_roundtrip_test() {
        // Fixture mirroring a freshly added sharded wire type: Encode/Decode
        // are paired, but no test exercises the decoder. The rule must fire so
        // new shard VO types cannot land without decode-totality coverage.
        let src = "impl Encode for ShardFence { fn to_wire(&self) -> Vec<u8> { Vec::new() } }\n\
                   impl Decode for ShardFence { fn from_wire(d: &[u8]) -> Option<ShardFence> { None } }\n\
                   #[cfg(test)]\n\
                   mod tests { fn rt() { let _ = ShardManifest::from_wire(&[]); } }";
        let f = one("crates/core/src/shard.rs", src);
        let msgs: Vec<&str> = f
            .iter()
            .filter(|x| x.rule == "wire")
            .map(|x| x.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 1, "{f:?}");
        assert!(
            msgs[0].contains("no roundtrip test") && msgs[0].contains("ShardFence"),
            "{f:?}"
        );
    }

    // --- rule `unsafe` ---

    #[test]
    fn unsafe_rule_flags_unsafe_even_in_tests() {
        let f = one(
            "crates/akm/src/lib.rs",
            "#[cfg(test)]\nmod t { fn f(p: *const u8) -> u8 { unsafe { *p } } }",
        );
        assert!(rules_of(&f).contains(&"unsafe"), "{f:?}");
    }

    #[test]
    fn unsafe_rule_ignores_the_word_in_comments_and_strings() {
        let f = one(
            "crates/akm/src/lib.rs",
            "// unsafe here would be bad\nfn f() -> &'static str { \"unsafe\" }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    // --- rule `allow` + suppression ---

    #[test]
    fn allow_suppresses_on_same_line_and_line_above() {
        let above = "impl Client { fn verify(&self, x: Option<u32>) -> u32 {\n\
                     // audit:allow(panic) fixture: checked by caller\n\
                     x.unwrap()\n\
                     } }";
        assert!(one("crates/core/src/client.rs", above).is_empty());
        let trailing = "impl Client { fn verify(&self, x: Option<u32>) -> u32 { x.unwrap() } } // audit:allow(panic) fixture: checked";
        assert!(one("crates/core/src/client.rs", trailing).is_empty());
    }

    #[test]
    fn allow_does_not_suppress_other_rules_or_far_lines() {
        let wrong_rule = "impl Client { fn verify(&self, x: Option<u32>) -> u32 {\n\
                          // audit:allow(determinism) wrong rule named\n\
                          x.unwrap()\n\
                          } }";
        let f = one("crates/core/src/client.rs", wrong_rule);
        assert!(rules_of(&f).contains(&"panic"), "{f:?}");
        // ...and the mis-aimed annotation is itself reported as stale.
        assert!(
            f.iter()
                .any(|x| x.rule == "allow" && x.message.contains("suppresses no findings")),
            "{f:?}"
        );
        let far = "// audit:allow(panic) too far away\n\n\nimpl Client { fn verify(&self, x: Option<u32>) -> u32 { x.unwrap() } }";
        let f = one("crates/core/src/client.rs", far);
        assert!(rules_of(&f).contains(&"panic"), "{f:?}");
    }

    #[test]
    fn fn_level_allow_covers_the_whole_body() {
        // An allow on (or just above) a fn signature widens to the body —
        // the escape hatch for fixed-size kernels whose every line indexes.
        let src = "impl Reader {\n\
                   // audit:allow(panic) fixture kernel: indices proven in range by the type\n\
                   fn kernel(&self, v: &[u8; 4]) -> u8 {\n\
                   let a = v[0];\n\
                   let b = v[3];\n\
                   a ^ b\n\
                   }\n\
                   }";
        let f = one("crates/crypto/src/wire.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn stale_allow_is_flagged() {
        let src = "// audit:allow(panic) nothing here can panic anymore\n\
                   fn calm() -> u32 { 1 }";
        let f = one("crates/core/src/client.rs", src);
        assert!(
            f.iter()
                .any(|x| x.rule == "allow" && x.message.contains("suppresses no findings")),
            "{f:?}"
        );
    }

    #[test]
    fn allow_rule_flags_missing_reason_and_unknown_rule() {
        let f = one(
            "crates/mrkd/src/verify.rs",
            "// audit:allow(panic)\nfn f() {}",
        );
        assert!(
            f.iter()
                .any(|x| x.rule == "allow" && x.message.contains("justification")),
            "{f:?}"
        );
        let f = one(
            "crates/mrkd/src/verify.rs",
            "// audit:allow(speed) because fast\nfn f() {}",
        );
        assert!(
            f.iter()
                .any(|x| x.rule == "allow" && x.message.contains("unknown rule")),
            "{f:?}"
        );
    }

    #[test]
    fn punctuation_only_reason_is_rejected() {
        let f = one(
            "crates/mrkd/src/verify.rs",
            "// audit:allow(panic) ---\nfn f() {}",
        );
        assert!(
            f.iter()
                .any(|x| x.rule == "allow" && x.message.contains("justification")),
            "{f:?}"
        );
    }

    // --- rules `alloc` / `lockorder` / `relaxed` through the full pipeline ---

    #[test]
    fn alloc_rule_fires_and_is_suppressible() {
        let bad = "impl Decode for Foo { fn from_wire(r: &mut Reader) -> Foo {\n\
                   let n = r.varint();\n\
                   let v = Vec::with_capacity(n as usize);\n\
                   Foo\n\
                   } }";
        let f = one("crates/invindex/src/vo.rs", bad);
        assert!(rules_of(&f).contains(&"alloc"), "{f:?}");
        let allowed = "impl Decode for Foo { fn from_wire(r: &mut Reader) -> Foo {\n\
                   let n = r.varint();\n\
                   // audit:allow(alloc) fixture: capacity capped by caller contract\n\
                   let v = Vec::with_capacity(n as usize);\n\
                   Foo\n\
                   } }";
        let f = one("crates/invindex/src/vo.rs", allowed);
        assert!(!rules_of(&f).contains(&"alloc"), "{f:?}");
    }

    #[test]
    fn relaxed_rule_fires_and_allow_with_reason_suppresses() {
        let bad = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        let f = one("crates/obs/src/metrics.rs", bad);
        assert!(rules_of(&f).contains(&"relaxed"), "{f:?}");
        let good = "fn bump(c: &AtomicU64) {\n\
                    c.fetch_add(1, Ordering::Relaxed); // audit:allow(relaxed) monotonic counter; readers tolerate lag\n\
                    }";
        let f = one("crates/obs/src/metrics.rs", good);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lockorder_rule_fires_through_the_pipeline() {
        let src = "impl Registry { fn bad(&self) -> (usize, usize) {\n\
                   (self.gauges.lock().len(), self.counters.lock().len())\n\
                   } }";
        let f = one("crates/obs/src/metrics.rs", src);
        assert!(rules_of(&f).contains(&"lockorder"), "{f:?}");
    }

    #[test]
    fn roundtrip_coverage_counts_integration_test_files() {
        let vo = SourceFile {
            path: "crates/mrkd/src/vo.rs".to_string(),
            text: "impl Encode for Foo { fn to_wire(&self) {} }\n\
                   impl Decode for Foo { fn from_wire(d: &[u8]) {} }"
                .to_string(),
        };
        let t = SourceFile {
            path: "tests/decode_fuzz.rs".to_string(),
            text: "fn rt() { let f = Foo::from_wire(&[]); }".to_string(),
        };
        let f = analyze_sources(&[vo, t]);
        assert!(f.is_empty(), "{f:?}");
    }
}
