//! `imageproof-audit`: a from-scratch static-analysis pass over the
//! workspace, run as a CI gate.
//!
//! The paper's security argument needs the client verifier to be *total*
//! (any SP-supplied bytes must decode to `Err`, never a panic) and every
//! digest computation to be bit-deterministic across threads and runs.
//! PR 1/PR 2 check both properties dynamically; this crate enforces them
//! statically on every build, with a hand-rolled token-level scanner
//! (no syn, no external deps) and five rule families:
//!
//! * `panic` — no `unwrap`/`expect`/panicking macros/unchecked indexing in
//!   decode and verify paths.
//! * `determinism` — no HashMap/HashSet, wall-clock time, or float
//!   reductions (outside `akm::kernel`) near digest/wire code.
//! * `wire` — no `usize` lengths encoded raw; every `impl Encode` has a
//!   matching `impl Decode` and a roundtrip test.
//! * `deps` — every `Cargo.toml` stays inside the offline crate set.
//! * `unsafe` — no `unsafe` outside an allowlist (currently empty).
//!
//! Escape hatch: `// audit:allow(<rule>) <reason>` on or directly above
//! the offending line; annotations without a reason are themselves
//! findings.

pub mod lexer;
pub mod manifest;
pub mod rules;

use rules::{Finding, SourceFile};
use std::io;
use std::path::Path;

/// Walks the workspace at `root`, runs every rule, and returns findings
/// sorted by path, line, and rule.
pub fn run_audit(root: &Path) -> io::Result<Vec<Finding>> {
    let mut sources: Vec<SourceFile> = Vec::new();
    let mut manifests: Vec<(String, String)> = Vec::new();
    collect(root, root, &mut sources, &mut manifests)?;
    sources.sort_by(|a, b| a.path.cmp(&b.path));
    manifests.sort_by(|a, b| a.0.cmp(&b.0));
    let mut findings = rules::analyze_sources(&sources);
    for (path, text) in &manifests {
        findings.extend(manifest::analyze_manifest(path, text));
    }
    findings.sort();
    Ok(findings)
}

/// Number of files `run_audit` would scan — reported in the CI summary so
/// an accidentally-empty walk is visible.
pub fn count_files(root: &Path) -> io::Result<usize> {
    let mut sources = Vec::new();
    let mut manifests = Vec::new();
    collect(root, root, &mut sources, &mut manifests)?;
    Ok(sources.len() + manifests.len())
}

fn collect(
    root: &Path,
    dir: &Path,
    sources: &mut Vec<SourceFile>,
    manifests: &mut Vec<(String, String)>,
) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Build output and VCS metadata are not source.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(root, &path, sources, manifests)?;
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            // Unreadable files (racing editors, permissions) are skipped
            // rather than failing the whole audit.
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            if name == "Cargo.toml" {
                manifests.push((rel, text));
            } else {
                sources.push(SourceFile { path: rel, text });
            }
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
