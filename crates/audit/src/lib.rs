//! `imageproof-audit`: a from-scratch static-analysis pass over the
//! workspace, run as a CI gate.
//!
//! The paper's security argument needs the client verifier to be *total*
//! (any SP-supplied bytes must decode to `Err`, never a panic) and every
//! digest computation to be bit-deterministic across threads and runs.
//! The suite checks both properties dynamically; this crate enforces them
//! statically on every build, with a hand-rolled token-level scanner
//! (no syn, no external deps). On top of the scanner, [`model`] parses the
//! workspace into a lightweight item/call model (fn items with their
//! `impl`/`trait` context, call edges by name-based path resolution), and
//! the rule families run over it:
//!
//! * `panic` — interprocedural panic-reachability: seeded from every
//!   `impl Decode`, `Client::verify*`, and `wire::Reader` entry point and
//!   propagated over the call graph; no `unwrap`/`expect`/panicking
//!   macros/unchecked indexing/non-constant division anywhere reachable.
//! * `alloc` — hostile-allocation dataflow: a wire-read length must pass a
//!   bound check before it sizes an allocation, slice, or loop.
//! * `lockorder`/`relaxed` — concurrency lints for `crates/obs` and
//!   `crates/parallel`: nested lock acquisitions must follow the declared
//!   manifest, and every `Ordering::Relaxed` needs a justification.
//! * `determinism` — no HashMap/HashSet, wall-clock time, or float
//!   reductions (outside `akm::kernel`) near digest/wire code.
//! * `wire` — no `usize` lengths encoded raw; every `impl Encode` has a
//!   matching `impl Decode` and a roundtrip test.
//! * `deps` — every `Cargo.toml` stays inside the offline crate set.
//! * `unsafe` — no `unsafe` outside an allowlist (currently empty).
//!
//! Escape hatch: `// audit:allow(<rule>) <reason>` on or directly above
//! the offending line — or on/above a `fn` signature to cover its whole
//! body. Annotations without a reason, and annotations that suppress
//! nothing, are themselves findings.

pub mod concurrency;
pub mod dataflow;
pub mod lexer;
pub mod manifest;
pub mod model;
pub mod reach;
pub mod rules;

use rules::{Finding, SourceFile};
use std::io;
use std::path::Path;

/// Walks the workspace at `root`, runs every rule, and returns findings
/// sorted by path, line, and rule.
pub fn run_audit(root: &Path) -> io::Result<Vec<Finding>> {
    let mut sources: Vec<SourceFile> = Vec::new();
    let mut manifests: Vec<(String, String)> = Vec::new();
    collect(root, root, &mut sources, &mut manifests)?;
    sources.sort_by(|a, b| a.path.cmp(&b.path));
    manifests.sort_by(|a, b| a.0.cmp(&b.0));
    let mut findings = rules::analyze_sources(&sources);
    for (path, text) in &manifests {
        findings.extend(manifest::analyze_manifest(path, text));
    }
    findings.sort();
    Ok(findings)
}

/// Number of files `run_audit` would scan — reported in the CI summary so
/// an accidentally-empty walk is visible.
pub fn count_files(root: &Path) -> io::Result<usize> {
    let mut sources = Vec::new();
    let mut manifests = Vec::new();
    collect(root, root, &mut sources, &mut manifests)?;
    Ok(sources.len() + manifests.len())
}

/// A manifest as `(path, contents)`.
pub type Manifest = (String, String);

/// The workspace's source files and manifests, sorted by path — the same
/// inputs `run_audit` analyzes, for tools (and tests) that want to build a
/// [`model::Model`] over the real tree.
pub fn collect_workspace(root: &Path) -> io::Result<(Vec<SourceFile>, Vec<Manifest>)> {
    let mut sources = Vec::new();
    let mut manifests = Vec::new();
    collect(root, root, &mut sources, &mut manifests)?;
    sources.sort_by(|a, b| a.path.cmp(&b.path));
    manifests.sort_by(|a, b| a.0.cmp(&b.0));
    Ok((sources, manifests))
}

fn collect(
    root: &Path,
    dir: &Path,
    sources: &mut Vec<SourceFile>,
    manifests: &mut Vec<(String, String)>,
) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Build output and VCS metadata are not source.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(root, &path, sources, manifests)?;
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            // Unreadable files (racing editors, permissions) are skipped
            // rather than failing the whole audit.
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            if name == "Cargo.toml" {
                manifests.push((rel, text));
            } else {
                sources.push(SourceFile { path: rel, text });
            }
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
