//! Rule `alloc`, interprocedural scope / intraprocedural flow: hostile
//! allocation sizes.
//!
//! A malicious SP can put any integer on the wire, so a length read by
//! `Reader::varint`/`u32`/`u64` — or arithmetic derived from one, even
//! from an already-bounded `vseq_len` result (`n * RECORD_SIZE` can dwarf
//! the stream) — must flow through a bound check before it sizes an
//! allocation, a slice, or a loop. This pass tracks a two-state taint
//! (`Raw` = attacker-sized, `Bounded` = capped by the stream or an
//! explicit comparison) per local variable through each function body and
//! flags `Vec::with_capacity`, `vec![..; n]`, `.reserve`, range slicing,
//! and `for … in 0..n` sinks fed by `Raw` values.
//!
//! Sanitizers: `bound_len`, `vseq_len`/`seq_len` (internally bounded),
//! `take`/`take_array`/`vbytes` (bounds-checked reads), `checked_*`
//! arithmetic, `.min(..)`, and an explicit `<`/`>` comparison against the
//! variable. Multiplication or shifting re-taints: a bounded factor times
//! anything is attacker-expandable.

use crate::lexer::{self, Scrubbed};
use crate::model::Model;
use crate::rules::{Finding, SourceFile};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Taint {
    /// Attacker-chosen magnitude: a raw wire integer or expansion thereof.
    Raw,
    /// Capped by the remaining stream or an explicit comparison.
    Bounded,
}

/// Reader methods that return an attacker-chosen integer. They are reads
/// (no arguments) — the same-named `Writer` methods take a value, so an
/// empty argument list is the discriminator.
const RAW_READS: &[&str] = &[".varint", ".u64", ".u32", ".u16", ".u8"];

/// Substrings whose presence means a value was bounds-checked at its
/// source or sanitized inline.
const BOUNDED_MARKS: &[&str] = &[
    "vseq_len(",
    "seq_len(",
    "bound_len(",
    "vbytes(",
    "take_array",
    ".take(",
    "checked_mul(",
    "checked_add(",
    "checked_sub(",
    "checked_shl(",
    ".min(",
];

/// Runs the pass over every non-test function body in the model.
pub fn check(files: &[SourceFile], scrubbed: &[Scrubbed], model: &Model, out: &mut Vec<Finding>) {
    for d in &model.fns {
        if d.in_test {
            continue;
        }
        let Some((b0, b1)) = d.body else { continue };
        let s = &scrubbed[d.file];
        for (pos, var, sink) in hostile_sinks(&s.text, b0, b1) {
            out.push(Finding {
                path: files[d.file].path.clone(),
                line: s.line_of(pos),
                rule: "alloc",
                message: format!(
                    "wire-derived length `{var}` reaches {sink} without a bound check (bound_len or an explicit cap comparison)"
                ),
            });
        }
    }
}

/// Statement-level taint walk over `text[from..to]`; returns
/// `(offset, tainted value, sink description)` per finding.
pub fn hostile_sinks(text: &str, from: usize, to: usize) -> Vec<(usize, String, String)> {
    let mut vars: BTreeMap<String, Taint> = BTreeMap::new();
    let mut findings = Vec::new();
    for (seg_start, seg) in segments(text, from, to) {
        // Sinks first: a sanitizer inside this statement (`n.min(CAP)`)
        // is visible to the argument check itself, but a comparison later
        // in the statement must not retroactively bless it.
        check_sinks(seg, seg_start, &vars, &mut findings);

        // Assignment: classify the right-hand side.
        if let Some((name, rhs)) = assignment(seg) {
            match classify(rhs, &vars) {
                Some(t) => {
                    vars.insert(name, t);
                }
                None => {
                    vars.remove(&name);
                }
            }
        }

        // Explicit comparison sanitizes the compared variable from the
        // next statement on.
        let raw_vars: Vec<String> = vars
            .iter()
            .filter(|&(_, &t)| t == Taint::Raw)
            .map(|(n, _)| n.clone())
            .collect();
        for name in raw_vars {
            if compared(seg, &name) || sanitized_by_call(seg, &name) {
                vars.insert(name, Taint::Bounded);
            }
        }
    }
    findings
}

/// Splits `text[from..to]` into statements at `;` (outside brackets and
/// parens, so `vec![0u8; n]` stays whole) and at braces.
fn segments(text: &str, from: usize, to: usize) -> Vec<(usize, &str)> {
    let bytes = text.as_bytes();
    let to = to.min(bytes.len());
    let mut segs = Vec::new();
    let mut start = from;
    let mut depth = 0usize;
    for i in from..to {
        match bytes[i] {
            b'[' | b'(' => depth += 1,
            b']' | b')' => depth = depth.saturating_sub(1),
            b';' if depth == 0 => {
                segs.push((start, &text[start..i]));
                start = i + 1;
            }
            b'{' | b'}' => {
                segs.push((start, &text[start..i]));
                start = i + 1;
                depth = 0;
            }
            _ => {}
        }
    }
    if start < to {
        segs.push((start, &text[start..to]));
    }
    segs
}

/// Parses `let [mut] NAME = rhs` / `NAME = rhs` (not `==`, `+=`, …);
/// returns the bound name and the right-hand side.
fn assignment(seg: &str) -> Option<(String, &str)> {
    let bytes = seg.as_bytes();
    let eq = seg.find('=').filter(|&e| {
        bytes.get(e + 1) != Some(&b'=')
            && (e == 0
                || !matches!(
                    bytes[e - 1],
                    b'=' | b'!'
                        | b'<'
                        | b'>'
                        | b'+'
                        | b'-'
                        | b'*'
                        | b'/'
                        | b'%'
                        | b'&'
                        | b'|'
                        | b'^'
                ))
    })?;
    let lhs = seg[..eq].trim();
    let lhs = lhs.strip_prefix("let ").unwrap_or(lhs).trim();
    let lhs = lhs.strip_prefix("mut ").unwrap_or(lhs).trim();
    // Only simple `name` / `name: Type` bindings are tracked.
    let name_end = lhs.find(':').map(|c| lhs[..c].trim_end()).unwrap_or(lhs);
    if name_end.is_empty() || !name_end.bytes().all(lexer::is_ident) {
        return None;
    }
    Some((name_end.to_string(), &seg[eq + 1..]))
}

/// Taint of an expression, given current variable states. `None` means
/// untracked (not length-like).
fn classify(rhs: &str, vars: &BTreeMap<String, Taint>) -> Option<Taint> {
    let bounded_src = BOUNDED_MARKS.iter().any(|m| rhs.contains(m));
    let raw_src = has_raw_read(rhs);
    let expand = has_expansion_op(rhs);
    let mut touches_raw = false;
    let mut touches_bounded = false;
    for (name, &t) in vars {
        if word_in(rhs, name) {
            match t {
                Taint::Raw => touches_raw = true,
                Taint::Bounded => touches_bounded = true,
            }
        }
    }
    if bounded_src && !raw_src && !expand {
        return Some(Taint::Bounded);
    }
    if raw_src || touches_raw {
        return Some(Taint::Raw);
    }
    if expand && touches_bounded {
        // bounded * anything is attacker-expandable.
        return Some(Taint::Raw);
    }
    if touches_bounded {
        return Some(Taint::Bounded);
    }
    None
}

/// A `.varint()`-style zero-argument Reader read somewhere in `s`.
fn has_raw_read(s: &str) -> bool {
    let bytes = s.as_bytes();
    RAW_READS.iter().any(|m| {
        let mut i = 0;
        while let Some(pos) = lexer::find_from(bytes, m.as_bytes(), i) {
            i = pos + 1;
            let after = lexer::skip_ws(bytes, pos + m.len());
            // Word boundary (`.u8` must not match `.u8_at`) then `()`.
            if bytes
                .get(pos + m.len())
                .is_some_and(|&b| lexer::is_ident(b))
            {
                continue;
            }
            if bytes.get(after) == Some(&b'(') {
                let inner = lexer::skip_ws(bytes, after + 1);
                if bytes.get(inner) == Some(&b')') {
                    return true;
                }
            }
        }
        false
    })
}

/// A binary `*` or `<<` (multiplication/shift, not deref or generics).
fn has_expansion_op(s: &str) -> bool {
    let bytes = s.as_bytes();
    for i in 0..bytes.len() {
        match bytes[i] {
            b'*' => {
                let Some(prev) = bytes[..i].iter().rposition(|&c| !c.is_ascii_whitespace()) else {
                    continue;
                };
                // deref (`*x`, `&*x`) has an operator on the left;
                // multiplication has a value.
                if lexer::is_ident(bytes[prev]) || bytes[prev] == b')' || bytes[prev] == b']' {
                    return true;
                }
            }
            b'<' if bytes.get(i + 1) == Some(&b'<') && bytes.get(i + 2) != Some(&b'<') => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Identifier-boundary containment of `word` in `s`.
fn word_in(s: &str, word: &str) -> bool {
    lexer::find_word(s.as_bytes(), word.as_bytes(), 0).is_some()
}

/// Whether `seg` compares `name` with `<`/`>`/`<=`/`>=` (adjacency on
/// either side, so `if n > MAX` and `if MAX > n` both sanitize).
fn compared(seg: &str, name: &str) -> bool {
    let bytes = seg.as_bytes();
    let mut i = 0;
    while let Some(pos) = lexer::find_word(bytes, name.as_bytes(), i) {
        i = pos + 1;
        // Right neighbor.
        let r = lexer::skip_ws(bytes, pos + name.len());
        if matches!(bytes.get(r), Some(&b'<') | Some(&b'>'))
            && bytes.get(r + 1) != Some(&b'<')
            && bytes.get(r + 1) != Some(&b'>')
        {
            return true;
        }
        // Left neighbor (skipping ws): `MAX > n`, `MAX >= n`.
        if pos > 0 {
            let mut l = pos;
            while l > 0 && bytes[l - 1].is_ascii_whitespace() {
                l -= 1;
            }
            if l > 0 {
                let c = bytes[l - 1];
                let c2 = if l > 1 { Some(bytes[l - 2]) } else { None };
                if c == b'<' || c == b'>' {
                    if c2 != Some(b'<') && c2 != Some(b'>') && c2 != Some(b'-') {
                        return true;
                    }
                } else if c == b'=' && matches!(c2, Some(b'<') | Some(b'>')) {
                    return true;
                }
            }
        }
    }
    false
}

/// Whether `seg` feeds `name` through an explicit bounding call.
fn sanitized_by_call(seg: &str, name: &str) -> bool {
    word_in(seg, name)
        && ["bound_len(", ".min(", "checked_mul(", "checked_add("]
            .iter()
            .any(|m| seg.contains(m))
}

/// Flags allocation/slice/loop sinks in one statement fed by a Raw value.
fn check_sinks(
    seg: &str,
    seg_start: usize,
    vars: &BTreeMap<String, Taint>,
    out: &mut Vec<(usize, String, String)>,
) {
    let bytes = seg.as_bytes();
    let mut push = |pos: usize, arg: &str, sink: &str| {
        if let Some(culprit) = hostile_value(arg, vars) {
            out.push((seg_start + pos, culprit, sink.to_string()));
        }
    };

    for pat in ["with_capacity(", ".reserve("] {
        let mut i = 0;
        while let Some(pos) = lexer::find_from(bytes, pat.as_bytes(), i) {
            i = pos + 1;
            let open = pos + pat.len() - 1;
            let arg = paren_arg(seg, open);
            let sink = if pat.starts_with('.') {
                "reserve"
            } else {
                "with_capacity"
            };
            push(pos, arg, sink);
        }
    }
    // `vec![elem; len]` — the repeat length after the top-level `;`.
    let mut i = 0;
    while let Some(pos) = lexer::find_from(bytes, b"vec!", i) {
        i = pos + 1;
        let Some(open) = seg[pos..].find('[').map(|p| pos + p) else {
            continue;
        };
        let inner = bracket_arg(seg, open);
        if let Some(semi) = inner.rfind(';') {
            push(pos, &inner[semi + 1..], "vec![..; n]");
        }
    }
    // `for … in a..b` loop bounds.
    if lexer::find_word(bytes, b"for", 0).is_some() {
        if let Some(in_pos) = lexer::find_word(bytes, b"in", 0) {
            let range = &seg[in_pos + 2..];
            if range.contains("..") {
                push(in_pos, range, "a loop bound");
            }
        }
    }
    // Range slicing `x[a..b]` (plain `x[i]` indexing is the panic rule's).
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'[' && i > 0 && (lexer::is_ident(bytes[i - 1]) || bytes[i - 1] == b')') {
            let inner = bracket_arg(seg, i);
            if inner.contains("..") {
                push(i, inner, "a slice range");
            }
        }
        i += 1;
    }
}

/// The hostile variable or read feeding `arg`, if any. Inline sanitizers
/// (`.min(CAP)`, `bound_len`, `checked_*`) clear it.
fn hostile_value(arg: &str, vars: &BTreeMap<String, Taint>) -> Option<String> {
    if BOUNDED_MARKS.iter().any(|m| arg.contains(m)) {
        return None;
    }
    if has_raw_read(arg) {
        return Some("a raw wire read".to_string());
    }
    for (name, &t) in vars {
        if t == Taint::Raw && word_in(arg, name) {
            return Some(name.clone());
        }
    }
    if has_expansion_op(arg) {
        for name in vars.keys() {
            if word_in(arg, name) {
                return Some(format!("{name} (scaled)"));
            }
        }
    }
    None
}

/// Contents of the balanced paren group opening at `open`.
fn paren_arg(seg: &str, open: usize) -> &str {
    balanced(seg, open, b'(', b')')
}

fn bracket_arg(seg: &str, open: usize) -> &str {
    balanced(seg, open, b'[', b']')
}

fn balanced(seg: &str, open: usize, o: u8, c: u8) -> &str {
    let bytes = seg.as_bytes();
    let mut depth = 0usize;
    for i in open..bytes.len() {
        if bytes[i] == o {
            depth += 1;
        } else if bytes[i] == c {
            depth -= 1;
            if depth == 0 {
                return &seg[open + 1..i];
            }
        }
    }
    &seg[(open + 1).min(seg.len())..]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sinks(body: &str) -> Vec<(usize, String, String)> {
        let s = crate::lexer::scrub(body);
        hostile_sinks(&s.text, 0, s.text.len())
    }

    #[test]
    fn raw_read_reaching_with_capacity_fires() {
        let f = sinks("{ let n = r.varint(); let v = Vec::with_capacity(n as usize); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, "n");
        assert_eq!(f[0].2, "with_capacity");
    }

    #[test]
    fn bounded_length_scaled_by_multiplication_fires_on_reserve() {
        let f = sinks("{ let n = r.vseq_len(8)?; let total = n * 40; buf.reserve(total); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].1, "total");
        assert_eq!(f[0].2, "reserve");
    }

    #[test]
    fn inline_raw_read_in_loop_bound_fires() {
        let f = sinks("{ for i in 0..r.u32() { step(i); } }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].2, "a loop bound");
    }

    #[test]
    fn raw_vec_repeat_length_fires() {
        let f = sinks("{ let n = r.u64(); let buf = vec![0u8; n as usize]; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].2, "vec![..; n]");
    }

    #[test]
    fn stream_bounded_lengths_are_clean() {
        for ok in [
            "{ let n = r.vseq_len(8)?; let v = Vec::with_capacity(n); }",
            "{ let n = r.seq_len(4, 1024)?; for i in 0..n { step(i); } }",
            "{ let b = r.vbytes()?; let v = Vec::with_capacity(b.len()); }",
        ] {
            let f = sinks(ok);
            assert!(f.is_empty(), "{ok}: {f:?}");
        }
    }

    #[test]
    fn explicit_comparison_sanitizes() {
        let f = sinks(
            "{ let n = r.varint(); if n > MAX_ITEMS { return None; } let v = Vec::with_capacity(n as usize); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn inline_min_cap_sanitizes() {
        let f = sinks("{ let n = r.varint(); let v = Vec::with_capacity(n.min(CAP) as usize); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn comparison_later_in_same_statement_does_not_bless_the_sink() {
        let f = sinks(
            "{ let n = r.varint(); let ok = fill(Vec::with_capacity(n as usize)) && n < cap }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn raw_slice_range_fires() {
        let f = sinks("{ let n = r.u64(); let head = &buf[..n as usize]; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].2, "a slice range");
    }

    #[test]
    fn writer_calls_with_arguments_are_not_raw_reads() {
        let f = sinks("{ w.u32(x); w.varint(n as u64); let v = Vec::with_capacity(k); }");
        assert!(f.is_empty(), "{f:?}");
    }
}
