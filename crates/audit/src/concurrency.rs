//! Rules `lockorder` and `relaxed`: concurrency lints for the crates that
//! actually share mutable state across threads (`crates/obs`,
//! `crates/parallel`).
//!
//! **Lock order.** [`LOCK_ORDER`] declares the one legal acquisition order
//! for the workspace's named mutexes. The pass finds every `.lock()` site,
//! derives nesting two ways — two acquisitions in the same statement
//! (temporaries live to the statement's end, as in `Registry::snapshot`'s
//! struct literal), and a `let`-bound guard held to the end of its
//! enclosing block — and flags recursive acquisition (parking_lot mutexes
//! are not reentrant), acquisition against the declared order, and any
//! nested lock missing from the manifest. Calls made while a guard is held
//! are checked interprocedurally: if the callee (transitively) acquires
//! the same lock, that is a self-deadlock.
//!
//! **Relaxed.** `Ordering::Relaxed` is usually right for monotonic
//! counters, but each use on a cross-thread-read metric must say *why*
//! relaxed is sound via `audit:allow(relaxed) <reason>` — so new code
//! can't silently inherit the weakest ordering.

use crate::lexer::{self, Scrubbed};
use crate::model::Model;
use crate::rules::{Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// The declared workspace lock-order manifest: an earlier lock may be held
/// while taking a later one, never the reverse.
pub const LOCK_ORDER: &[&str] = &["counters", "gauges", "histograms", "collected"];

/// File prefixes the concurrency lints apply to.
const SCOPE: &[&str] = &["crates/obs/", "crates/parallel/"];

fn in_scope(path: &str) -> bool {
    SCOPE.iter().any(|p| path.starts_with(p))
}

/// One `.lock()` acquisition site.
#[derive(Debug, Clone)]
struct LockSite {
    pos: usize,
    name: String,
}

/// Runs both lints.
pub fn check(files: &[SourceFile], scrubbed: &[Scrubbed], model: &Model, out: &mut Vec<Finding>) {
    // Transitive lock sets per function, for the held-guard call check.
    let trans = transitive_locks(model, scrubbed);

    for (fi, d) in model.fns.iter().enumerate() {
        if d.in_test || !in_scope(&model.file_paths[d.file]) {
            continue;
        }
        let Some((b0, b1)) = d.body else { continue };
        let s = &scrubbed[d.file];
        let path = &files[d.file].path;
        let sites = lock_sites(&s.text, b0, b1);

        // Nesting by same-statement temporaries.
        for (a, b) in same_statement_pairs(&s.text, &sites) {
            check_pair(path, s, &sites[a], &sites[b], out);
        }

        // Nesting by a let-bound guard held to end of block.
        for (gi, g) in sites.iter().enumerate() {
            let Some(region) = guard_region(&s.text, b0, b1, g.pos) else {
                continue;
            };
            for (bi, inner) in sites.iter().enumerate() {
                if bi != gi && inner.pos > region.0 && inner.pos < region.1 {
                    // Same-statement pairs were already checked above.
                    if !same_statement(&s.text, g.pos, inner.pos) {
                        check_pair(path, s, g, inner, out);
                    }
                }
            }
            // Calls made while the guard is held.
            for (cpos, callee) in named_calls(&s.text, region.0, region.1) {
                for (&ci, locks) in &trans {
                    if model.fns[ci].name == callee && ci != fi && locks.contains(&g.name) {
                        out.push(Finding {
                            path: path.clone(),
                            line: s.line_of(cpos),
                            rule: "lockorder",
                            message: format!(
                                "call to `{callee}` while holding `{}`, which it (transitively) re-acquires — self-deadlock",
                                g.name
                            ),
                        });
                        break;
                    }
                }
            }
        }
    }

    check_relaxed(files, scrubbed, out);
}

/// Flags one nested acquisition pair (outer `a`, inner `b`).
fn check_pair(path: &str, s: &Scrubbed, a: &LockSite, b: &LockSite, out: &mut Vec<Finding>) {
    let mut push = |pos: usize, message: String| {
        out.push(Finding {
            path: path.to_string(),
            line: s.line_of(pos),
            rule: "lockorder",
            message,
        });
    };
    if a.name == b.name {
        push(
            b.pos,
            format!(
                "`{}` acquired while already held (parking_lot mutexes are not reentrant)",
                a.name
            ),
        );
        return;
    }
    let ia = LOCK_ORDER.iter().position(|&l| l == a.name);
    let ib = LOCK_ORDER.iter().position(|&l| l == b.name);
    match (ia, ib) {
        (Some(ia), Some(ib)) if ia > ib => push(
            b.pos,
            format!(
                "`{}` acquired while holding `{}` violates the declared lock order [{}]",
                b.name,
                a.name,
                LOCK_ORDER.join(" < ")
            ),
        ),
        (None, _) => push(
            a.pos,
            format!(
                "nested lock `{}` is not in the declared lock-order manifest",
                a.name
            ),
        ),
        (_, None) => push(
            b.pos,
            format!(
                "nested lock `{}` is not in the declared lock-order manifest",
                b.name
            ),
        ),
        _ => {}
    }
}

/// Every `.lock()` call in `text[from..to]` with its receiver's final
/// path segment.
fn lock_sites(text: &str, from: usize, to: usize) -> Vec<LockSite> {
    let bytes = text.as_bytes();
    let to = to.min(bytes.len());
    let mut sites = Vec::new();
    let mut i = from;
    while let Some(pos) = lexer::find_word(bytes, b"lock", i) {
        if pos >= to {
            break;
        }
        i = pos + 1;
        if pos == 0 || bytes[pos - 1] != b'.' || bytes.get(pos + 4) != Some(&b'(') {
            continue;
        }
        // Receiver: the identifier before the dot, across line breaks
        // (`self.counters\n    .lock()`).
        let mut e = pos - 1;
        while e > 0 && bytes[e - 1].is_ascii_whitespace() {
            e -= 1;
        }
        let mut st = e;
        while st > 0 && lexer::is_ident(bytes[st - 1]) {
            st -= 1;
        }
        if st == e {
            continue; // `).lock()` — receiver expression unnamed, skip
        }
        sites.push(LockSite {
            pos,
            name: text[st..e].to_string(),
        });
    }
    sites
}

/// True when no statement terminator separates the two offsets.
fn same_statement(text: &str, a: usize, b: usize) -> bool {
    !text[a..b].contains(';')
}

/// Ordered index pairs of sites nested by same-statement temporaries.
fn same_statement_pairs(text: &str, sites: &[LockSite]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for a in 0..sites.len() {
        for b in (a + 1)..sites.len() {
            if same_statement(text, sites[a].pos, sites[b].pos) {
                pairs.push((a, b));
            }
        }
    }
    pairs
}

/// If the statement containing `pos` is a `let` binding, the byte range
/// over which its guard stays alive: from the end of that statement to the
/// end of the innermost block containing it.
fn guard_region(text: &str, b0: usize, b1: usize, pos: usize) -> Option<(usize, usize)> {
    let bytes = text.as_bytes();
    // Statement start: after the previous `;`, `{`, or `}`.
    let stmt_start = text[b0..pos]
        .rfind([';', '{', '}'])
        .map(|p| b0 + p + 1)
        .unwrap_or(b0);
    let first = lexer::skip_ws(bytes, stmt_start);
    let (word, _) = lexer::read_word(bytes, first);
    if word != "let" {
        return None;
    }
    let stmt_end = text[pos..b1].find(';').map(|p| pos + p).unwrap_or(b1);
    // Innermost enclosing block: the smallest `{ … }` within the body that
    // contains the site.
    let mut best = (b0, b1);
    let mut i = b0;
    while i < pos {
        if bytes[i] == b'{' {
            if let Some(end) = lexer::matching_brace(bytes, i) {
                if end > pos && end - i < best.1 - best.0 {
                    best = (i, end);
                }
            }
        }
        i += 1;
    }
    Some((stmt_end, best.1.min(b1)))
}

/// `(offset, name)` of plain `name(..)` / `.name(..)` call sites in a
/// range — enough to look up workspace functions by name.
fn named_calls(text: &str, from: usize, to: usize) -> Vec<(usize, String)> {
    let bytes = text.as_bytes();
    let to = to.min(bytes.len());
    let mut calls = Vec::new();
    for pos in from..to {
        if bytes[pos] != b'(' || pos == 0 || !lexer::is_ident(bytes[pos - 1]) {
            continue;
        }
        let mut st = pos;
        while st > 0 && lexer::is_ident(bytes[st - 1]) {
            st -= 1;
        }
        let name = &text[st..pos];
        if name == "lock" || name.starts_with(|c: char| c.is_ascii_digit()) {
            continue;
        }
        calls.push((pos, name.to_string()));
    }
    calls
}

/// Direct + transitive lock names acquired by each in-scope function.
fn transitive_locks(model: &Model, scrubbed: &[Scrubbed]) -> BTreeMap<usize, BTreeSet<String>> {
    let mut direct: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (fi, d) in model.fns.iter().enumerate() {
        if d.in_test || !in_scope(&model.file_paths[d.file]) {
            continue;
        }
        let Some((b0, b1)) = d.body else { continue };
        let names: BTreeSet<String> = lock_sites(&scrubbed[d.file].text, b0, b1)
            .into_iter()
            .map(|s| s.name)
            .collect();
        direct.insert(fi, names);
    }
    // Close over call edges between in-scope functions.
    let mut trans = direct.clone();
    loop {
        let mut changed = false;
        let keys: Vec<usize> = trans.keys().copied().collect();
        for &fi in &keys {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for &callee in &model.calls[fi] {
                if let Some(locks) = trans.get(&callee) {
                    add.extend(locks.iter().cloned());
                }
            }
            let set = trans.get_mut(&fi).expect("key from keys()");
            let before = set.len();
            set.extend(add);
            changed |= set.len() != before;
        }
        if !changed {
            break;
        }
    }
    trans
}

/// Rule `relaxed`: each `Ordering::Relaxed` outside tests needs an
/// `audit:allow(relaxed)` justification.
fn check_relaxed(files: &[SourceFile], scrubbed: &[Scrubbed], out: &mut Vec<Finding>) {
    for (f, s) in files.iter().zip(scrubbed) {
        if !in_scope(&f.path) || crate::rules::is_test_path(&f.path) {
            continue;
        }
        let bytes = s.text.as_bytes();
        let tests = lexer::test_regions(&s.text);
        let mut i = 0;
        while let Some(pos) = lexer::find_word(bytes, b"Relaxed", i) {
            i = pos + 1;
            if tests.iter().any(|&(a, b)| pos >= a && pos < b) {
                continue;
            }
            // Must be the atomic ordering (`Ordering::Relaxed`), not
            // `cmp::Ordering` variants (those are Less/Equal/Greater).
            if pos < 2 || bytes[pos - 1] != b':' || bytes[pos - 2] != b':' {
                continue;
            }
            out.push(Finding {
                path: f.path.clone(),
                line: s.line_of(pos),
                rule: "relaxed",
                message: "Ordering::Relaxed on a cross-thread atomic; justify with audit:allow(relaxed) <why relaxed is sound>".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    fn run(path: &str, text: &str) -> Vec<Finding> {
        let files = vec![SourceFile {
            path: path.to_string(),
            text: text.to_string(),
        }];
        let scrubbed: Vec<Scrubbed> = files.iter().map(|f| scrub(&f.text)).collect();
        let model = Model::build(&files, &scrubbed);
        let mut out = Vec::new();
        check(&files, &scrubbed, &model, &mut out);
        out
    }

    #[test]
    fn out_of_order_same_statement_acquisition_fires() {
        let src = "impl Registry { fn bad(&self) -> (usize, usize) {\n\
                   (self.gauges.lock().len(), self.counters.lock().len())\n\
                   } }";
        let f = run("crates/obs/src/metrics.rs", src);
        assert!(
            f.iter()
                .any(|x| x.rule == "lockorder" && x.message.contains("declared lock order")),
            "{f:?}"
        );
    }

    #[test]
    fn declared_order_nesting_is_clean() {
        let src = "impl Registry { fn snap(&self) -> Snap {\n\
                   Snap { c: self.counters.lock().len(), g: self.gauges.lock().len(), h: self.histograms.lock().len() }\n\
                   } }";
        let f = run("crates/obs/src/metrics.rs", src);
        assert!(f.iter().all(|x| x.rule != "lockorder"), "{f:?}");
    }

    #[test]
    fn recursive_same_statement_acquisition_fires() {
        let src = "impl Registry { fn twice(&self) -> usize {\n\
                   self.counters.lock().len() + self.counters.lock().len()\n\
                   } }";
        let f = run("crates/obs/src/metrics.rs", src);
        assert!(
            f.iter()
                .any(|x| x.rule == "lockorder" && x.message.contains("not reentrant")),
            "{f:?}"
        );
    }

    #[test]
    fn undeclared_lock_in_nesting_fires() {
        let src = "impl Registry { fn rogue(&self) -> usize {\n\
                   self.counters.lock().len() + self.rogue_cache.lock().len()\n\
                   } }";
        let f = run("crates/obs/src/metrics.rs", src);
        assert!(
            f.iter()
                .any(|x| x.rule == "lockorder" && x.message.contains("manifest")),
            "{f:?}"
        );
    }

    #[test]
    fn guard_held_across_out_of_order_lock_fires() {
        let src = "impl Registry { fn held(&self) -> usize {\n\
                   let g = self.histograms.lock();\n\
                   let c = self.counters.lock();\n\
                   g.len() + c.len()\n\
                   } }";
        let f = run("crates/obs/src/metrics.rs", src);
        assert!(
            f.iter()
                .any(|x| x.rule == "lockorder" && x.message.contains("declared lock order")),
            "{f:?}"
        );
    }

    #[test]
    fn guard_dropped_by_statement_end_is_clean() {
        let src = "impl Registry { fn seq(&self) {\n\
                   self.histograms.lock().clear();\n\
                   self.counters.lock().clear();\n\
                   } }";
        let f = run("crates/obs/src/metrics.rs", src);
        assert!(f.iter().all(|x| x.rule != "lockorder"), "{f:?}");
    }

    #[test]
    fn call_reacquiring_a_held_lock_fires() {
        let src = "impl Registry { fn outer(&self) -> usize {\n\
                   let g = self.counters.lock();\n\
                   self.inner_count();\n\
                   g.len()\n\
                   }\n\
                   fn inner_count(&self) -> usize { self.counters.lock().len() } }";
        let f = run("crates/obs/src/metrics.rs", src);
        assert!(
            f.iter()
                .any(|x| x.rule == "lockorder" && x.message.contains("self-deadlock")),
            "{f:?}"
        );
    }

    #[test]
    fn relaxed_ordering_fires_outside_tests_only() {
        let src = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n\
                   #[cfg(test)]\nmod t { fn x(c: &AtomicU64) { c.load(Ordering::Relaxed); } }";
        let f = run("crates/obs/src/metrics.rs", src);
        let relaxed: Vec<_> = f.iter().filter(|x| x.rule == "relaxed").collect();
        assert_eq!(relaxed.len(), 1, "{f:?}");
        assert_eq!(relaxed[0].line, 1);
    }

    #[test]
    fn relaxed_load_fires_and_cmp_ordering_does_not() {
        let src = "fn get(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n\
                   fn cmp(a: u32, b: u32) -> Ordering { a.cmp(&b) }";
        let f = run("crates/parallel/src/lib.rs", src);
        assert_eq!(f.iter().filter(|x| x.rule == "relaxed").count(), 1, "{f:?}");
    }

    #[test]
    fn out_of_scope_crates_are_not_linted() {
        let src = "impl S { fn bad(&self) -> usize {\n\
                   self.gauges.lock().len() + self.counters.lock().len()\n\
                   } }\n\
                   fn r(c: &AtomicU64) { c.load(Ordering::Relaxed); }";
        let f = run("crates/core/src/sp.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }
}
