//! A lightweight workspace item/call model.
//!
//! [`Model::build`] parses every non-test, non-vendored source file into
//! function items (with the `impl`/`trait` block each lives in) and
//! syntactic call edges between them, resolved by the path forms this
//! codebase actually uses:
//!
//! * `free_fn(..)` and `module::free_fn(..)`
//! * `Type::assoc(..)` and `Self::assoc(..)`
//! * `self.method(..)` and `expr.method(..)`
//!
//! Resolution is name-based and deliberately over-approximate: a call that
//! cannot be pinned to one item fans out to every function with a matching
//! name, so interprocedural passes (panic reachability, hostile-allocation
//! dataflow, lock nesting) err on the side of checking *more* code, never
//! less. Vendored third-party stubs and test code are excluded — they are
//! neither adversary-facing nor call targets of product code.

use crate::lexer::{self, Scrubbed};
use crate::rules::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One function item in the model.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index into the file list the model was built from.
    pub file: usize,
    pub name: String,
    /// `Foo` for `impl Foo`, `impl Trait for Foo`, and items declared
    /// inside `trait Foo { … }`; `None` for free functions.
    pub self_type: Option<String>,
    /// `Trait` for `impl Trait for Foo` and for items declared inside
    /// `trait Trait { … }` (default methods included).
    pub trait_name: Option<String>,
    /// Byte offset of the `fn` keyword in the scrubbed text.
    pub sig_start: usize,
    /// Byte range of the `{ … }` body; `None` for bodyless signatures.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl FnDef {
    /// `Type::name` or bare `name`, for findings and messages.
    pub fn qual_name(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One syntactic call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallForm {
    /// `name(..)` with no qualifier.
    Free { name: String },
    /// `qual::name(..)` — `qual` is the immediate path segment.
    Qualified { qual: String, name: String },
    /// `recv.name(..)`; `on_self` when the receiver token is `self`;
    /// `recv` is the receiver identifier when it is a plain one (a type
    /// hint — locals here are conventionally named after their type).
    Method {
        name: String,
        on_self: bool,
        recv: Option<String>,
    },
}

/// Keywords (and prelude constructors) that look like `ident(` but are
/// never workspace function calls.
const NON_CALL_WORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "return", "loop", "fn", "as", "in", "move", "ref",
    "mut", "let", "where", "impl", "dyn", "use", "pub", "crate", "super", "break", "continue",
    "unsafe", "static", "const", "type", "enum", "struct", "trait", "mod", "Some", "None", "Ok",
    "Err", "self", "true", "false",
];

/// Method names dominated by std containers and primitives. A `.len()` or
/// `.get()` on an untyped receiver is almost always `Vec`/slice/map, not a
/// workspace method; fanning these out to every same-named workspace item
/// welds unrelated crates together and inflates every interprocedural
/// frontier. Receivers we *can* type (`self.…`, or a receiver named after
/// its type) still resolve precisely.
const STD_SHADOWED_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clear",
    "extend",
    "entry",
    "clone",
    "to_vec",
    "as_slice",
    "as_bytes",
    "as_str",
    "to_string",
    "sort",
    "sort_by",
    "split_at",
    "chunks",
    "windows",
    "default",
    "min",
    "max",
    "abs",
];

/// `T`, `K`, `V1`, … — the shapes type parameters take in this workspace.
/// Only these quals may fan a `Qual::assoc(..)` call out to every impl;
/// `Vec::new(..)`/`Mutex::lock(..)` on std types must resolve to nothing
/// rather than to every workspace `new`.
fn is_generic_param(qual: &str) -> bool {
    let mut chars = qual.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_uppercase())
        && qual.len() <= 2
        && chars.all(|c| c.is_ascii_digit())
}

/// Whether a receiver identifier names a value of type `ty` by convention:
/// `codebook` / `query_codebook` for `Codebook`. Conservative — used only
/// to *narrow* resolution, never to widen it.
fn recv_matches_type(recv: &str, ty: &str) -> bool {
    let snake = camel_to_snake(ty);
    recv == snake || recv.ends_with(&format!("_{snake}"))
}

fn camel_to_snake(ty: &str) -> String {
    let mut out = String::with_capacity(ty.len() + 4);
    for (i, c) in ty.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// The workspace item/call model: functions plus resolved call edges.
pub struct Model {
    pub fns: Vec<FnDef>,
    /// `calls[i]` = indices of functions `fns[i]` may call.
    pub calls: Vec<BTreeSet<usize>>,
    /// Files the model was built over (workspace-relative paths).
    pub file_paths: Vec<String>,
    /// Per-file model inclusion (false for vendored / test-path files).
    pub file_in_model: Vec<bool>,
}

impl Model {
    /// Whether a file participates in the model (product code only).
    fn models_file(path: &str) -> bool {
        !path.starts_with("vendor/") && !crate::rules::is_test_path(path)
    }

    pub fn build(files: &[SourceFile], scrubbed: &[Scrubbed]) -> Model {
        let mut fns: Vec<FnDef> = Vec::new();
        let file_in_model: Vec<bool> = files.iter().map(|f| Self::models_file(&f.path)).collect();
        for (idx, s) in scrubbed.iter().enumerate() {
            if !file_in_model[idx] {
                continue;
            }
            collect_fns(idx, s, &mut fns);
        }

        // Name-resolution indexes over non-test functions.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_and_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_trait_and_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, d) in fns.iter().enumerate() {
            if d.in_test {
                continue;
            }
            by_name.entry(&d.name).or_default().push(i);
            if let Some(t) = &d.trait_name {
                by_trait_and_name
                    .entry((t.as_str(), d.name.as_str()))
                    .or_default()
                    .push(i);
            }
            match &d.self_type {
                Some(t) => {
                    methods_by_name.entry(&d.name).or_default().push(i);
                    by_type_and_name
                        .entry((t.as_str(), d.name.as_str()))
                        .or_default()
                        .push(i);
                }
                None => free_by_name.entry(&d.name).or_default().push(i),
            }
        }

        let mut calls: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); fns.len()];
        for (i, d) in fns.iter().enumerate() {
            let Some((b0, b1)) = d.body else { continue };
            let text = &scrubbed[d.file].text;
            for site in call_sites(text, b0, b1) {
                let targets: Vec<usize> = match &site {
                    CallForm::Free { name } => free_by_name.get(name.as_str()).cloned(),
                    CallForm::Qualified { qual, name } => {
                        let qual = if qual == "Self" {
                            d.self_type.clone().unwrap_or_else(|| qual.clone())
                        } else {
                            qual.clone()
                        };
                        if qual.starts_with(|c: char| c.is_ascii_uppercase()) {
                            // `Type::assoc` resolves to the type's own
                            // items; `Trait::assoc` to every impl of that
                            // trait; a generic `T::f` dispatches to any
                            // same-named fn. Anything else uppercase is a
                            // std/extern type (`Vec::new`) — no workspace
                            // target, no edge.
                            by_type_and_name
                                .get(&(qual.as_str(), name.as_str()))
                                .or_else(|| by_trait_and_name.get(&(qual.as_str(), name.as_str())))
                                .cloned()
                                .or_else(|| {
                                    is_generic_param(&qual)
                                        .then(|| by_name.get(name.as_str()).cloned())
                                        .flatten()
                                })
                        } else {
                            // `module::free_fn`: prefer fns living in a
                            // file matching the module segment.
                            free_by_name.get(name.as_str()).map(|cands| {
                                let seg_rs = format!("/{qual}.rs");
                                let seg_dir = format!("/{qual}/");
                                let narrowed: Vec<usize> = cands
                                    .iter()
                                    .copied()
                                    .filter(|&c| {
                                        let p = &files[fns[c].file].path;
                                        p.ends_with(&seg_rs) || p.contains(&seg_dir)
                                    })
                                    .collect();
                                if narrowed.is_empty() {
                                    cands.clone()
                                } else {
                                    narrowed
                                }
                            })
                        }
                    }
                    CallForm::Method {
                        name,
                        on_self,
                        recv,
                    } => {
                        let own = d
                            .self_type
                            .as_deref()
                            .and_then(|t| by_type_and_name.get(&(t, name.as_str())).cloned());
                        // A receiver named after a workspace type that
                        // defines this method pins the call to that type.
                        let hinted: Option<Vec<usize>> = recv.as_deref().and_then(|r| {
                            let matched: Vec<usize> = by_type_and_name
                                .iter()
                                .filter(|((t, n), _)| *n == name && recv_matches_type(r, t))
                                .flat_map(|(_, v)| v.iter().copied())
                                .collect();
                            (!matched.is_empty()).then_some(matched)
                        });
                        if *on_self && own.is_some() {
                            own
                        } else if hinted.is_some() {
                            hinted
                        } else if STD_SHADOWED_METHODS.contains(&name.as_str()) {
                            // An untyped `.len()`/`.get()` receiver is a
                            // std container, not a workspace call.
                            None
                        } else {
                            // Otherwise an unqualified receiver dispatches
                            // to any same-named method in the workspace.
                            methods_by_name.get(name.as_str()).cloned()
                        }
                    }
                }
                .unwrap_or_default();
                calls[i].extend(targets);
            }
        }

        Model {
            fns,
            calls,
            file_paths: files.iter().map(|f| f.path.clone()).collect(),
            file_in_model,
        }
    }

    /// BFS over call edges from `seeds`; returns every reachable function
    /// index mapped to the seed it was first discovered from (seeds map to
    /// themselves).
    pub fn reachable_from(&self, seeds: &[usize]) -> BTreeMap<usize, usize> {
        let mut origin: BTreeMap<usize, usize> = BTreeMap::new();
        let mut frontier: Vec<usize> = Vec::new();
        for &s in seeds {
            if origin.insert(s, s).is_none() {
                frontier.push(s);
            }
        }
        while let Some(f) = frontier.pop() {
            let seed = origin[&f];
            for &callee in &self.calls[f] {
                if self.fns[callee].in_test {
                    continue;
                }
                if origin.insert(callee, seed).is_none() {
                    frontier.push(callee);
                }
            }
        }
        origin
    }
}

/// Scans one file for `fn` items.
fn collect_fns(file: usize, s: &Scrubbed, out: &mut Vec<FnDef>) {
    let bytes = s.text.as_bytes();
    let items = lexer::all_item_blocks(&s.text);
    let tests = lexer::test_regions(&s.text);
    let in_tests = |pos: usize| tests.iter().any(|&(a, b)| pos >= a && pos < b);

    let mut i = 0usize;
    while let Some(pos) = lexer::find_word(bytes, b"fn", i) {
        i = pos + 2;
        let j = lexer::skip_ws(bytes, pos + 2);
        let (name, after_name) = lexer::read_word(bytes, j);
        if name.is_empty() {
            continue; // `fn(..)` pointer type
        }
        let mut k = lexer::skip_ws(bytes, after_name);
        if bytes.get(k) == Some(&b'<') {
            k = lexer::skip_angles(bytes, k);
        }
        let k = lexer::skip_ws(bytes, k);
        if bytes.get(k) != Some(&b'(') {
            continue;
        }
        let Some(params_end) = matching_paren(bytes, k) else {
            continue;
        };
        // Scan past the return type / where clause to the body `{` or a
        // terminating `;`, skipping `[u8; 32]`-style bracket groups whose
        // `;` is not a terminator.
        let mut t = params_end;
        let mut body = None;
        while t < bytes.len() {
            match bytes[t] {
                b'[' => {
                    t = matching_bracket(bytes, t).unwrap_or(bytes.len());
                }
                b'{' => {
                    let end = lexer::matching_brace(bytes, t).unwrap_or(bytes.len());
                    body = Some((t, end));
                    break;
                }
                b';' => break,
                _ => t += 1,
            }
        }
        let item = items
            .iter()
            .filter(|b| b.start <= pos && pos < b.end)
            .min_by_key(|b| b.end - b.start);
        out.push(FnDef {
            file,
            name,
            self_type: item.map(|b| b.type_name.clone()),
            trait_name: item.and_then(|b| b.trait_name.clone()),
            sig_start: pos,
            body,
            line: s.line_of(pos),
            in_test: in_tests(pos),
        });
        // `i` stays just past the `fn` keyword, so nested fns inside this
        // body are scanned as items of their own.
    }
}

/// Extracts every call site in `text[from..to]`.
pub fn call_sites(text: &str, from: usize, to: usize) -> Vec<CallForm> {
    let bytes = text.as_bytes();
    let mut sites = Vec::new();
    for pos in from..to.min(bytes.len()) {
        if bytes[pos] != b'(' {
            continue;
        }
        // The callee name must directly precede the `(`.
        if pos == 0 || !lexer::is_ident(bytes[pos - 1]) {
            continue;
        }
        let mut start = pos - 1;
        while start > 0 && lexer::is_ident(bytes[start - 1]) {
            start -= 1;
        }
        let name = &text[start..pos];
        if name.starts_with(|c: char| c.is_ascii_digit()) || NON_CALL_WORDS.contains(&name) {
            continue;
        }
        // `fn name(` is the definition, not a call.
        if preceded_by_word(bytes, start, b"fn") {
            continue;
        }
        let site = if start >= 1 && bytes[start - 1] == b'.' {
            let on_self = preceded_by_word(bytes, start - 1, b"self");
            // Capture a plain-identifier receiver (`reader.take(..)`) as a
            // type hint; `foo().bar(..)` / `x[i].bar(..)` receivers are
            // expressions and carry none.
            let recv = if on_self {
                None
            } else {
                let re = start - 1;
                let mut rs = re;
                while rs > 0 && lexer::is_ident(bytes[rs - 1]) {
                    rs -= 1;
                }
                // Only a standalone ident (not a field access / path tail).
                if rs < re
                    && (rs == 0 || (bytes[rs - 1] != b'.' && bytes[rs - 1] != b':'))
                    && !bytes[rs].is_ascii_digit()
                {
                    Some(text[rs..re].to_string())
                } else {
                    None
                }
            };
            CallForm::Method {
                name: name.to_string(),
                on_self,
                recv,
            }
        } else if start >= 2 && bytes[start - 1] == b':' && bytes[start - 2] == b':' {
            // Read the immediate qualifier segment.
            let mut qe = start - 2;
            while qe > 0 && bytes[qe - 1].is_ascii_whitespace() {
                qe -= 1;
            }
            let mut qs = qe;
            while qs > 0 && lexer::is_ident(bytes[qs - 1]) {
                qs -= 1;
            }
            if qs == qe {
                continue; // `<T as Trait>::f(` and friends — unmodeled
            }
            CallForm::Qualified {
                qual: text[qs..qe].to_string(),
                name: name.to_string(),
            }
        } else {
            CallForm::Free {
                name: name.to_string(),
            }
        };
        sites.push(site);
    }
    sites
}

/// True when the identifier ending just before `end` (skipping whitespace)
/// is exactly `word`.
fn preceded_by_word(bytes: &[u8], end: usize, word: &[u8]) -> bool {
    let mut e = end;
    while e > 0 && bytes[e - 1].is_ascii_whitespace() {
        e -= 1;
    }
    let mut s = e;
    while s > 0 && lexer::is_ident(bytes[s - 1]) {
        s -= 1;
    }
    &bytes[s..e] == word
}

fn matching_paren(bytes: &[u8], open: usize) -> Option<usize> {
    matching_delim(bytes, open, b'(', b')')
}

fn matching_bracket(bytes: &[u8], open: usize) -> Option<usize> {
    matching_delim(bytes, open, b'[', b']')
}

/// Offset one past the closer matching the opener at `open`.
fn matching_delim(bytes: &[u8], open: usize, o: u8, c: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        if b == o {
            depth += 1;
        } else if b == c {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(k + 1);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(files: &[(&str, &str)]) -> (Vec<SourceFile>, Vec<Scrubbed>) {
        let files: Vec<SourceFile> = files
            .iter()
            .map(|(p, t)| SourceFile {
                path: p.to_string(),
                text: t.to_string(),
            })
            .collect();
        let scrubbed = files.iter().map(|f| lexer::scrub(&f.text)).collect();
        (files, scrubbed)
    }

    fn idx(m: &Model, name: &str) -> usize {
        m.fns
            .iter()
            .position(|d| d.name == name)
            .unwrap_or_else(|| panic!("fn {name} not in model"))
    }

    #[test]
    fn fns_get_their_impl_and_trait_context() {
        let (files, scrubbed) = model_of(&[(
            "crates/x/src/lib.rs",
            "impl Decode for Foo { fn decode(r: &mut Reader) -> Foo { helper() } }\n\
             impl Foo { fn inherent(&self) {} }\n\
             trait Decode { fn decode(r: &mut Reader) -> Self; fn from_wire(b: &[u8]) -> Self { Self::decode(b) } }\n\
             fn helper() {}",
        )]);
        let m = Model::build(&files, &scrubbed);
        let decode = &m.fns[idx(&m, "decode")];
        assert_eq!(decode.self_type.as_deref(), Some("Foo"));
        assert_eq!(decode.trait_name.as_deref(), Some("Decode"));
        let inherent = &m.fns[idx(&m, "inherent")];
        assert_eq!(inherent.self_type.as_deref(), Some("Foo"));
        assert_eq!(inherent.trait_name, None);
        let from_wire = &m.fns[idx(&m, "from_wire")];
        assert_eq!(from_wire.trait_name.as_deref(), Some("Decode"));
        let helper = &m.fns[idx(&m, "helper")];
        assert_eq!(helper.self_type, None);
    }

    #[test]
    fn call_edges_resolve_free_assoc_and_method_forms() {
        let (files, scrubbed) = model_of(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() { helper(); Widget::make(); util::shared(); }\n\
                 fn helper() { }\n\
                 pub struct Widget;\n\
                 impl Widget { pub fn make() -> Widget { Widget } pub fn spin(&self) { self.inner() } fn inner(&self) {} }",
            ),
            ("crates/a/src/util.rs", "pub fn shared() {}"),
            ("crates/b/src/other.rs", "pub fn shared() {}"),
        ]);
        let m = Model::build(&files, &scrubbed);
        let entry = idx(&m, "entry");
        assert!(m.calls[entry].contains(&idx(&m, "helper")));
        assert!(m.calls[entry].contains(&idx(&m, "make")));
        // `util::shared` narrows to the file matching the module segment.
        let shared_in_util = m
            .fns
            .iter()
            .position(|d| d.name == "shared" && d.file == 1)
            .unwrap();
        let shared_in_other = m
            .fns
            .iter()
            .position(|d| d.name == "shared" && d.file == 2)
            .unwrap();
        assert!(m.calls[entry].contains(&shared_in_util));
        assert!(!m.calls[entry].contains(&shared_in_other));
        // `self.inner()` resolves within the impl.
        assert!(m.calls[idx(&m, "spin")].contains(&idx(&m, "inner")));
    }

    #[test]
    fn generic_assoc_calls_fan_out_to_every_impl() {
        let (files, scrubbed) = model_of(&[(
            "crates/a/src/lib.rs",
            "fn generic<T: Decode>(b: &[u8]) { T::decode(b); }\n\
             impl Decode for Foo { fn decode(b: &[u8]) {} }\n\
             impl Decode for Bar { fn decode(b: &[u8]) {} }",
        )]);
        let m = Model::build(&files, &scrubbed);
        let g = idx(&m, "generic");
        let decodes: Vec<usize> = m
            .fns
            .iter()
            .enumerate()
            .filter(|(_, d)| d.name == "decode")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(decodes.len(), 2);
        for d in decodes {
            assert!(m.calls[g].contains(&d), "generic call must reach impl {d}");
        }
    }

    #[test]
    fn reachability_walks_transitively_and_skips_tests() {
        let (files, scrubbed) = model_of(&[(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn unrelated() {}\n\
             #[cfg(test)]\nmod tests { fn c() {} }",
        )]);
        let m = Model::build(&files, &scrubbed);
        let reach = m.reachable_from(&[idx(&m, "a")]);
        assert!(reach.contains_key(&idx(&m, "b")));
        assert!(reach.contains_key(&idx(&m, "c")));
        assert!(!reach.contains_key(&idx(&m, "unrelated")));
        for &f in reach.keys() {
            assert!(!m.fns[f].in_test, "test fns are never reachable");
        }
    }

    #[test]
    fn vendored_and_test_files_are_excluded() {
        let (files, scrubbed) = model_of(&[
            ("vendor/rand/src/lib.rs", "pub fn gen() {}"),
            ("crates/a/tests/suite.rs", "fn t() {}"),
            ("crates/a/src/lib.rs", "fn live() {}"),
        ]);
        let m = Model::build(&files, &scrubbed);
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "live");
    }

    #[test]
    fn bracketed_return_types_do_not_truncate_the_body() {
        let (files, scrubbed) = model_of(&[(
            "crates/a/src/lib.rs",
            "fn digest(&self) -> [u8; 32] { finish() }\nfn finish() -> [u8; 32] { [0; 32] }",
        )]);
        let m = Model::build(&files, &scrubbed);
        let d = &m.fns[idx(&m, "digest")];
        assert!(d.body.is_some(), "array return type must not look bodyless");
        assert!(m.calls[idx(&m, "digest")].contains(&idx(&m, "finish")));
    }
}
