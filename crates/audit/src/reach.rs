//! Rule `panic`, interprocedural: panic-reachability over the call graph.
//!
//! The paper's security argument needs the client's verify procedure to be
//! *total* on adversarial input: a malicious SP controls every byte the VO
//! decoders and verifiers see, so nothing reachable from them may panic.
//! Instead of a hand-maintained file list, this pass seeds a frontier from
//! the three adversary-facing entry families —
//!
//! * every `impl Decode` item (and `Decode`'s own default methods),
//! * every `Client` method whose name starts with `verify`,
//! * every `wire::Reader` method,
//!
//! — propagates over the [`crate::model`] call graph, and flags any
//! reachable `panic!`/`unwrap`/`expect`/unchecked-indexing/non-constant
//! division site. Call resolution over-approximates, so the frontier can
//! only be larger than the truth — the safe direction for this rule.

use crate::lexer::{self, Scrubbed};
use crate::model::Model;
use crate::rules::{Finding, SourceFile, NON_INDEX_KEYWORDS};
use std::collections::{BTreeMap, BTreeSet};

/// Indices of the adversary-facing entry-point functions.
pub fn seeds(model: &Model) -> Vec<usize> {
    model
        .fns
        .iter()
        .enumerate()
        .filter(|(_, d)| !d.in_test)
        .filter(|(_, d)| {
            d.trait_name.as_deref() == Some("Decode")
                || (d.self_type.as_deref() == Some("Client") && d.name.starts_with("verify"))
                || d.self_type.as_deref() == Some("Reader")
        })
        .map(|(i, _)| i)
        .collect()
}

/// Operator/comparison traits whose impls are invoked through syntax
/// (`a - b`, `a == b`, `.sort()`) rather than visible call sites. If a
/// type participates in the frontier, its operator bodies run there too.
const OP_TRAITS: &[&str] = &[
    "Add",
    "Sub",
    "Mul",
    "Div",
    "Rem",
    "Neg",
    "Not",
    "AddAssign",
    "SubAssign",
    "MulAssign",
    "DivAssign",
    "RemAssign",
    "BitAnd",
    "BitOr",
    "BitXor",
    "Shl",
    "Shr",
    "Index",
    "IndexMut",
    "PartialEq",
    "Eq",
    "PartialOrd",
    "Ord",
    "Hash",
];

/// The panic-audit frontier: every function reachable from a seed, mapped
/// to the seed that first reached it.
///
/// Closed over operator impls: a `-` or `==` on a frontier type executes
/// its `Sub`/`PartialEq` body without any `name(..)` call site, so those
/// bodies join the frontier (as their own origins) until fixpoint.
pub fn frontier(model: &Model) -> BTreeMap<usize, usize> {
    let mut seed_set = seeds(model);
    loop {
        let reach = model.reachable_from(&seed_set);
        let types: BTreeSet<&str> = reach
            .keys()
            .filter_map(|&f| model.fns[f].self_type.as_deref())
            .collect();
        let extra: Vec<usize> = model
            .fns
            .iter()
            .enumerate()
            .filter(|(i, d)| {
                !reach.contains_key(i)
                    && !d.in_test
                    && d.trait_name
                        .as_deref()
                        .is_some_and(|t| OP_TRAITS.contains(&t))
                    && d.self_type.as_deref().is_some_and(|t| types.contains(t))
            })
            .map(|(i, _)| i)
            .collect();
        if extra.is_empty() {
            return reach;
        }
        seed_set.extend(extra);
    }
}

/// Workspace-relative paths of every file containing a frontier function.
/// The workspace integration test asserts this is a superset of the old
/// hand-maintained `PANIC_FILES` list.
pub fn frontier_files(model: &Model) -> BTreeSet<String> {
    frontier(model)
        .keys()
        .map(|&f| model.file_paths[model.fns[f].file].clone())
        .collect()
}

/// Runs the pass over every frontier function body.
pub fn check(files: &[SourceFile], scrubbed: &[Scrubbed], model: &Model, out: &mut Vec<Finding>) {
    for (&fi, &seed) in &frontier(model) {
        let d = &model.fns[fi];
        let Some((b0, b1)) = d.body else { continue };
        let s = &scrubbed[d.file];
        let f = &files[d.file];
        let origin = model.fns[seed].qual_name();
        for (pos, what) in panic_sites(&s.text, b0, b1) {
            out.push(Finding {
                path: f.path.clone(),
                line: s.line_of(pos),
                rule: "panic",
                message: format!("{what} (panic-reachable from `{origin}`)"),
            });
        }
    }
}

/// Scans `text[from..to]` for panic-capable sites; returns byte offsets
/// with a description each.
pub fn panic_sites(text: &str, from: usize, to: usize) -> Vec<(usize, String)> {
    let bytes = text.as_bytes();
    let to = to.min(bytes.len());
    let mut sites: Vec<(usize, String)> = Vec::new();

    for word in ["unwrap", "expect"] {
        let mut i = from;
        while let Some(pos) = lexer::find_word(bytes, word.as_bytes(), i) {
            if pos >= to {
                break;
            }
            i = pos + 1;
            if pos == 0 || bytes[pos - 1] != b'.' || bytes.get(pos + word.len()) != Some(&b'(') {
                continue;
            }
            sites.push((
                pos,
                format!(".{word}() may panic in a decode/verify path; return an error"),
            ));
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        let mut i = from;
        while let Some(pos) = lexer::find_word(bytes, mac.as_bytes(), i) {
            if pos >= to {
                break;
            }
            i = pos + 1;
            if bytes.get(pos + mac.len()) != Some(&b'!') {
                continue;
            }
            sites.push((pos, format!("{mac}! is forbidden in a decode/verify path")));
        }
    }
    for (pos, &byte) in bytes.iter().enumerate().take(to).skip(from) {
        if byte == b'[' && indexes_before(text, pos) {
            sites.push((
                pos,
                "unchecked indexing may panic in a decode/verify path; use .get()".to_string(),
            ));
        }
        if (byte == b'/' || byte == b'%') && division_may_panic(text, pos) {
            sites.push((
                pos,
                "division by a non-constant value may panic on zero; check the divisor or use checked_div".to_string(),
            ));
        }
    }

    sites.sort_by_key(|&(p, _)| p);
    sites
}

/// Whether the `[` at `pos` is an index expression (its base is a value,
/// not a type or keyword).
fn indexes_before(text: &str, pos: usize) -> bool {
    let bytes = text.as_bytes();
    let Some(prev) = bytes[..pos].iter().rposition(|&c| !c.is_ascii_whitespace()) else {
        return false;
    };
    let p = bytes[prev];
    if lexer::is_ident(p) {
        let mut start = prev;
        while start > 0 && lexer::is_ident(bytes[start - 1]) {
            start -= 1;
        }
        let token = &text[start..=prev];
        // A lifetime before `[` (as in `&'a [T]`) is a type, not an index
        // base; keywords like `mut`/`return` precede slice types/arrays.
        let lifetime = start > 0 && bytes[start - 1] == b'\'';
        !lifetime && !NON_INDEX_KEYWORDS.contains(&token)
    } else {
        p == b')' || p == b']'
    }
}

/// Whether the `/` or `%` at `pos` is an integer division whose divisor
/// could be zero: a binary operator (not a compound-assign source, not
/// part of `/=`-style tokens handled the same) whose right operand is
/// neither a nonzero literal, a float literal, nor an ALL_CAPS constant.
fn division_may_panic(text: &str, pos: usize) -> bool {
    let bytes = text.as_bytes();
    // Must be binary: something value-like on the left.
    let Some(prev) = bytes[..pos].iter().rposition(|&c| !c.is_ascii_whitespace()) else {
        return false;
    };
    let p = bytes[prev];
    if !(lexer::is_ident(p) || p == b')' || p == b']') {
        return false; // `&/`, `(/`, … — not a division
    }
    // `/=` and `%=` divide too; `//`, `/*` never reach here (scrubbed).
    let mut j = pos + 1;
    if bytes.get(j) == Some(&b'=') {
        j += 1;
    }
    let j = lexer::skip_ws(bytes, j);
    let (divisor, after) = lexer::read_word(bytes, j);
    if divisor.is_empty() {
        // `/ (a + b)` etc. — conservatively flag; parens hide the value.
        return true;
    }
    let b0 = divisor.as_bytes()[0];
    if b0.is_ascii_digit() {
        // Literal divisor: panics only if it is integer zero.
        let is_float = divisor.contains('.')
            || divisor.ends_with("f32")
            || divisor.ends_with("f64")
            || bytes.get(after) == Some(&b'.');
        let zero = divisor
            .trim_end_matches(|c: char| c.is_ascii_alphabetic())
            .chars()
            .all(|c| c == '0' || c == '_');
        return zero && !is_float;
    }
    // ALL_CAPS names are workspace constants, reviewed to be nonzero.
    let named_const = divisor
        .chars()
        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
    if named_const {
        return false;
    }
    // `x / y.len()`-style divisors and plain variables may be zero. Skip
    // float-typed names by suffix convention only; everything else flags.
    !(divisor.ends_with("f32") || divisor.ends_with("f64"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_sites_finds_each_family() {
        let src = "{ let a = x.unwrap(); let b = y.expect(\"\"); panic!(); v[0]; a / n; }";
        let s = crate::lexer::scrub(src);
        let msgs: Vec<String> = panic_sites(&s.text, 0, s.text.len())
            .into_iter()
            .map(|(_, m)| m)
            .collect();
        assert!(msgs.iter().any(|m| m.contains(".unwrap()")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains(".expect()")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("panic!")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("indexing")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("division")), "{msgs:?}");
    }

    #[test]
    fn division_by_nonzero_literal_or_const_is_fine() {
        for ok in [
            "{ a / 2 }",
            "{ a % 8 }",
            "{ a / LANES }",
            "{ a / 1_000 }",
            "{ x / 2.0 }",
            "{ v.len() / 32 }",
        ] {
            let s = crate::lexer::scrub(ok);
            let hits: Vec<_> = panic_sites(&s.text, 0, s.text.len())
                .into_iter()
                .filter(|(_, m)| m.contains("division"))
                .collect();
            assert!(hits.is_empty(), "{ok}: {hits:?}");
        }
        for bad in ["{ a / 0 }", "{ a % n }", "{ a /= k }"] {
            let s = crate::lexer::scrub(bad);
            let hits: Vec<_> = panic_sites(&s.text, 0, s.text.len())
                .into_iter()
                .filter(|(_, m)| m.contains("division"))
                .collect();
            assert_eq!(hits.len(), 1, "{bad}: {hits:?}");
        }
    }

    #[test]
    fn operator_impls_of_frontier_types_join_the_frontier() {
        let src = "impl Decode for Foo { fn decode(r: &mut Reader) -> Foo { Foo::helper() } }\n\
                   impl Foo { fn helper() -> Foo { Foo } }\n\
                   impl Sub for Foo { fn sub(self, rhs: Foo) -> Foo { Foo } }\n\
                   impl Sub for Unrelated { fn sub(self, rhs: Unrelated) -> Unrelated { Unrelated } }";
        let files = vec![SourceFile {
            path: "crates/x/src/lib.rs".to_string(),
            text: src.to_string(),
        }];
        let scrubbed: Vec<Scrubbed> = files.iter().map(|f| lexer::scrub(&f.text)).collect();
        let m = Model::build(&files, &scrubbed);
        let fr = frontier(&m);
        let sub_foo = m
            .fns
            .iter()
            .position(|d| d.name == "sub" && d.self_type.as_deref() == Some("Foo"))
            .unwrap();
        let sub_other = m
            .fns
            .iter()
            .position(|d| d.name == "sub" && d.self_type.as_deref() == Some("Unrelated"))
            .unwrap();
        assert!(fr.contains_key(&sub_foo), "Foo's Sub impl runs via `-`");
        assert!(!fr.contains_key(&sub_other), "Unrelated never enters");
    }

    #[test]
    fn slice_types_and_keyword_brackets_do_not_index() {
        let src = "{ let x: &mut [u8] = buf; let y: [u8; 2] = [1, 2]; return [a, b]; }";
        let s = crate::lexer::scrub(src);
        let hits: Vec<_> = panic_sites(&s.text, 0, s.text.len())
            .into_iter()
            .filter(|(_, m)| m.contains("indexing"))
            .collect();
        assert!(hits.is_empty(), "{hits:?}");
    }
}
