//! Property tests for the scrubbing lexer — the foundation every rule
//! reads through. The scanner is hand-rolled (no syn), so these pin the
//! invariants the rules depend on against the token forms that historically
//! desync lexers: raw strings with arbitrary hash fences, nested block
//! comments, lifetimes that look like unterminated char literals, and byte
//! strings.
//!
//! Invariants:
//! * scrubbing never changes the byte length;
//! * every newline survives at its exact offset (findings map to lines);
//! * code outside comments/literals survives verbatim at its offset;
//! * the *contents* of comments and literals never leak into the scrubbed
//!   text (a leaked quote or `/*` would desync every downstream rule).

use imageproof_audit::lexer::scrub;
use proptest::prelude::*;

/// Marker that only ever appears inside comment/literal payloads; if it
/// survives scrubbing, payload bytes leaked.
const SECRET: &str = "zqsecretqz";
/// Marker that only ever appears as real code; it must always survive.
const CODE: &str = "keepme_code";

/// Raw draw for one segment: `(kind, depth_or_hashes, pad_len, flag)`.
/// Decoded by [`build_segment`]; the stub proptest has no regex-string
/// strategies, so the structural choices are the generated input and the
/// text is derived deterministically from them.
type SegDraw = (u8, u8, u8, bool);

/// One rendered segment and whether its payload must be blanked.
enum Seg {
    /// Ordinary code; the `CODE` sentinel inside it must survive.
    Code(String),
    /// Comment or literal; the `SECRET` inside it must be blanked.
    Blanked(String),
}

fn pad(len: u8) -> String {
    // Harmless filler that can't open or close any delimiter.
    "ab cd ef gh ij kl"[..(len as usize % 16)].to_string()
}

fn build_segment((kind, depth, len, flag): SegDraw) -> Seg {
    match kind {
        // Ordinary code shapes.
        0 => Seg::Code(format!("let {CODE} = 1;")),
        1 => Seg::Code(format!("{CODE}(x[i], y.len());")),
        // Lifetimes start like char literals but never close with a quote;
        // a desynced lexer would swallow the rest of the file as a "char".
        2 => Seg::Code(format!("fn {CODE}<'a>(x: &'a str) -> &'a str {{ x }}")),
        // Line comment.
        3 => Seg::Blanked(format!("// {}{SECRET}\n", pad(len))),
        // Nested block comment, 1..=3 deep; the padding avoids `*` and `/`
        // so the nesting depth is exactly the generated one.
        4 => {
            let d = (depth as usize % 3) + 1;
            Seg::Blanked(format!(
                "{}{}{SECRET}{}",
                "/*".repeat(d),
                pad(len),
                "*/".repeat(d)
            ))
        }
        // String literal, optionally with escaped quotes and backslashes.
        5 => {
            let esc = if flag { "\\\"\\\\\\n" } else { "" };
            Seg::Blanked(format!("let s = \"{}{esc}{SECRET}\";", pad(len)))
        }
        // Byte string.
        6 => Seg::Blanked(format!("let b = b\"{}{SECRET}\";", pad(len))),
        // Raw string with 0..=3 hash fence; with at least one hash the
        // payload may contain a bare quote without closing the literal.
        7 => {
            let hashes = depth as usize % 4;
            let fence = "#".repeat(hashes);
            let inner_quote = if flag && hashes > 0 { "\"" } else { "" };
            Seg::Blanked(format!(
                "let r = r{fence}\"{}{inner_quote}{SECRET}\"{fence};",
                pad(len)
            ))
        }
        // Char literals, including the escaped-quote and backslash forms.
        _ => Seg::Blanked(
            match flag {
                true => "let c = '\\'';",
                false => "let c = '\\\\';",
            }
            .to_string(),
        ),
    }
}

fn render(draws: &[SegDraw]) -> (String, Vec<Seg>) {
    let segs: Vec<Seg> = draws.iter().map(|&d| build_segment(d)).collect();
    let mut src = String::new();
    for s in &segs {
        match s {
            Seg::Code(t) | Seg::Blanked(t) => src.push_str(t),
        }
        src.push('\n');
    }
    (src, segs)
}

fn draws() -> impl Strategy<Value = Vec<SegDraw>> {
    prop::collection::vec((0u8..9, 0u8..4, 0u8..16, any::<bool>()), 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        max_shrink_iters: 0,
    })]

    #[test]
    fn scrubbing_preserves_length_and_newlines(ds in draws()) {
        let (src, _) = render(&ds);
        let s = scrub(&src);
        prop_assert_eq!(s.text.len(), src.len(), "length changed");
        let src_newlines: Vec<usize> =
            src.bytes().enumerate().filter(|&(_, b)| b == b'\n').map(|(i, _)| i).collect();
        let out_newlines: Vec<usize> =
            s.text.bytes().enumerate().filter(|&(_, b)| b == b'\n').map(|(i, _)| i).collect();
        prop_assert_eq!(src_newlines, out_newlines, "newline offsets moved");
    }

    #[test]
    fn code_survives_and_payloads_are_blanked(ds in draws()) {
        let (src, segs) = render(&ds);
        let s = scrub(&src);
        // Literal/comment contents must never leak.
        prop_assert!(
            !s.text.contains(SECRET),
            "payload leaked into scrubbed text:\n{}",
            s.text
        );
        // Real code must survive byte-for-byte at its original offset.
        let code_count = segs.iter().filter(|seg| matches!(seg, Seg::Code(_))).count();
        prop_assert_eq!(
            s.text.matches(CODE).count(),
            code_count,
            "code sentinel count changed in:\n{}",
            s.text
        );
        for (i, w) in src.as_bytes().windows(CODE.len()).enumerate() {
            if w == CODE.as_bytes() {
                prop_assert_eq!(
                    &s.text.as_bytes()[i..i + CODE.len()],
                    CODE.as_bytes(),
                    "code sentinel moved or was blanked"
                );
            }
        }
    }

    #[test]
    fn line_of_matches_newline_count(ds in draws()) {
        let (src, _) = render(&ds);
        let s = scrub(&src);
        // Every byte's reported line equals 1 + newlines before it.
        let mut line = 1usize;
        for (i, b) in src.bytes().enumerate() {
            prop_assert_eq!(s.line_of(i), line, "offset {}", i);
            if b == b'\n' {
                line += 1;
            }
        }
    }
}
