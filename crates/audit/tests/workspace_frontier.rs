//! Integration checks over the real workspace tree.
//!
//! * The auto-discovered panic frontier must cover every file the old
//!   hand-maintained `PANIC_FILES` list named — deleting the list must
//!   never silently shrink coverage.
//! * The tree itself must be clean: `run_audit` over the checked-in
//!   sources returns zero findings (the same property ci.sh gates on).

use imageproof_audit::lexer::scrub;
use imageproof_audit::model::Model;
use imageproof_audit::{collect_workspace, reach, run_audit};
use std::path::Path;

/// The files the deleted `PANIC_FILES` allowlist used to name. The
/// call-graph frontier must rediscover every one of them on its own.
const OLD_PANIC_FILES: &[&str] = &[
    "crates/crypto/src/wire.rs",
    "crates/invindex/src/verify.rs",
    "crates/invindex/src/vo.rs",
    "crates/invindex/src/bounds.rs",
    "crates/mrkd/src/verify.rs",
    "crates/mrkd/src/vo.rs",
    "crates/core/src/client.rs",
    "crates/core/src/shard.rs",
];

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn frontier_covers_the_old_hand_maintained_list() {
    let (sources, _) = collect_workspace(workspace_root()).expect("walk workspace");
    let scrubbed: Vec<_> = sources.iter().map(|f| scrub(&f.text)).collect();
    let model = Model::build(&sources, &scrubbed);
    let files = reach::frontier_files(&model);
    for old in OLD_PANIC_FILES {
        assert!(
            files.contains(*old),
            "auto-discovered frontier lost {old}; it covers: {files:#?}"
        );
    }
    // The frontier should be a *strict* superset: the whole point of the
    // call-graph pass is reaching code the hand list never named (kernels,
    // cuckoo filters, the mrkd traversal, ...).
    assert!(
        files.len() > OLD_PANIC_FILES.len(),
        "frontier no larger than the old list: {files:#?}"
    );
}

#[test]
fn checked_in_tree_is_clean() {
    let findings = run_audit(workspace_root()).expect("audit workspace");
    assert!(
        findings.is_empty(),
        "the checked-in tree must audit clean:\n{}",
        findings
            .iter()
            .map(|f| format!("{}:{} {} {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
