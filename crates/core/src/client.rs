//! The client: result verification (paper §V-C).
//!
//! Four steps, mirroring the paper: (i) verify the BoVW encoding against
//! the MRKD VOs and the owner's root signature; (ii) rebuild `B_Q` from the
//! verified assignments; (iii) verify the inverted-index termination
//! conditions against the authenticated list digests; (iv) verify each
//! returned image's signature over its raw bytes.
//!
//! Steps (i)–(iii) are shared with sharded verification (`shard.rs`),
//! which runs them once per sub-VO against a manifest-committed root
//! instead of the owner's root signature.

use crate::owner::{image_signing_message, root_signing_message, PublishedParams};
use crate::scheme::{BovwVoVariant, InvVoVariant, QueryVo};
use crate::shard::{RootExpectation, SubVerify};
use crate::sp::QueryResponse;
use imageproof_akm::SparseBovw;
use imageproof_crypto::Signature;
use imageproof_invindex::grouped::verify_grouped_topk;
use imageproof_invindex::{verify_topk, BoundsMode, InvVerifyError};
use imageproof_mrkd::{verify_bovw, verify_bovw_baseline, VerifyError as BovwError};
use imageproof_obs::{micros, Profiler, QueryProfile};
use imageproof_vision::ImageId;

/// Why the client rejected a response.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The BoVW-step VO failed verification.
    Bovw(BovwError),
    /// The reconstructed root does not match the owner's signature (or, for
    /// a shard, the manifest-committed root).
    RootSignatureInvalid,
    /// The VO variants do not match the published scheme.
    SchemeMismatch,
    /// The inverted-index VO failed verification.
    Inv(InvVerifyError),
    /// Result count does not match the signature count.
    ResultShapeMismatch,
    /// An image signature failed (case-3 attack of §V-D).
    ImageSignatureInvalid { id: ImageId },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Bovw(e) => write!(f, "BoVW verification failed: {e}"),
            ClientError::RootSignatureInvalid => write!(f, "root signature invalid"),
            ClientError::SchemeMismatch => write!(f, "VO variant does not match scheme"),
            ClientError::Inv(e) => write!(f, "inverted-index verification failed: {e}"),
            ClientError::ResultShapeMismatch => write!(f, "results and signatures disagree"),
            ClientError::ImageSignatureInvalid { id } => {
                write!(f, "signature of image {id} invalid")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<BovwError> for ClientError {
    fn from(e: BovwError) -> Self {
        ClientError::Bovw(e)
    }
}

impl From<InvVerifyError> for ClientError {
    fn from(e: InvVerifyError) -> Self {
        ClientError::Inv(e)
    }
}

/// A fully verified query result.
#[derive(Debug, Clone)]
pub struct VerifiedResult {
    /// `(image id, verified similarity score)`, in the SP's claimed order.
    pub topk: Vec<(ImageId, f32)>,
    /// The verified BoVW assignment of each query feature vector.
    pub assignments: Vec<u32>,
    /// Client-side cost breakdown.
    pub stats: ClientStats,
}

/// Client-side verification cost breakdown.
///
/// Timings are views over the verification's observability spans: with
/// recording disabled ([`imageproof_obs::set_enabled`]`(false)`) they read
/// 0 while the accept/reject outcome stays identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    pub bovw_seconds: f64,
    pub inv_seconds: f64,
    pub signature_seconds: f64,
}

impl ClientStats {
    pub fn total_seconds(&self) -> f64 {
        self.bovw_seconds + self.inv_seconds + self.signature_seconds
    }
}

/// The verifying client.
pub struct Client {
    pub(crate) params: PublishedParams,
}

impl Client {
    pub fn new(params: PublishedParams) -> Client {
        Client { params }
    }

    /// Steps (i)–(iii) for one VO: verify the BoVW encoding, check the
    /// reconstructed MRKD root against `root`, check the result shape, and
    /// verify the inverted-index termination conditions for `claimed`.
    ///
    /// The monolith path calls this once per response with
    /// [`RootExpectation::OwnerSignature`]; the sharded path calls it once
    /// per sub-VO with the shard's manifest-committed root.
    ///
    /// Timing comes from `prof` spans (`bovw`, `inv`); on an error return
    /// the open span is discarded along with the caller's profiler.
    pub(crate) fn verify_query_vo(
        &self,
        features: &[Vec<f32>],
        k: usize,
        vo: &QueryVo,
        claimed: &[ImageId],
        root: RootExpectation<'_>,
        prof: &mut Profiler,
    ) -> Result<SubVerify, ClientError> {
        self.verify_query_vo_parts(
            features,
            k,
            &vo.bovw,
            &vo.inv,
            vo.signatures.len(),
            claimed,
            root,
            prof,
        )
    }

    /// [`Client::verify_query_vo`] over a VO's parts, for callers whose
    /// wire format carries them separately (trimmed sharded sub-VOs
    /// resolve their BoVW VO out of a response-level shared section, so no
    /// contiguous [`QueryVo`] exists to borrow).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn verify_query_vo_parts(
        &self,
        features: &[Vec<f32>],
        k: usize,
        bovw: &BovwVoVariant,
        inv: &InvVoVariant,
        n_signatures: usize,
        claimed: &[ImageId],
        root: RootExpectation<'_>,
        prof: &mut Profiler,
    ) -> Result<SubVerify, ClientError> {
        let scheme = self.params.scheme;

        // (i) + (ii): BoVW encoding.
        prof.enter("bovw");
        prof.add("features", features.len() as u64);
        let verified_bovw = match (bovw, scheme.shares_nodes()) {
            (BovwVoVariant::Shared(v), true) => verify_bovw(v, features, scheme.candidate_mode())?,
            (BovwVoVariant::PerQuery(v), false) => verify_bovw_baseline(v, features)?,
            _ => return Err(ClientError::SchemeMismatch),
        };
        match root {
            RootExpectation::OwnerSignature => {
                if !self.params.public_key.verify(
                    &root_signing_message(&verified_bovw.combined_root),
                    &self.params.root_signature,
                ) {
                    return Err(ClientError::RootSignatureInvalid);
                }
            }
            RootExpectation::Committed(expected) => {
                if verified_bovw.combined_root != *expected {
                    return Err(ClientError::RootSignatureInvalid);
                }
            }
        }
        let query_bovw = SparseBovw::from_counts(verified_bovw.assignments.iter().map(|&c| (c, 1)));
        let bovw_seconds = prof.exit();

        // (iii): inverted-index search.
        prof.enter("inv");
        if claimed.len() != n_signatures {
            return Err(ClientError::ResultShapeMismatch);
        }
        let digests = &verified_bovw.inv_digests;
        let verified_topk = match (inv, scheme.grouped_index()) {
            (InvVoVariant::Plain(v), false) => {
                let mode = if scheme.uses_filters() {
                    BoundsMode::CuckooFiltered
                } else {
                    BoundsMode::MaxBound
                };
                verify_topk(v, &query_bovw, digests, claimed, k, mode)?
            }
            (InvVoVariant::Grouped(v), true) => {
                verify_grouped_topk(v, &query_bovw, digests, claimed, k)?
            }
            _ => return Err(ClientError::SchemeMismatch),
        };
        prof.add("claimed", claimed.len() as u64);
        let inv_seconds = prof.exit();

        Ok(SubVerify {
            topk: verified_topk.topk,
            assignments: verified_bovw.assignments,
            bovw_seconds,
            inv_seconds,
        })
    }

    /// Step (iv): verifies the winners' signatures over their raw payloads
    /// — batch-verified (one shared doubling chain); on failure, falls back
    /// to individual checks to name the forged image.
    pub(crate) fn check_image_signatures(
        &self,
        items: &[(ImageId, &[u8], Signature)],
    ) -> Result<(), ClientError> {
        let messages: Vec<[u8; 32]> = items
            .iter()
            .map(|&(id, data, _)| image_signing_message(id, data))
            .collect();
        let batch: Vec<(&[u8], imageproof_crypto::PublicKey, Signature)> = messages
            .iter()
            .zip(items)
            .map(|(m, &(_, _, s))| (m.as_slice(), self.params.public_key, s))
            .collect();
        if imageproof_crypto::verify_batch(&batch) {
            return Ok(());
        }
        for (&(id, _, s), msg) in items.iter().zip(&messages) {
            if !self.params.public_key.verify(msg, &s) {
                return Err(ClientError::ImageSignatureInvalid { id });
            }
        }
        // The batch equation failed but every member verifies — can only
        // happen with astronomically small probability or a bug.
        Err(ClientError::ImageSignatureInvalid {
            id: items.first().map(|&(id, _, _)| id).unwrap_or(0),
        })
    }

    /// Verifies a response to `query(features, k)` end to end (§V-C).
    pub fn verify(
        &self,
        features: &[Vec<f32>],
        k: usize,
        response: &QueryResponse,
    ) -> Result<VerifiedResult, ClientError> {
        self.verify_profiled(features, k, response)
            .map(|(verified, _)| verified)
    }

    /// [`Client::verify`] that additionally returns the verification's
    /// structured span profile (phases `bovw`, `inv`, `signatures`). The
    /// profile is pure observation: accept/reject is identical whether or
    /// not recording is enabled.
    pub fn verify_profiled(
        &self,
        features: &[Vec<f32>],
        k: usize,
        response: &QueryResponse,
    ) -> Result<(VerifiedResult, QueryProfile), ClientError> {
        let mut prof = Profiler::new("client.verify");
        let claimed: Vec<ImageId> = response.results.iter().map(|r| r.id).collect();
        let sub = self.verify_query_vo(
            features,
            k,
            &response.vo,
            &claimed,
            RootExpectation::OwnerSignature,
            &mut prof,
        )?;

        // (iv): image signatures.
        prof.enter("signatures");
        let items: Vec<(ImageId, &[u8], Signature)> = response
            .results
            .iter()
            .zip(&response.vo.signatures)
            .map(|(r, &s)| (r.id, r.data.as_slice(), s))
            .collect();
        prof.add("signatures", items.len() as u64);
        self.check_image_signatures(&items)?;
        let signature_seconds = prof.exit();

        if prof.is_recording() {
            self.record_verify(sub.bovw_seconds, sub.inv_seconds, signature_seconds);
        }
        Ok((
            VerifiedResult {
                topk: sub.topk,
                assignments: sub.assignments,
                stats: ClientStats {
                    bovw_seconds: sub.bovw_seconds,
                    inv_seconds: sub.inv_seconds,
                    signature_seconds,
                },
            },
            prof.finish(),
        ))
    }

    /// Records one accepted verification into the global registry.
    fn record_verify(&self, bovw_seconds: f64, inv_seconds: f64, signature_seconds: f64) {
        let reg = imageproof_obs::global();
        let slug = self.params.scheme.slug();
        reg.counter("imageproof_client_verifies_total", &[("scheme", slug)])
            .inc();
        for (phase, seconds) in [
            ("bovw", bovw_seconds),
            ("inv", inv_seconds),
            ("signatures", signature_seconds),
        ] {
            reg.histogram(
                "imageproof_client_phase_micros",
                &[("scheme", slug), ("phase", phase)],
            )
            .record(micros(seconds));
        }
    }
}
