//! The client: result verification (paper §V-C).
//!
//! Four steps, mirroring the paper: (i) verify the BoVW encoding against
//! the MRKD VOs and the owner's root signature; (ii) rebuild `B_Q` from the
//! verified assignments; (iii) verify the inverted-index termination
//! conditions against the authenticated list digests; (iv) verify each
//! returned image's signature over its raw bytes.

use crate::owner::{image_signing_message, root_signing_message, PublishedParams};
use crate::scheme::{BovwVoVariant, InvVoVariant};
use crate::sp::QueryResponse;
use imageproof_akm::SparseBovw;
use imageproof_invindex::grouped::verify_grouped_topk;
use imageproof_invindex::{verify_topk, BoundsMode, InvVerifyError};
use imageproof_mrkd::{verify_bovw, verify_bovw_baseline, VerifyError as BovwError};
use imageproof_vision::ImageId;
use std::time::Instant;

/// Why the client rejected a response.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The BoVW-step VO failed verification.
    Bovw(BovwError),
    /// The reconstructed root does not match the owner's signature.
    RootSignatureInvalid,
    /// The VO variants do not match the published scheme.
    SchemeMismatch,
    /// The inverted-index VO failed verification.
    Inv(InvVerifyError),
    /// Result count does not match the signature count.
    ResultShapeMismatch,
    /// An image signature failed (case-3 attack of §V-D).
    ImageSignatureInvalid { id: ImageId },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Bovw(e) => write!(f, "BoVW verification failed: {e}"),
            ClientError::RootSignatureInvalid => write!(f, "root signature invalid"),
            ClientError::SchemeMismatch => write!(f, "VO variant does not match scheme"),
            ClientError::Inv(e) => write!(f, "inverted-index verification failed: {e}"),
            ClientError::ResultShapeMismatch => write!(f, "results and signatures disagree"),
            ClientError::ImageSignatureInvalid { id } => {
                write!(f, "signature of image {id} invalid")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<BovwError> for ClientError {
    fn from(e: BovwError) -> Self {
        ClientError::Bovw(e)
    }
}

impl From<InvVerifyError> for ClientError {
    fn from(e: InvVerifyError) -> Self {
        ClientError::Inv(e)
    }
}

/// A fully verified query result.
#[derive(Debug, Clone)]
pub struct VerifiedResult {
    /// `(image id, verified similarity score)`, in the SP's claimed order.
    pub topk: Vec<(ImageId, f32)>,
    /// The verified BoVW assignment of each query feature vector.
    pub assignments: Vec<u32>,
    /// Client-side cost breakdown.
    pub stats: ClientStats,
}

/// Client-side verification cost breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientStats {
    pub bovw_seconds: f64,
    pub inv_seconds: f64,
    pub signature_seconds: f64,
}

impl ClientStats {
    pub fn total_seconds(&self) -> f64 {
        self.bovw_seconds + self.inv_seconds + self.signature_seconds
    }
}

/// The verifying client.
pub struct Client {
    params: PublishedParams,
}

impl Client {
    pub fn new(params: PublishedParams) -> Client {
        Client { params }
    }

    /// Verifies a response to `query(features, k)` end to end (§V-C).
    pub fn verify(
        &self,
        features: &[Vec<f32>],
        k: usize,
        response: &QueryResponse,
    ) -> Result<VerifiedResult, ClientError> {
        let scheme = self.params.scheme;
        let mut stats = ClientStats::default();

        // (i) + (ii): BoVW encoding.
        let t0 = Instant::now();
        let verified_bovw = match (&response.vo.bovw, scheme.shares_nodes()) {
            (BovwVoVariant::Shared(vo), true) => {
                verify_bovw(vo, features, scheme.candidate_mode())?
            }
            (BovwVoVariant::PerQuery(vo), false) => verify_bovw_baseline(vo, features)?,
            _ => return Err(ClientError::SchemeMismatch),
        };
        if !self.params.public_key.verify(
            &root_signing_message(&verified_bovw.combined_root),
            &self.params.root_signature,
        ) {
            return Err(ClientError::RootSignatureInvalid);
        }
        let query_bovw = SparseBovw::from_counts(verified_bovw.assignments.iter().map(|&c| (c, 1)));
        stats.bovw_seconds = t0.elapsed().as_secs_f64();

        // (iii): inverted-index search.
        let t1 = Instant::now();
        if response.results.len() != response.vo.signatures.len() {
            return Err(ClientError::ResultShapeMismatch);
        }
        let claimed: Vec<u64> = response.results.iter().map(|r| r.id).collect();
        let digests = &verified_bovw.inv_digests;
        let verified_topk = match (&response.vo.inv, scheme.grouped_index()) {
            (InvVoVariant::Plain(vo), false) => {
                let mode = if scheme.uses_filters() {
                    BoundsMode::CuckooFiltered
                } else {
                    BoundsMode::MaxBound
                };
                verify_topk(vo, &query_bovw, digests, &claimed, k, mode)?
            }
            (InvVoVariant::Grouped(vo), true) => {
                verify_grouped_topk(vo, &query_bovw, digests, &claimed, k)?
            }
            _ => return Err(ClientError::SchemeMismatch),
        };
        stats.inv_seconds = t1.elapsed().as_secs_f64();

        // (iv): image signatures — batch-verified (one shared doubling
        // chain); on failure, fall back to individual checks to name the
        // forged image.
        let t2 = Instant::now();
        let messages: Vec<[u8; 32]> = response
            .results
            .iter()
            .map(|r| image_signing_message(r.id, &r.data))
            .collect();
        let batch: Vec<(
            &[u8],
            imageproof_crypto::PublicKey,
            imageproof_crypto::Signature,
        )> = messages
            .iter()
            .zip(&response.vo.signatures)
            .map(|(m, s)| (m.as_slice(), self.params.public_key, *s))
            .collect();
        if !imageproof_crypto::verify_batch(&batch) {
            for (result, (msg, signature)) in response
                .results
                .iter()
                .zip(messages.iter().zip(&response.vo.signatures))
            {
                if !self.params.public_key.verify(msg, signature) {
                    return Err(ClientError::ImageSignatureInvalid { id: result.id });
                }
            }
            // The batch equation failed but every member verifies — can
            // only happen with astronomically small probability or a bug.
            return Err(ClientError::ImageSignatureInvalid {
                id: response.results.first().map(|r| r.id).unwrap_or(0),
            });
        }
        stats.signature_seconds = t2.elapsed().as_secs_f64();

        Ok(VerifiedResult {
            topk: verified_topk.topk,
            assignments: verified_bovw.assignments,
            stats,
        })
    }
}
