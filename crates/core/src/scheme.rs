//! Scheme variants evaluated in the paper's experiments (§VII-A) and the
//! shared protocol types.

use imageproof_crypto::wire::{Decode, Encode, Reader, WireError, Writer};
use imageproof_crypto::Signature;
use imageproof_invindex::grouped::GroupedInvVo;
use imageproof_invindex::InvVo;
use imageproof_mrkd::{BaselineBovwVo, BovwVo, CandidateMode};
use imageproof_parallel::Concurrency;

/// The four authentication schemes of §VII.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Scheme {
    /// No-sharing `MRKDSearch` + the maximal-bound inverted search of
    /// Pang & Mouratidis \[15\].
    Baseline,
    /// The ImageProof scheme of §V: shared MRKD traversal + cuckoo-filtered
    /// inverted search.
    ImageProof,
    /// ImageProof + the §VI-A BoVW candidate-compression optimization
    /// ("Optimized (BoVW)" in §VII-D).
    OptimizedBovw,
    /// ImageProof + both optimizations: compressed candidates and the
    /// frequency-grouped inverted index ("Optimized (Both)").
    OptimizedBoth,
}

impl Scheme {
    /// All four, in the paper's presentation order.
    pub const ALL: [Scheme; 4] = [
        Scheme::Baseline,
        Scheme::ImageProof,
        Scheme::OptimizedBovw,
        Scheme::OptimizedBoth,
    ];

    /// How cluster centroids are committed in MRKD leaves.
    pub fn candidate_mode(self) -> CandidateMode {
        match self {
            Scheme::Baseline | Scheme::ImageProof => CandidateMode::Full,
            Scheme::OptimizedBovw | Scheme::OptimizedBoth => CandidateMode::Compressed,
        }
    }

    /// Whether MRKD traversals share nodes across query vectors.
    pub fn shares_nodes(self) -> bool {
        !matches!(self, Scheme::Baseline)
    }

    /// Whether the inverted search uses cuckoo-filtered bounds.
    pub fn uses_filters(self) -> bool {
        !matches!(self, Scheme::Baseline)
    }

    /// Whether the inverted index is frequency-grouped.
    pub fn grouped_index(self) -> bool {
        matches!(self, Scheme::OptimizedBoth)
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Baseline => "Baseline",
            Scheme::ImageProof => "ImageProof",
            Scheme::OptimizedBovw => "Optimized (BoVW)",
            Scheme::OptimizedBoth => "Optimized (Both)",
        }
    }

    /// Machine-friendly label used as the `scheme` value of observability
    /// metrics (lowercase, no spaces — stable across releases).
    pub fn slug(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::ImageProof => "imageproof",
            Scheme::OptimizedBovw => "optimized-bovw",
            Scheme::OptimizedBoth => "optimized-both",
        }
    }
}

/// Everything that shapes one outsourced system: the authentication scheme
/// plus the execution knobs the owner and SP run under.
///
/// Concurrency never changes *what* is computed — VOs, digests, and
/// signatures are bit-identical for every thread count (enforced by the
/// `parallel_equivalence` test suite) — only how many workers compute it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemConfig {
    pub scheme: Scheme,
    pub concurrency: Concurrency,
}

impl SystemConfig {
    /// Serial execution of `scheme` — the configuration every pre-existing
    /// single-argument API maps to.
    pub fn new(scheme: Scheme) -> SystemConfig {
        SystemConfig {
            scheme,
            concurrency: Concurrency::serial(),
        }
    }

    /// Sets the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> SystemConfig {
        self.concurrency = Concurrency::new(threads);
        self
    }
}

/// BoVW-step VO, shared or per-query depending on the scheme.
#[derive(Clone, Debug, PartialEq)]
pub enum BovwVoVariant {
    Shared(BovwVo),
    PerQuery(BaselineBovwVo),
}

/// Inverted-index VO, plain or frequency-grouped.
#[derive(Clone, Debug, PartialEq)]
pub enum InvVoVariant {
    Plain(InvVo),
    Grouped(GroupedInvVo),
}

/// The complete VO of one top-k query (Alg. 5 line 7): the BoVW VOs, the
/// inverted-index VO, and the winners' image signatures.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryVo {
    pub bovw: BovwVoVariant,
    pub inv: InvVoVariant,
    pub signatures: Vec<Signature>,
}

impl Encode for BovwVoVariant {
    fn encode(&self, w: &mut Writer) {
        match self {
            BovwVoVariant::Shared(vo) => {
                w.u8(0);
                vo.encode(w);
            }
            BovwVoVariant::PerQuery(vo) => {
                w.u8(1);
                vo.encode(w);
            }
        }
    }
}

impl Decode for BovwVoVariant {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(BovwVoVariant::Shared(BovwVo::decode(r)?)),
            1 => Ok(BovwVoVariant::PerQuery(BaselineBovwVo::decode(r)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl Encode for InvVoVariant {
    fn encode(&self, w: &mut Writer) {
        match self {
            InvVoVariant::Plain(vo) => {
                w.u8(0);
                vo.encode(w);
            }
            InvVoVariant::Grouped(vo) => {
                w.u8(1);
                vo.encode(w);
            }
        }
    }
}

impl Decode for InvVoVariant {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(InvVoVariant::Plain(InvVo::decode(r)?)),
            1 => Ok(InvVoVariant::Grouped(GroupedInvVo::decode(r)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl Encode for QueryVo {
    fn encode(&self, w: &mut Writer) {
        self.bovw.encode(w);
        self.inv.encode(w);
        w.seq_len(self.signatures.len());
        for s in &self.signatures {
            w.bytes(&s.0);
        }
    }
}

impl Decode for QueryVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bovw = BovwVoVariant::decode(r)?;
        let inv = InvVoVariant::decode(r)?;
        let n = r.seq_len()?;
        let mut signatures = Vec::with_capacity(n);
        for _ in 0..n {
            let bytes = r.bytes()?;
            let arr: [u8; 64] = bytes.try_into().map_err(|_| WireError::InvalidTag(0xFF))?;
            signatures.push(Signature::from_bytes(arr));
        }
        Ok(QueryVo {
            bovw,
            inv,
            signatures,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_properties_match_the_paper() {
        assert!(!Scheme::Baseline.shares_nodes());
        assert!(!Scheme::Baseline.uses_filters());
        assert!(Scheme::ImageProof.shares_nodes());
        assert!(Scheme::ImageProof.uses_filters());
        assert_eq!(Scheme::ImageProof.candidate_mode(), CandidateMode::Full);
        assert_eq!(
            Scheme::OptimizedBovw.candidate_mode(),
            CandidateMode::Compressed
        );
        assert!(!Scheme::OptimizedBovw.grouped_index());
        assert!(Scheme::OptimizedBoth.grouped_index());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            Scheme::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
