//! Sharded serving: the owner partitions the corpus across independent
//! per-shard ADS sets, commits every shard root in one signed manifest,
//! and the client verifies a cross-shard top-k merge — the §VI bound
//! machinery lifted from "remaining postings" to "remaining shards".
//!
//! Trust model: the SP controls *all* shards, so nothing here assumes
//! honest placement or honest merging. Soundness rests on three facts:
//!
//! 1. Every per-shard sub-VO is a complete monolith-style VO verified
//!    against that shard's root, which the signed [`ShardManifest`]
//!    commits to (a Merkle tree over `h(shard_id ‖ root)` leaves, one
//!    signature for the whole deployment).
//! 2. A *contributing* shard proves its full local top-k, so any image
//!    the SP hid in that shard scores no higher than the shard's k-th
//!    result, which itself lost (or tied into) the global merge.
//! 3. Every *excluded* shard ships a k=1 bound proof of its true best
//!    candidate; the client checks that candidate loses the global merge
//!    order `(score desc, id asc)` against the k-th winner, so the rest
//!    of the shard — provably no better — cannot displace any winner.
//!
//! Scores are shard-invariant: list weights come from the owner's global
//! impact model and an image's postings live only in its own shard, so a
//! shard computes bit-identical scores to the monolith and the merged
//! top-k equals the monolith top-k exactly, ties included (proven by the
//! `shard_equivalence` suite).

use crate::client::{Client, ClientError};
use crate::owner::image_signing_message;
use crate::scheme::QueryVo;
use crate::sp::ImageResult;
use imageproof_crypto::wire::{Decode, Encode, Reader, WireError, Writer};
use imageproof_crypto::{Digest, MerkleTree, PublicKey, Signature};
use imageproof_obs::{Profiler, QueryProfile};
use imageproof_vision::ImageId;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

/// The protocol's deterministic partition function: image `id` lives in
/// shard `id mod shard_count`. Fixed protocol-wide so the client can check
/// result placement without any extra proof material.
pub fn shard_of(id: ImageId, shard_count: usize) -> usize {
    if shard_count == 0 {
        0
    } else {
        (id % shard_count as u64) as usize
    }
}

/// Manifest leaf: `h("IPSHLEAF" ‖ shard_id ‖ root)` — binds each root to
/// its position, so a shard's sub-VO can never be replayed under another
/// shard id.
pub fn manifest_leaf_digest(shard_id: u32, root: &Digest) -> Digest {
    Digest::builder()
        .bytes(b"IPSHLEAF")
        .u32(shard_id)
        .digest(root)
        .finish()
}

/// Merkle root over the per-shard leaf digests; `None` for zero shards (an
/// empty deployment commits to nothing and can never verify).
pub fn manifest_root(shard_roots: &[Digest]) -> Option<Digest> {
    if shard_roots.is_empty() {
        return None;
    }
    let leaves: Vec<Digest> = shard_roots
        .iter()
        .enumerate()
        .map(|(i, r)| manifest_leaf_digest(i as u32, r))
        .collect();
    Some(MerkleTree::from_leaf_digests(leaves).root())
}

/// The message the manifest signature covers: a domain tag (distinct from
/// the monolith's `IPROOF.1` root messages and from image messages), the
/// manifest Merkle root, and the shard count — so a manifest signed for a
/// smaller deployment can never be replayed against a larger one.
pub fn manifest_signing_message(root: &Digest, shard_count: u32) -> Vec<u8> {
    let mut msg = Vec::with_capacity(44);
    msg.extend_from_slice(b"IPROOF.2");
    msg.extend_from_slice(&root.0);
    msg.extend_from_slice(&shard_count.to_le_bytes());
    msg
}

/// The owner's signed commitment to one sharded deployment.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardManifest {
    /// Combined MRKD root digest of each shard, indexed by shard id.
    pub shard_roots: Vec<Digest>,
    /// Signature over [`manifest_signing_message`].
    pub signature: Signature,
}

impl ShardManifest {
    pub fn shard_count(&self) -> usize {
        self.shard_roots.len()
    }

    /// The committed root of one shard.
    pub fn root_of(&self, shard_id: u32) -> Option<&Digest> {
        self.shard_roots.get(shard_id as usize)
    }

    /// Recomputes the manifest root and checks the owner's signature.
    pub fn verify(&self, public_key: &PublicKey) -> bool {
        match manifest_root(&self.shard_roots) {
            Some(root) => {
                let msg = manifest_signing_message(&root, self.shard_roots.len() as u32);
                public_key.verify(&msg, &self.signature)
            }
            None => false,
        }
    }
}

fn decode_signature(r: &mut Reader<'_>) -> Result<Signature, WireError> {
    let bytes = r.bytes()?;
    let arr: [u8; 64] = bytes.try_into().map_err(|_| WireError::InvalidTag(0xFF))?;
    Ok(Signature::from_bytes(arr))
}

impl Encode for ShardManifest {
    fn encode(&self, w: &mut Writer) {
        w.seq_len(self.shard_roots.len());
        for root in &self.shard_roots {
            w.digest(root);
        }
        w.bytes(&self.signature.0);
    }
}

impl Decode for ShardManifest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len()?;
        let mut shard_roots = Vec::with_capacity(n);
        for _ in 0..n {
            shard_roots.push(r.digest()?);
        }
        let signature = decode_signature(r)?;
        Ok(ShardManifest {
            shard_roots,
            signature,
        })
    }
}

/// One shard's sub-VO: the claimed local result ids plus the monolith-style
/// VO proving them against the shard's committed root.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardVo {
    pub shard_id: u32,
    /// Local claimed winners — the full local top-k for a contributing
    /// shard, at most one id for an excluded shard's bound proof.
    pub claimed: Vec<ImageId>,
    pub vo: QueryVo,
}

impl Encode for ShardVo {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.shard_id);
        w.seq_len(self.claimed.len());
        for &id in &self.claimed {
            w.u64(id);
        }
        self.vo.encode(w);
    }
}

impl Decode for ShardVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let shard_id = r.u32()?;
        let n = r.seq_len()?;
        let mut claimed = Vec::with_capacity(n);
        for _ in 0..n {
            claimed.push(r.u64()?);
        }
        let vo = QueryVo::decode(r)?;
        Ok(ShardVo {
            shard_id,
            claimed,
            vo,
        })
    }
}

/// The complete VO of one sharded top-k query.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedVo {
    /// Shard count the SP served under; must match the manifest.
    pub shard_count: u32,
    /// Shards owning at least one global winner, with full-k sub-VOs.
    pub contributing: Vec<ShardVo>,
    /// Every remaining shard, each with a k=1 bound proof.
    pub excluded: Vec<ShardVo>,
}

impl Encode for ShardedVo {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.shard_count);
        w.seq_len(self.contributing.len());
        for sub in &self.contributing {
            sub.encode(w);
        }
        w.seq_len(self.excluded.len());
        for sub in &self.excluded {
            sub.encode(w);
        }
    }
}

impl Decode for ShardedVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let shard_count = r.u32()?;
        let nc = r.seq_len()?;
        let mut contributing = Vec::with_capacity(nc);
        for _ in 0..nc {
            contributing.push(ShardVo::decode(r)?);
        }
        let ne = r.seq_len()?;
        let mut excluded = Vec::with_capacity(ne);
        for _ in 0..ne {
            excluded.push(ShardVo::decode(r)?);
        }
        Ok(ShardedVo {
            shard_count,
            contributing,
            excluded,
        })
    }
}

/// The SP's answer to a sharded top-k query.
#[derive(Clone, Debug)]
pub struct ShardedResponse {
    /// Global winners in merge order, with raw payloads.
    pub results: Vec<ImageResult>,
    pub vo: ShardedVo,
}

/// Why the client rejected a sharded response.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardedError {
    /// The manifest signature (or its root recomputation) failed.
    ManifestInvalid,
    /// The VO's shard count differs from the manifest's (e.g. a replayed
    /// manifest from a smaller deployment of the same owner).
    ShardCountMismatch { manifest: u32, vo: u32 },
    /// A sub-VO names a shard id outside the manifest.
    UnknownShard { shard: u32 },
    /// Two sub-VOs claim the same shard.
    DuplicateShard { shard: u32 },
    /// No sub-VO covers this shard (shard withholding).
    ShardMissing { shard: u32 },
    /// A sub-VO failed monolith verification against its committed root.
    Shard { shard: u32, error: ClientError },
    /// An excluded shard's bound proof claims more than one candidate.
    BoundShapeInvalid { shard: u32 },
    /// An excluded shard's proven best candidate would beat the claimed
    /// global top-k (a shard's winners withheld behind a bound proof).
    BoundExceeded { shard: u32 },
    /// The same image was claimed by more than one shard.
    DuplicateCandidate { image: ImageId },
    /// A winner sits in a shard other than the one [`shard_of`] assigns
    /// it to.
    AssignmentMismatch { image: ImageId },
    /// The returned results differ from the verified cross-shard merge.
    MergeMismatch,
}

impl std::fmt::Display for ShardedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardedError::ManifestInvalid => write!(f, "shard manifest signature invalid"),
            ShardedError::ShardCountMismatch { manifest, vo } => {
                write!(f, "manifest has {manifest} shards but the VO claims {vo}")
            }
            ShardedError::UnknownShard { shard } => {
                write!(f, "sub-VO names unknown shard {shard}")
            }
            ShardedError::DuplicateShard { shard } => {
                write!(f, "shard {shard} covered by more than one sub-VO")
            }
            ShardedError::ShardMissing { shard } => {
                write!(f, "no sub-VO covers shard {shard}")
            }
            ShardedError::Shard { shard, error } => {
                write!(f, "shard {shard} failed verification: {error}")
            }
            ShardedError::BoundShapeInvalid { shard } => {
                write!(
                    f,
                    "bound proof of shard {shard} claims more than one candidate"
                )
            }
            ShardedError::BoundExceeded { shard } => {
                write!(f, "shard {shard}'s best candidate beats the claimed top-k")
            }
            ShardedError::DuplicateCandidate { image } => {
                write!(f, "image {image} claimed by more than one shard")
            }
            ShardedError::AssignmentMismatch { image } => {
                write!(f, "image {image} claimed by a shard it is not assigned to")
            }
            ShardedError::MergeMismatch => {
                write!(f, "returned results differ from the verified merge")
            }
        }
    }
}

impl std::error::Error for ShardedError {}

/// What the monolith verification helper checks the reconstructed MRKD
/// root against: the owner's root signature (monolith deployments) or a
/// root committed by an already-verified [`ShardManifest`].
#[derive(Debug, Clone, Copy)]
pub enum RootExpectation<'a> {
    OwnerSignature,
    Committed(&'a Digest),
}

/// Outcome of verifying one (sub-)VO: the verified local top-k and BoVW
/// assignments, with the client's cost split.
#[derive(Debug, Clone)]
pub struct SubVerify {
    /// `(image id, verified score)` in the claimed order.
    pub topk: Vec<(ImageId, f32)>,
    /// The verified BoVW assignment of each query feature vector.
    pub assignments: Vec<u32>,
    pub bovw_seconds: f64,
    pub inv_seconds: f64,
}

/// A fully verified sharded query result.
#[derive(Debug, Clone)]
pub struct ShardedVerifiedResult {
    /// `(image id, verified score)` in global merge order.
    pub topk: Vec<(ImageId, f32)>,
    /// The verified BoVW assignment of each query feature vector.
    pub assignments: Vec<u32>,
}

/// The global merge order: score descending, ties broken by ascending id —
/// exactly the order the monolith's exhaustive top-k uses, so the sharded
/// winner set (ties included) equals the monolith's.
fn merge_cmp(a: &(u32, ImageId, f32), b: &(u32, ImageId, f32)) -> Ordering {
    b.2.total_cmp(&a.2).then_with(|| a.1.cmp(&b.1))
}

/// True when `(score, id)` would displace the k-th winner under the merge
/// order (equal score with a larger id legitimately loses the merge).
fn beats(score: f32, id: ImageId, kth_score: f32, kth_id: ImageId) -> bool {
    match score.total_cmp(&kth_score) {
        Ordering::Greater => true,
        Ordering::Equal => id < kth_id,
        Ordering::Less => false,
    }
}

impl Client {
    /// Verifies a sharded response end to end: the manifest signature,
    /// shard coverage, every sub-VO against its committed root, the
    /// excluded-shard bound proofs, the cross-shard merge, and the
    /// winners' image signatures.
    pub fn verify_sharded(
        &self,
        features: &[Vec<f32>],
        k: usize,
        response: &ShardedResponse,
        manifest: &ShardManifest,
    ) -> Result<ShardedVerifiedResult, ShardedError> {
        self.verify_sharded_profiled(features, k, response, manifest)
            .map(|(verified, _)| verified)
    }

    /// [`Client::verify_sharded`] that additionally returns the structured
    /// span profile: phases `manifest`, `contributing`, `bounds`, `merge`,
    /// `signatures`, with each sub-VO's `shard.verify` span (tagged by a
    /// `shard` counter) nested under the phase that checked it. The
    /// profile is pure observation: accept/reject is identical whether or
    /// not recording is enabled.
    pub fn verify_sharded_profiled(
        &self,
        features: &[Vec<f32>],
        k: usize,
        response: &ShardedResponse,
        manifest: &ShardManifest,
    ) -> Result<(ShardedVerifiedResult, QueryProfile), ShardedError> {
        let mut prof = Profiler::new("client.verify_sharded");
        prof.enter("manifest");
        if !manifest.verify(&self.params.public_key) {
            return Err(ShardedError::ManifestInvalid);
        }
        let shard_count = manifest.shard_roots.len() as u32;
        let vo = &response.vo;
        if vo.shard_count != shard_count {
            return Err(ShardedError::ShardCountMismatch {
                manifest: shard_count,
                vo: vo.shard_count,
            });
        }

        // Coverage: every shard exactly once across both sub-VO lists.
        let mut covered: Vec<bool> = (0..shard_count).map(|_| false).collect();
        for sub in vo.contributing.iter().chain(&vo.excluded) {
            match covered.get_mut(sub.shard_id as usize) {
                None => {
                    return Err(ShardedError::UnknownShard {
                        shard: sub.shard_id,
                    })
                }
                Some(slot) if *slot => {
                    return Err(ShardedError::DuplicateShard {
                        shard: sub.shard_id,
                    })
                }
                Some(slot) => *slot = true,
            }
        }
        if let Some(missing) = covered.iter().position(|c| !c) {
            return Err(ShardedError::ShardMissing {
                shard: missing as u32,
            });
        }
        prof.exit();

        // Contributing shards: full-k monolith verification against the
        // committed roots; the verified local top-ks feed the merge.
        prof.enter("contributing");
        let mut assignments: Vec<u32> = Vec::new();
        let mut candidates: Vec<(u32, ImageId, f32)> = Vec::new();
        for sub in &vo.contributing {
            let Some(root) = manifest.root_of(sub.shard_id) else {
                return Err(ShardedError::UnknownShard {
                    shard: sub.shard_id,
                });
            };
            prof.enter("shard.verify");
            prof.add("shard", sub.shard_id as u64);
            let verified = self
                .verify_query_vo(
                    features,
                    k,
                    &sub.vo,
                    &sub.claimed,
                    RootExpectation::Committed(root),
                    &mut prof,
                )
                .map_err(|error| ShardedError::Shard {
                    shard: sub.shard_id,
                    error,
                })?;
            prof.exit();
            for &(id, score) in &verified.topk {
                candidates.push((sub.shard_id, id, score));
            }
            assignments = verified.assignments;
        }
        prof.exit();

        // Excluded shards: k=1 bound proofs of each shard's true best
        // candidate (or of emptiness, via an exhausted empty claim).
        prof.enter("bounds");
        let mut bounds: Vec<(u32, Option<(ImageId, f32)>)> = Vec::with_capacity(vo.excluded.len());
        for sub in &vo.excluded {
            if sub.claimed.len() > 1 {
                return Err(ShardedError::BoundShapeInvalid {
                    shard: sub.shard_id,
                });
            }
            let Some(root) = manifest.root_of(sub.shard_id) else {
                return Err(ShardedError::UnknownShard {
                    shard: sub.shard_id,
                });
            };
            prof.enter("shard.verify");
            prof.add("shard", sub.shard_id as u64);
            let verified = self
                .verify_query_vo(
                    features,
                    1,
                    &sub.vo,
                    &sub.claimed,
                    RootExpectation::Committed(root),
                    &mut prof,
                )
                .map_err(|error| ShardedError::Shard {
                    shard: sub.shard_id,
                    error,
                })?;
            prof.exit();
            bounds.push((sub.shard_id, verified.topk.first().copied()));
            if assignments.is_empty() {
                assignments = verified.assignments;
            }
        }
        prof.exit();

        // No image may be claimed by two shards (impossible under an
        // honest owner's partition; a forged duplicate would double-count).
        prof.enter("merge");
        let mut seen_images = BTreeSet::new();
        for &(_, id, _) in &candidates {
            if !seen_images.insert(id) {
                return Err(ShardedError::DuplicateCandidate { image: id });
            }
        }
        for &(_, best) in &bounds {
            if let Some((id, _)) = best {
                if !seen_images.insert(id) {
                    return Err(ShardedError::DuplicateCandidate { image: id });
                }
            }
        }

        // Cross-shard merge: the true global top-k over every proven
        // local top-k, under (score desc, id asc).
        candidates.sort_by(merge_cmp);
        candidates.truncate(k);

        // Bound check: with a full result list, every excluded shard's
        // best must lose to the k-th winner; with a short one, a free slot
        // exists and any excluded candidate should have filled it.
        let fence: Option<(ImageId, f32)> = if candidates.len() == k {
            candidates.last().map(|&(_, id, score)| (id, score))
        } else {
            None
        };
        for &(shard, best) in &bounds {
            let Some((id, score)) = best else { continue };
            match fence {
                None => return Err(ShardedError::BoundExceeded { shard }),
                Some((kth_id, kth_score)) => {
                    if beats(score, id, kth_score, kth_id) {
                        return Err(ShardedError::BoundExceeded { shard });
                    }
                }
            }
        }

        // The returned results must be exactly the merged winner set
        // (order-insensitive, like the monolith: scores are re-derived).
        if response.results.len() != candidates.len() {
            return Err(ShardedError::MergeMismatch);
        }
        let mut claimed_ids: Vec<ImageId> = response.results.iter().map(|r| r.id).collect();
        let mut merged_ids: Vec<ImageId> = candidates.iter().map(|&(_, id, _)| id).collect();
        claimed_ids.sort_unstable();
        merged_ids.sort_unstable();
        if claimed_ids != merged_ids {
            return Err(ShardedError::MergeMismatch);
        }

        // Placement: every winner must live in the shard the partition
        // function assigns it to (its sub-VO proved it exists *there*).
        for &(shard, id, _) in &candidates {
            if shard_of(id, shard_count as usize) != shard as usize {
                return Err(ShardedError::AssignmentMismatch { image: id });
            }
        }
        prof.add("winners", candidates.len() as u64);
        prof.exit();

        // Winner image signatures (Eq. 15), read from each winner's
        // sub-VO at its local claimed position and batch-verified.
        prof.enter("signatures");
        let by_shard: BTreeMap<u32, &ShardVo> =
            vo.contributing.iter().map(|s| (s.shard_id, s)).collect();
        let mut items: Vec<(ImageId, &[u8], Signature)> =
            Vec::with_capacity(response.results.len());
        for result in &response.results {
            let shard = shard_of(result.id, shard_count as usize) as u32;
            let signature = by_shard.get(&shard).and_then(|sub| {
                let pos = sub.claimed.iter().position(|&c| c == result.id)?;
                sub.vo.signatures.get(pos)
            });
            let Some(signature) = signature else {
                return Err(ShardedError::AssignmentMismatch { image: result.id });
            };
            items.push((result.id, &result.data, *signature));
        }
        if let Err(error) = self.check_image_signatures(&items) {
            let shard = match &error {
                ClientError::ImageSignatureInvalid { id } => {
                    shard_of(*id, shard_count as usize) as u32
                }
                _ => 0,
            };
            return Err(ShardedError::Shard { shard, error });
        }
        let _ = image_signing_message; // anchor: signatures cover Eq. 15 messages
        prof.exit();

        if prof.is_recording() {
            let reg = imageproof_obs::global();
            let slug = self.params.scheme.slug();
            reg.counter(
                "imageproof_client_sharded_verifies_total",
                &[("scheme", slug)],
            )
            .inc();
        }
        Ok((
            ShardedVerifiedResult {
                topk: candidates
                    .iter()
                    .map(|&(_, id, score)| (id, score))
                    .collect(),
                assignments,
            },
            prof.finish(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imageproof_crypto::SigningKey;

    fn roots(n: usize) -> Vec<Digest> {
        (0..n).map(|i| Digest::of(&[i as u8, 0xA5])).collect()
    }

    #[test]
    fn shard_of_partitions_deterministically() {
        assert_eq!(shard_of(0, 4), 0);
        assert_eq!(shard_of(7, 4), 3);
        assert_eq!(shard_of(7, 1), 0);
        assert_eq!(
            shard_of(7, 0),
            0,
            "degenerate count must not divide by zero"
        );
    }

    #[test]
    fn manifest_signs_and_verifies() {
        let key = SigningKey::from_seed(&[3u8; 32]);
        let shard_roots = roots(5);
        let root = manifest_root(&shard_roots).unwrap();
        let signature = key.sign(&manifest_signing_message(&root, 5));
        let manifest = ShardManifest {
            shard_roots,
            signature,
        };
        assert!(manifest.verify(&key.public_key()));
        assert!(!manifest.verify(&SigningKey::from_seed(&[4u8; 32]).public_key()));
    }

    #[test]
    fn manifest_rejects_root_and_count_tampering() {
        let key = SigningKey::from_seed(&[3u8; 32]);
        let shard_roots = roots(4);
        let root = manifest_root(&shard_roots).unwrap();
        let signature = key.sign(&manifest_signing_message(&root, 4));
        let good = ShardManifest {
            shard_roots: shard_roots.clone(),
            signature,
        };
        assert!(good.verify(&key.public_key()));

        let mut wrong_root = good.clone();
        wrong_root.shard_roots[2].0[0] ^= 1;
        assert!(!wrong_root.verify(&key.public_key()));

        let mut dropped = good.clone();
        dropped.shard_roots.pop();
        assert!(!dropped.verify(&key.public_key()));

        let empty = ShardManifest {
            shard_roots: Vec::new(),
            signature: good.signature,
        };
        assert!(!empty.verify(&key.public_key()));
    }

    #[test]
    fn manifest_leaves_bind_position() {
        // Swapping two shard roots changes the manifest root even when the
        // multiset of roots is unchanged.
        let mut a = roots(4);
        let ra = manifest_root(&a).unwrap();
        a.swap(1, 2);
        let rb = manifest_root(&a).unwrap();
        assert_ne!(ra, rb);
        assert_ne!(
            manifest_leaf_digest(0, &roots(1)[0]),
            manifest_leaf_digest(1, &roots(1)[0])
        );
    }

    #[test]
    fn manifest_message_is_domain_separated() {
        let root = Digest::of(b"root");
        let msg = manifest_signing_message(&root, 3);
        assert_eq!(msg.len(), 44);
        assert!(msg.starts_with(b"IPROOF.2"));
        // Differs from the monolith's root message prefix.
        assert_ne!(&msg[..8], b"IPROOF.1");
        assert_ne!(
            manifest_signing_message(&root, 3),
            manifest_signing_message(&root, 4)
        );
    }

    #[test]
    fn shard_manifest_round_trips_from_wire() {
        let key = SigningKey::from_seed(&[9u8; 32]);
        let shard_roots = roots(6);
        let root = manifest_root(&shard_roots).unwrap();
        let signature = key.sign(&manifest_signing_message(&root, 6));
        let manifest = ShardManifest {
            shard_roots,
            signature,
        };
        let bytes = manifest.to_wire();
        let decoded = ShardManifest::from_wire(&bytes).expect("round trip");
        assert_eq!(decoded, manifest);
        assert!(decoded.verify(&key.public_key()));
        // Truncations must error, never panic.
        for cut in 0..bytes.len() {
            assert!(ShardManifest::from_wire(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn merge_order_breaks_ties_by_ascending_id() {
        let mut c = [(0u32, 9u64, 0.5f32), (1, 2, 0.5), (2, 4, 0.7)];
        c.sort_by(merge_cmp);
        let ids: Vec<u64> = c.iter().map(|&(_, id, _)| id).collect();
        assert_eq!(ids, vec![4, 2, 9]);
        assert!(beats(0.6, 10, 0.5, 2));
        assert!(beats(0.5, 1, 0.5, 2), "equal score, smaller id wins");
        assert!(!beats(0.5, 3, 0.5, 2), "equal score, larger id loses");
        assert!(!beats(0.4, 1, 0.5, 2));
    }
}
