//! Sharded serving: the owner partitions the corpus across independent
//! per-shard ADS sets, commits every shard root in one signed manifest,
//! and the client verifies a cross-shard top-k merge — the §VI bound
//! machinery lifted from "remaining postings" to "remaining shards".
//!
//! Trust model: the SP controls *all* shards, so nothing here assumes
//! honest placement or honest merging. Soundness rests on three facts:
//!
//! 1. Every per-shard sub-VO is a complete monolith-style VO verified
//!    against that shard's root, which the signed [`ShardManifest`]
//!    commits to (a Merkle tree over `h(shard_id ‖ root)` leaves, one
//!    signature for the whole deployment).
//! 2. A shard contributing `j` of the `k` global winners proves exactly
//!    its local top-`min(j+1, k)`: the `j` contributions plus one *fence
//!    candidate* — its `(j+1)`-th best — whose verified score bounds every
//!    entry the trim hid. The client re-derives the merge and checks each
//!    fence loses the merge order `(score desc, id asc)` to the k-th
//!    winner, so nothing behind any fence can displace a winner. A shard
//!    with `j = 0` degenerates to the old excluded-shard k=1 bound; a
//!    shard with `j = k` is untrimmed.
//! 3. Claim sizes are policed structurally: Σ`j` over shards may not
//!    exceed `k` (inflation), a shard claiming fewer than `min(j+1, k)`
//!    entries must prove local exhaustion, and a fence may not coexist
//!    with a free result slot.
//!
//! Sub-VOs additionally deduplicate BoVW/MRKD proof material: all shards
//! traverse the same codebook geometry for one query, so their BoVW VOs
//! differ only in a digest sequence. The response hoists one VO into a
//! [`SharedSection`] template and ships the rest as digest patches —
//! untrusted compression, since every re-instantiated VO must still
//! reproduce its shard's manifest-committed root.
//!
//! Scores are shard-invariant: list weights come from the owner's global
//! impact model and an image's postings live only in its own shard, so a
//! shard computes bit-identical scores to the monolith and the merged
//! top-k equals the monolith top-k exactly, ties included (proven by the
//! `shard_equivalence` suite).

use crate::client::{Client, ClientError};
use crate::owner::image_signing_message;
use crate::scheme::{BovwVoVariant, InvVoVariant};
use crate::sp::ImageResult;
use imageproof_crypto::wire::{Decode, Encode, Reader, WireError, Writer};
use imageproof_crypto::{Digest, MerkleTree, PublicKey, Signature};
use imageproof_mrkd::{BaselineBovwVo, DigestCursor};
use imageproof_obs::{Profiler, QueryProfile};
use imageproof_vision::ImageId;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

/// The protocol's deterministic partition function: image `id` lives in
/// shard `id mod shard_count`. Fixed protocol-wide so the client can check
/// result placement without any extra proof material.
// audit:allow(panic) the zero divisor is handled by the explicit shard_count == 0 branch
pub fn shard_of(id: ImageId, shard_count: usize) -> usize {
    if shard_count == 0 {
        0
    } else {
        (id % shard_count as u64) as usize
    }
}

/// Manifest leaf: `h("IPSHLEAF" ‖ shard_id ‖ root)` — binds each root to
/// its position, so a shard's sub-VO can never be replayed under another
/// shard id.
pub fn manifest_leaf_digest(shard_id: u32, root: &Digest) -> Digest {
    Digest::builder()
        .bytes(b"IPSHLEAF")
        .u32(shard_id)
        .digest(root)
        .finish()
}

/// Merkle root over the per-shard leaf digests; `None` for zero shards (an
/// empty deployment commits to nothing and can never verify).
pub fn manifest_root(shard_roots: &[Digest]) -> Option<Digest> {
    if shard_roots.is_empty() {
        return None;
    }
    let leaves: Vec<Digest> = shard_roots
        .iter()
        .enumerate()
        .map(|(i, r)| manifest_leaf_digest(i as u32, r))
        .collect();
    Some(MerkleTree::from_leaf_digests(leaves).root())
}

/// The message the manifest signature covers: a domain tag (distinct from
/// the monolith's `IPROOF.1` root messages and from image messages), the
/// manifest Merkle root, and the shard count — so a manifest signed for a
/// smaller deployment can never be replayed against a larger one.
pub fn manifest_signing_message(root: &Digest, shard_count: u32) -> Vec<u8> {
    let mut msg = Vec::with_capacity(44);
    msg.extend_from_slice(b"IPROOF.2");
    msg.extend_from_slice(&root.0);
    msg.extend_from_slice(&shard_count.to_le_bytes());
    msg
}

/// The owner's signed commitment to one sharded deployment.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardManifest {
    /// Combined MRKD root digest of each shard, indexed by shard id.
    pub shard_roots: Vec<Digest>,
    /// Signature over [`manifest_signing_message`].
    pub signature: Signature,
}

impl ShardManifest {
    pub fn shard_count(&self) -> usize {
        self.shard_roots.len()
    }

    /// The committed root of one shard.
    pub fn root_of(&self, shard_id: u32) -> Option<&Digest> {
        self.shard_roots.get(shard_id as usize)
    }

    /// Recomputes the manifest root and checks the owner's signature.
    pub fn verify(&self, public_key: &PublicKey) -> bool {
        match manifest_root(&self.shard_roots) {
            Some(root) => {
                let msg = manifest_signing_message(&root, self.shard_roots.len() as u32);
                public_key.verify(&msg, &self.signature)
            }
            None => false,
        }
    }
}

fn decode_signature(r: &mut Reader<'_>) -> Result<Signature, WireError> {
    let bytes = r.bytes()?;
    let arr: [u8; 64] = bytes.try_into().map_err(|_| WireError::InvalidTag(0xFF))?;
    Ok(Signature::from_bytes(arr))
}

impl Encode for ShardManifest {
    fn encode(&self, w: &mut Writer) {
        w.seq_len(self.shard_roots.len());
        for root in &self.shard_roots {
            w.digest(root);
        }
        w.bytes(&self.signature.0);
    }
}

impl Decode for ShardManifest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len()?;
        let mut shard_roots = Vec::with_capacity(n);
        for _ in 0..n {
            shard_roots.push(r.digest()?);
        }
        let signature = decode_signature(r)?;
        Ok(ShardManifest {
            shard_roots,
            signature,
        })
    }
}

/// Collects a BoVW VO variant's shard-varying digests — pruned-subtree
/// stubs and leaf-embedded inverted-list digests, in DFS order (per-query
/// VOs concatenate their queries' trees). Everything else in the VO
/// depends only on the query features and the deployment-wide codebook, so
/// two shards' VOs for one query differ in exactly this digest sequence.
pub fn bovw_variant_digests(vo: &BovwVoVariant) -> Vec<Digest> {
    let mut out = Vec::new();
    match vo {
        BovwVoVariant::Shared(v) => v.collect_digests(&mut out),
        BovwVoVariant::PerQuery(v) => {
            for q in &v.per_query {
                q.collect_digests(&mut out);
            }
        }
    }
    out
}

/// Re-instantiates `template` with another shard's digest sequence;
/// `None` when the payload does not fill the template's digest slots
/// exactly (a shape mismatch — the patch proves nothing either way until
/// the result reproduces a committed root).
pub fn bovw_variant_with_digests(
    template: &BovwVoVariant,
    digests: &[Digest],
) -> Option<BovwVoVariant> {
    let mut cur = DigestCursor::new(digests);
    let out = match template {
        BovwVoVariant::Shared(v) => BovwVoVariant::Shared(v.with_digests(&mut cur)?),
        BovwVoVariant::PerQuery(v) => {
            let mut per_query = Vec::with_capacity(v.per_query.len());
            for q in &v.per_query {
                per_query.push(q.with_digests(&mut cur)?);
            }
            BovwVoVariant::PerQuery(BaselineBovwVo { per_query })
        }
    };
    if cur.exhausted() {
        Some(out)
    } else {
        None
    }
}

/// Proof material shared by every sub-VO of one response: BoVW/MRKD VO
/// templates (all shards traverse the same codebook geometry for one
/// query, so their VOs differ only in digests). The section is pure
/// transport-level compression — nothing in it is trusted until a
/// re-instantiated VO reproduces a manifest-committed root.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SharedSection {
    pub templates: Vec<BovwVoVariant>,
}

impl Encode for SharedSection {
    fn encode(&self, w: &mut Writer) {
        w.seq_len(self.templates.len());
        for t in &self.templates {
            t.encode(w);
        }
    }
}

impl Decode for SharedSection {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len()?;
        let mut templates = Vec::with_capacity(n);
        for _ in 0..n {
            templates.push(BovwVoVariant::decode(r)?);
        }
        Ok(SharedSection { templates })
    }
}

const TAG_BOVW_INLINE: u8 = 0;
const TAG_BOVW_PATCHED: u8 = 1;

/// How one shard's BoVW proof material ships.
///
/// A patch stores its digest payload *slot-deduplicated*: the same
/// inverted-list digest re-appears in every MRKD tree (and, for per-query
/// VOs, in every query's tree set), so the payload ships each distinct
/// digest once in `unique` plus a compact `slots` map assigning one unique
/// index per template digest slot. An empty patch (`unique` and `slots`
/// both empty) means "the template's embedded digests *are* this shard's"
/// — the shard whose VO seeded the template re-ships nothing.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardBovw {
    /// A complete BoVW VO carried inline (deduplication found no match, or
    /// the deployment is too small for a shared section to pay off).
    Inline(BovwVoVariant),
    /// A reference to [`SharedSection::templates`]`[template]` with this
    /// shard's own digest sequence patched into the template's slots.
    Patched {
        template: u32,
        /// Distinct digests, in first-occurrence order.
        unique: Vec<Digest>,
        /// One index into `unique` per template digest slot (DFS order).
        slots: Vec<u32>,
    },
}

impl Encode for ShardBovw {
    fn encode(&self, w: &mut Writer) {
        match self {
            ShardBovw::Inline(vo) => {
                w.u8(TAG_BOVW_INLINE);
                vo.encode(w);
            }
            ShardBovw::Patched {
                template,
                unique,
                slots,
            } => {
                w.u8(TAG_BOVW_PATCHED);
                w.u32(*template);
                w.seq_len(unique.len());
                for d in unique {
                    w.digest(d);
                }
                w.seq_len(slots.len());
                for &s in slots {
                    w.u32(s);
                }
            }
        }
    }
}

impl Decode for ShardBovw {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_BOVW_INLINE => Ok(ShardBovw::Inline(BovwVoVariant::decode(r)?)),
            TAG_BOVW_PATCHED => {
                let template = r.u32()?;
                let n = r.seq_len()?;
                let mut unique = Vec::with_capacity(n);
                for _ in 0..n {
                    unique.push(r.digest()?);
                }
                let ns = r.seq_len()?;
                let mut slots = Vec::with_capacity(ns);
                for _ in 0..ns {
                    slots.push(r.u32()?);
                }
                Ok(ShardBovw::Patched {
                    template,
                    unique,
                    slots,
                })
            }
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

/// One shard's merge-trimmed sub-VO.
///
/// A shard that contributed `j = contributed` entries to the global top-k
/// proves exactly its local top-`k'` for `k' = min(j + 1, k)`: the `j`
/// contributions plus — when the shard has more than `j` entries — one
/// *fence candidate*, its `(j+1)`-th best, whose verified score bounds
/// everything the trim hid. `claimed` order is untrusted (Definition 1 is
/// a set property); the client derives contributions vs. fence by sorting
/// the verified entries under the global merge order.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardVo {
    pub shard_id: u32,
    /// Entries this shard claims the global merge consumed (`j`).
    pub contributed: u32,
    /// Local claimed top-`k'` ids: the contributions plus at most one
    /// fence candidate; shorter only when the shard is provably exhausted.
    pub claimed: Vec<ImageId>,
    pub bovw: ShardBovw,
    pub inv: InvVoVariant,
    /// Owner image signatures, one per claimed id.
    pub signatures: Vec<Signature>,
}

impl Encode for ShardVo {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.shard_id);
        w.u32(self.contributed);
        w.seq_len(self.claimed.len());
        for &id in &self.claimed {
            w.u64(id);
        }
        self.bovw.encode(w);
        self.inv.encode(w);
        w.seq_len(self.signatures.len());
        for s in &self.signatures {
            w.bytes(&s.0);
        }
    }
}

impl Decode for ShardVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let shard_id = r.u32()?;
        let contributed = r.u32()?;
        let n = r.seq_len()?;
        let mut claimed = Vec::with_capacity(n);
        for _ in 0..n {
            claimed.push(r.u64()?);
        }
        let bovw = ShardBovw::decode(r)?;
        let inv = InvVoVariant::decode(r)?;
        let ns = r.seq_len()?;
        let mut signatures = Vec::with_capacity(ns);
        for _ in 0..ns {
            signatures.push(decode_signature(r)?);
        }
        Ok(ShardVo {
            shard_id,
            contributed,
            claimed,
            bovw,
            inv,
            signatures,
        })
    }
}

impl ShardVo {
    /// Resolves this shard's BoVW VO against the response's shared
    /// section: inline VOs verbatim, patched references by re-instantiating
    /// the named template with this shard's digest payload. Resolution is
    /// untrusted — the caller only accepts the result after it reproduces
    /// the shard's manifest-committed root.
    pub fn resolve_bovw<'a>(
        &'a self,
        shared: &SharedSection,
    ) -> Result<std::borrow::Cow<'a, BovwVoVariant>, ShardedError> {
        match &self.bovw {
            ShardBovw::Inline(vo) => Ok(std::borrow::Cow::Borrowed(vo)),
            ShardBovw::Patched {
                template,
                unique,
                slots,
            } => {
                let Some(t) = shared.templates.get(*template as usize) else {
                    return Err(ShardedError::SharedIndexInvalid {
                        shard: self.shard_id,
                        index: *template,
                    });
                };
                // Empty patch: the template's embedded digests are this
                // shard's own (the template-seeding shard ships nothing).
                if unique.is_empty() && slots.is_empty() {
                    return Ok(std::borrow::Cow::Owned(t.clone()));
                }
                let mut digests = Vec::with_capacity(slots.len());
                for &s in slots {
                    match unique.get(s as usize) {
                        Some(d) => digests.push(*d),
                        None => {
                            return Err(ShardedError::SharedPatchMismatch {
                                shard: self.shard_id,
                            })
                        }
                    }
                }
                match bovw_variant_with_digests(t, &digests) {
                    Some(vo) => Ok(std::borrow::Cow::Owned(vo)),
                    None => Err(ShardedError::SharedPatchMismatch {
                        shard: self.shard_id,
                    }),
                }
            }
        }
    }
}

/// Deduplicates identical BoVW/MRKD geometry across sub-VOs: the first
/// inline BoVW VO becomes a response-level template, and every shard whose
/// VO equals the template with its own digests swapped in ships only the
/// digest patch. Shards with divergent geometry stay inline, and when
/// fewer than two shards patch, the section is dropped entirely (a
/// template plus a single patch saves nothing). Returns the section and
/// the net wire bytes saved.
pub fn dedup_shared_section(shards: &mut [ShardVo]) -> (SharedSection, usize) {
    let template = shards.iter().find_map(|s| match &s.bovw {
        ShardBovw::Inline(v) => Some(v.clone()),
        ShardBovw::Patched { .. } => None,
    });
    let Some(template) = template else {
        return (SharedSection::default(), 0);
    };
    let mut patches: Vec<(usize, Vec<Digest>)> = Vec::new();
    for (i, sub) in shards.iter().enumerate() {
        let ShardBovw::Inline(v) = &sub.bovw else {
            continue;
        };
        let digests = bovw_variant_digests(v);
        if bovw_variant_with_digests(&template, &digests).as_ref() == Some(v) {
            patches.push((i, digests));
        }
    }
    if patches.len() < 2 {
        return (SharedSection::default(), 0);
    }
    let mut saved = 0usize;
    for (i, digests) in patches {
        let Some(sub) = shards.get_mut(i) else {
            continue;
        };
        let patched = if matches!(&sub.bovw, ShardBovw::Inline(v) if *v == template) {
            // This shard seeded the template; its digests already ride in
            // the shared section, so the patch ships nothing at all.
            ShardBovw::Patched {
                template: 0,
                unique: Vec::new(),
                slots: Vec::new(),
            }
        } else {
            // Slot-dedup the payload: one copy of each distinct digest
            // plus a unique-index per template slot. Inverted-list digests
            // recur across trees (and per-query VOs), so this is much
            // smaller than the raw digest sequence.
            let mut index: BTreeMap<Digest, u32> = BTreeMap::new();
            let mut unique: Vec<Digest> = Vec::new();
            let mut slots: Vec<u32> = Vec::with_capacity(digests.len());
            for d in digests {
                let id = *index.entry(d).or_insert_with(|| {
                    unique.push(d);
                    (unique.len() - 1) as u32
                });
                slots.push(id);
            }
            ShardBovw::Patched {
                template: 0,
                unique,
                slots,
            }
        };
        saved += sub.bovw.wire_size().saturating_sub(patched.wire_size());
        sub.bovw = patched;
    }
    let section = SharedSection {
        templates: vec![template],
    };
    let saved = saved.saturating_sub(section.wire_size());
    (section, saved)
}

/// The complete VO of one sharded top-k query: a once-per-response shared
/// section plus one merge-trimmed sub-VO per shard.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedVo {
    /// Shard count the SP served under; must match the manifest.
    pub shard_count: u32,
    /// Deduplicated BoVW/MRKD proof material referenced by index.
    pub shared: SharedSection,
    /// Every shard's trimmed sub-VO, one entry per shard.
    pub shards: Vec<ShardVo>,
}

impl Encode for ShardedVo {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.shard_count);
        self.shared.encode(w);
        w.seq_len(self.shards.len());
        for sub in &self.shards {
            sub.encode(w);
        }
    }
}

impl Decode for ShardedVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let shard_count = r.u32()?;
        let shared = SharedSection::decode(r)?;
        let n = r.seq_len()?;
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(ShardVo::decode(r)?);
        }
        Ok(ShardedVo {
            shard_count,
            shared,
            shards,
        })
    }
}

/// The SP's answer to a sharded top-k query.
#[derive(Clone, Debug)]
pub struct ShardedResponse {
    /// Global winners in merge order, with raw payloads.
    pub results: Vec<ImageResult>,
    pub vo: ShardedVo,
}

/// Why the client rejected a sharded response.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardedError {
    /// The manifest signature (or its root recomputation) failed.
    ManifestInvalid,
    /// The VO's shard count differs from the manifest's (e.g. a replayed
    /// manifest from a smaller deployment of the same owner).
    ShardCountMismatch { manifest: u32, vo: u32 },
    /// A sub-VO names a shard id outside the manifest.
    UnknownShard { shard: u32 },
    /// Two sub-VOs claim the same shard.
    DuplicateShard { shard: u32 },
    /// No sub-VO covers this shard (shard withholding).
    ShardMissing { shard: u32 },
    /// A sub-VO failed monolith verification against its committed root.
    Shard { shard: u32, error: ClientError },
    /// A sub-VO's trim shape is impossible: it claims more contributions
    /// than result slots exist, or more entries than its contribution
    /// count plus one fence admits.
    TrimShapeInvalid { shard: u32 },
    /// The shards together claim more contributions than the merge could
    /// have consumed — `image` is the first provably dropped candidate.
    ContributionInflated { image: ImageId },
    /// A shard's verified fence candidate would beat the claimed global
    /// k-th winner (a surviving entry withheld behind the trim).
    FenceExceeded { shard: u32 },
    /// A shard ships a fence candidate while the claimed result list has a
    /// free slot the candidate should have filled.
    FenceWithFreeSlot { shard: u32 },
    /// A patched sub-VO references a shared-section template index that
    /// does not exist.
    SharedIndexInvalid { shard: u32, index: u32 },
    /// A patched sub-VO's digest payload does not fill its template's
    /// slots exactly.
    SharedPatchMismatch { shard: u32 },
    /// The same image was claimed by more than one shard.
    DuplicateCandidate { image: ImageId },
    /// A winner sits in a shard other than the one [`shard_of`] assigns
    /// it to.
    AssignmentMismatch { image: ImageId },
    /// The returned results differ from the verified cross-shard merge.
    MergeMismatch,
}

impl std::fmt::Display for ShardedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardedError::ManifestInvalid => write!(f, "shard manifest signature invalid"),
            ShardedError::ShardCountMismatch { manifest, vo } => {
                write!(f, "manifest has {manifest} shards but the VO claims {vo}")
            }
            ShardedError::UnknownShard { shard } => {
                write!(f, "sub-VO names unknown shard {shard}")
            }
            ShardedError::DuplicateShard { shard } => {
                write!(f, "shard {shard} covered by more than one sub-VO")
            }
            ShardedError::ShardMissing { shard } => {
                write!(f, "no sub-VO covers shard {shard}")
            }
            ShardedError::Shard { shard, error } => {
                write!(f, "shard {shard} failed verification: {error}")
            }
            ShardedError::TrimShapeInvalid { shard } => {
                write!(
                    f,
                    "trimmed sub-VO of shard {shard} has an impossible claim shape"
                )
            }
            ShardedError::ContributionInflated { image } => {
                write!(
                    f,
                    "shards claim more contributions than result slots (image {image} dropped)"
                )
            }
            ShardedError::FenceExceeded { shard } => {
                write!(f, "shard {shard}'s fence candidate beats the claimed top-k")
            }
            ShardedError::FenceWithFreeSlot { shard } => {
                write!(
                    f,
                    "shard {shard} fences a candidate although a result slot is free"
                )
            }
            ShardedError::SharedIndexInvalid { shard, index } => {
                write!(
                    f,
                    "shard {shard} references missing shared template {index}"
                )
            }
            ShardedError::SharedPatchMismatch { shard } => {
                write!(
                    f,
                    "shard {shard}'s digest patch does not fit its shared template"
                )
            }
            ShardedError::DuplicateCandidate { image } => {
                write!(f, "image {image} claimed by more than one shard")
            }
            ShardedError::AssignmentMismatch { image } => {
                write!(f, "image {image} claimed by a shard it is not assigned to")
            }
            ShardedError::MergeMismatch => {
                write!(f, "returned results differ from the verified merge")
            }
        }
    }
}

impl std::error::Error for ShardedError {}

/// What the monolith verification helper checks the reconstructed MRKD
/// root against: the owner's root signature (monolith deployments) or a
/// root committed by an already-verified [`ShardManifest`].
#[derive(Debug, Clone, Copy)]
pub enum RootExpectation<'a> {
    OwnerSignature,
    Committed(&'a Digest),
}

/// Outcome of verifying one (sub-)VO: the verified local top-k and BoVW
/// assignments, with the client's cost split.
#[derive(Debug, Clone)]
pub struct SubVerify {
    /// `(image id, verified score)` in the claimed order.
    pub topk: Vec<(ImageId, f32)>,
    /// The verified BoVW assignment of each query feature vector.
    pub assignments: Vec<u32>,
    pub bovw_seconds: f64,
    pub inv_seconds: f64,
}

/// A fully verified sharded query result.
#[derive(Debug, Clone)]
pub struct ShardedVerifiedResult {
    /// `(image id, verified score)` in global merge order.
    pub topk: Vec<(ImageId, f32)>,
    /// The verified BoVW assignment of each query feature vector.
    pub assignments: Vec<u32>,
}

/// The global merge order: score descending, ties broken by ascending id —
/// exactly the order the monolith's exhaustive top-k uses, so the sharded
/// winner set (ties included) equals the monolith's.
fn merge_cmp(a: &(u32, ImageId, f32), b: &(u32, ImageId, f32)) -> Ordering {
    b.2.total_cmp(&a.2).then_with(|| a.1.cmp(&b.1))
}

/// True when `(score, id)` would displace the k-th winner under the merge
/// order (equal score with a larger id legitimately loses the merge).
fn beats(score: f32, id: ImageId, kth_score: f32, kth_id: ImageId) -> bool {
    match score.total_cmp(&kth_score) {
        Ordering::Greater => true,
        Ordering::Equal => id < kth_id,
        Ordering::Less => false,
    }
}

impl Client {
    /// Verifies a sharded response end to end: the manifest signature,
    /// shard coverage, every merge-trimmed sub-VO against its committed
    /// root (resolving shared-section references), the contribution-count
    /// and fence-proof checks, the cross-shard merge, and the winners'
    /// image signatures.
    pub fn verify_sharded(
        &self,
        features: &[Vec<f32>],
        k: usize,
        response: &ShardedResponse,
        manifest: &ShardManifest,
    ) -> Result<ShardedVerifiedResult, ShardedError> {
        self.verify_sharded_profiled(features, k, response, manifest)
            .map(|(verified, _)| verified)
    }

    /// [`Client::verify_sharded`] that additionally returns the structured
    /// span profile: phases `manifest`, `shards`, `merge`, `signatures`,
    /// with each sub-VO's `shard.verify` span (tagged by a `shard`
    /// counter) nested under the phase that checked it. The profile is
    /// pure observation: accept/reject is identical whether or not
    /// recording is enabled.
    pub fn verify_sharded_profiled(
        &self,
        features: &[Vec<f32>],
        k: usize,
        response: &ShardedResponse,
        manifest: &ShardManifest,
    ) -> Result<(ShardedVerifiedResult, QueryProfile), ShardedError> {
        let mut prof = Profiler::new("client.verify_sharded");
        prof.enter("manifest");
        if !manifest.verify(&self.params.public_key) {
            return Err(ShardedError::ManifestInvalid);
        }
        let shard_count = manifest.shard_roots.len() as u32;
        let vo = &response.vo;
        if vo.shard_count != shard_count {
            return Err(ShardedError::ShardCountMismatch {
                manifest: shard_count,
                vo: vo.shard_count,
            });
        }

        // Coverage: every shard exactly once.
        let mut covered: Vec<bool> = (0..shard_count).map(|_| false).collect();
        for sub in &vo.shards {
            match covered.get_mut(sub.shard_id as usize) {
                None => {
                    return Err(ShardedError::UnknownShard {
                        shard: sub.shard_id,
                    })
                }
                Some(slot) if *slot => {
                    return Err(ShardedError::DuplicateShard {
                        shard: sub.shard_id,
                    })
                }
                Some(slot) => *slot = true,
            }
        }
        if let Some(missing) = covered.iter().position(|c| !c) {
            return Err(ShardedError::ShardMissing {
                shard: missing as u32,
            });
        }
        prof.exit();

        // Trimmed sub-VOs: each shard claiming j contributions is verified
        // as the true local top-k' for k' = min(j + 1, k) against its
        // committed root. Sorted under the merge order, the first j
        // verified entries are the shard's contributions and an optional
        // (j+1)-th is its fence candidate — the verified upper bound on
        // everything the trim hid. A claim shorter than k' only verifies
        // when the sub-VO proves local exhaustion, so fences cannot be
        // silently omitted.
        prof.enter("shards");
        let mut assignments: Vec<u32> = Vec::new();
        let mut candidates: Vec<(u32, ImageId, f32)> = Vec::new();
        let mut fences: Vec<(u32, ImageId, f32)> = Vec::new();
        let mut seen_images = BTreeSet::new();
        for sub in &vo.shards {
            let j = sub.contributed as usize;
            let k_trim = (j + 1).min(k);
            if j > k || sub.claimed.len() > k_trim {
                return Err(ShardedError::TrimShapeInvalid {
                    shard: sub.shard_id,
                });
            }
            let Some(root) = manifest.root_of(sub.shard_id) else {
                return Err(ShardedError::UnknownShard {
                    shard: sub.shard_id,
                });
            };
            let bovw = sub.resolve_bovw(&vo.shared)?;
            prof.enter("shard.verify");
            prof.add("shard", sub.shard_id as u64);
            let verified = self
                .verify_query_vo_parts(
                    features,
                    k_trim,
                    bovw.as_ref(),
                    &sub.inv,
                    sub.signatures.len(),
                    &sub.claimed,
                    RootExpectation::Committed(root),
                    &mut prof,
                )
                .map_err(|error| ShardedError::Shard {
                    shard: sub.shard_id,
                    error,
                })?;
            prof.exit();
            // The claimed order is untrusted; the shard's true local
            // ranking is the verified set under the global merge order.
            let mut local: Vec<(u32, ImageId, f32)> = verified
                .topk
                .iter()
                .map(|&(id, score)| (sub.shard_id, id, score))
                .collect();
            local.sort_by(merge_cmp);
            for &(_, id, _) in &local {
                if !seen_images.insert(id) {
                    return Err(ShardedError::DuplicateCandidate { image: id });
                }
            }
            if local.len() > j {
                // claimed.len() ≤ j + 1, so at most one verified entry
                // sits past the contributions: the fence candidate.
                if let Some(&fence) = local.last() {
                    fences.push(fence);
                }
                local.truncate(j);
            }
            candidates.extend(local);
            if assignments.is_empty() {
                assignments = verified.assignments;
            }
        }
        prof.exit();

        // Cross-shard merge: the global top-k over every shard's proven
        // contributions, under (score desc, id asc).
        prof.enter("merge");
        candidates.sort_by(merge_cmp);
        // More proven contributions than result slots: some shard inflated
        // its contributed count, because the real merge would have dropped
        // the (k+1)-th ranked candidate.
        if let Some(&(_, image, _)) = candidates.get(k) {
            return Err(ShardedError::ContributionInflated { image });
        }

        // Fence checks: with all k slots filled, no fence candidate may
        // beat the k-th winner; with a free slot, a verified fence
        // candidate is itself a result the SP withheld.
        let kth: Option<(ImageId, f32)> = if candidates.len() == k {
            candidates.last().map(|&(_, id, score)| (id, score))
        } else {
            None
        };
        for &(shard, id, score) in &fences {
            match kth {
                None => return Err(ShardedError::FenceWithFreeSlot { shard }),
                Some((kth_id, kth_score)) => {
                    if beats(score, id, kth_score, kth_id) {
                        return Err(ShardedError::FenceExceeded { shard });
                    }
                }
            }
        }

        // The returned results must be exactly the merged winner set
        // (order-insensitive, like the monolith: scores are re-derived).
        if response.results.len() != candidates.len() {
            return Err(ShardedError::MergeMismatch);
        }
        let mut claimed_ids: Vec<ImageId> = response.results.iter().map(|r| r.id).collect();
        let mut merged_ids: Vec<ImageId> = candidates.iter().map(|&(_, id, _)| id).collect();
        claimed_ids.sort_unstable();
        merged_ids.sort_unstable();
        if claimed_ids != merged_ids {
            return Err(ShardedError::MergeMismatch);
        }

        // Placement: every winner must live in the shard the partition
        // function assigns it to (its sub-VO proved it exists *there*).
        for &(shard, id, _) in &candidates {
            if shard_of(id, shard_count as usize) != shard as usize {
                return Err(ShardedError::AssignmentMismatch { image: id });
            }
        }
        prof.add("winners", candidates.len() as u64);
        prof.exit();

        // Winner image signatures (Eq. 15), read from each winner's
        // sub-VO at its local claimed position and batch-verified.
        prof.enter("signatures");
        let by_shard: BTreeMap<u32, &ShardVo> = vo.shards.iter().map(|s| (s.shard_id, s)).collect();
        let mut items: Vec<(ImageId, &[u8], Signature)> =
            Vec::with_capacity(response.results.len());
        for result in &response.results {
            let shard = shard_of(result.id, shard_count as usize) as u32;
            let signature = by_shard.get(&shard).and_then(|sub| {
                let pos = sub.claimed.iter().position(|&c| c == result.id)?;
                sub.signatures.get(pos)
            });
            let Some(signature) = signature else {
                return Err(ShardedError::AssignmentMismatch { image: result.id });
            };
            items.push((result.id, &result.data, *signature));
        }
        if let Err(error) = self.check_image_signatures(&items) {
            let shard = match &error {
                ClientError::ImageSignatureInvalid { id } => {
                    shard_of(*id, shard_count as usize) as u32
                }
                _ => 0,
            };
            return Err(ShardedError::Shard { shard, error });
        }
        let _ = image_signing_message; // anchor: signatures cover Eq. 15 messages
        prof.exit();

        if prof.is_recording() {
            let reg = imageproof_obs::global();
            let slug = self.params.scheme.slug();
            reg.counter(
                "imageproof_client_sharded_verifies_total",
                &[("scheme", slug)],
            )
            .inc();
        }
        Ok((
            ShardedVerifiedResult {
                topk: candidates
                    .iter()
                    .map(|&(_, id, score)| (id, score))
                    .collect(),
                assignments,
            },
            prof.finish(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imageproof_crypto::SigningKey;

    fn roots(n: usize) -> Vec<Digest> {
        (0..n).map(|i| Digest::of(&[i as u8, 0xA5])).collect()
    }

    #[test]
    fn shard_of_partitions_deterministically() {
        assert_eq!(shard_of(0, 4), 0);
        assert_eq!(shard_of(7, 4), 3);
        assert_eq!(shard_of(7, 1), 0);
        assert_eq!(
            shard_of(7, 0),
            0,
            "degenerate count must not divide by zero"
        );
    }

    #[test]
    fn manifest_signs_and_verifies() {
        let key = SigningKey::from_seed(&[3u8; 32]);
        let shard_roots = roots(5);
        let root = manifest_root(&shard_roots).unwrap();
        let signature = key.sign(&manifest_signing_message(&root, 5));
        let manifest = ShardManifest {
            shard_roots,
            signature,
        };
        assert!(manifest.verify(&key.public_key()));
        assert!(!manifest.verify(&SigningKey::from_seed(&[4u8; 32]).public_key()));
    }

    #[test]
    fn manifest_rejects_root_and_count_tampering() {
        let key = SigningKey::from_seed(&[3u8; 32]);
        let shard_roots = roots(4);
        let root = manifest_root(&shard_roots).unwrap();
        let signature = key.sign(&manifest_signing_message(&root, 4));
        let good = ShardManifest {
            shard_roots: shard_roots.clone(),
            signature,
        };
        assert!(good.verify(&key.public_key()));

        let mut wrong_root = good.clone();
        wrong_root.shard_roots[2].0[0] ^= 1;
        assert!(!wrong_root.verify(&key.public_key()));

        let mut dropped = good.clone();
        dropped.shard_roots.pop();
        assert!(!dropped.verify(&key.public_key()));

        let empty = ShardManifest {
            shard_roots: Vec::new(),
            signature: good.signature,
        };
        assert!(!empty.verify(&key.public_key()));
    }

    #[test]
    fn manifest_leaves_bind_position() {
        // Swapping two shard roots changes the manifest root even when the
        // multiset of roots is unchanged.
        let mut a = roots(4);
        let ra = manifest_root(&a).unwrap();
        a.swap(1, 2);
        let rb = manifest_root(&a).unwrap();
        assert_ne!(ra, rb);
        assert_ne!(
            manifest_leaf_digest(0, &roots(1)[0]),
            manifest_leaf_digest(1, &roots(1)[0])
        );
    }

    #[test]
    fn manifest_message_is_domain_separated() {
        let root = Digest::of(b"root");
        let msg = manifest_signing_message(&root, 3);
        assert_eq!(msg.len(), 44);
        assert!(msg.starts_with(b"IPROOF.2"));
        // Differs from the monolith's root message prefix.
        assert_ne!(&msg[..8], b"IPROOF.1");
        assert_ne!(
            manifest_signing_message(&root, 3),
            manifest_signing_message(&root, 4)
        );
    }

    #[test]
    fn shard_manifest_round_trips_from_wire() {
        let key = SigningKey::from_seed(&[9u8; 32]);
        let shard_roots = roots(6);
        let root = manifest_root(&shard_roots).unwrap();
        let signature = key.sign(&manifest_signing_message(&root, 6));
        let manifest = ShardManifest {
            shard_roots,
            signature,
        };
        let bytes = manifest.to_wire();
        let decoded = ShardManifest::from_wire(&bytes).expect("round trip");
        assert_eq!(decoded, manifest);
        assert!(decoded.verify(&key.public_key()));
        // Truncations must error, never panic.
        for cut in 0..bytes.len() {
            assert!(ShardManifest::from_wire(&bytes[..cut]).is_err());
        }
    }

    fn sample_bovw_variant() -> BovwVoVariant {
        use imageproof_mrkd::{BovwVo, Reveal, VoLeafEntry, VoNode};
        BovwVoVariant::Shared(BovwVo {
            trees: vec![VoNode::Internal {
                dim: 0,
                value: 0.5,
                left: Box::new(VoNode::Pruned(Digest::of(b"pruned"))),
                right: Box::new(VoNode::Leaf {
                    entries: vec![VoLeafEntry {
                        cluster: 7,
                        inv_digest: Digest::of(b"inv"),
                        reveal: Reveal::Full {
                            coords: vec![1.0, -2.0],
                        },
                    }],
                }),
            }],
        })
    }

    fn sample_shard_vo(shard_id: u32, bovw: ShardBovw) -> ShardVo {
        ShardVo {
            shard_id,
            contributed: 2,
            claimed: vec![11, 19, 4],
            bovw,
            inv: InvVoVariant::Plain(imageproof_invindex::InvVo { lists: Vec::new() }),
            signatures: vec![Signature::from_bytes([7u8; 64])],
        }
    }

    fn assert_truncations_error<T: Decode>(bytes: &[u8]) {
        for cut in 0..bytes.len() {
            assert!(T::from_wire(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn shard_bovw_round_trips_from_wire() {
        for bovw in [
            ShardBovw::Inline(sample_bovw_variant()),
            ShardBovw::Patched {
                template: 3,
                unique: vec![Digest::of(b"a"), Digest::of(b"b")],
                slots: vec![0, 1, 0],
            },
            ShardBovw::Patched {
                template: 0,
                unique: Vec::new(),
                slots: Vec::new(),
            },
        ] {
            let bytes = bovw.to_wire();
            assert_eq!(ShardBovw::from_wire(&bytes).expect("round trip"), bovw);
            assert_truncations_error::<ShardBovw>(&bytes);
        }
        assert!(ShardBovw::from_wire(&[9u8]).is_err(), "unknown tag");
    }

    #[test]
    fn shared_section_round_trips_from_wire() {
        let section = SharedSection {
            templates: vec![sample_bovw_variant()],
        };
        let bytes = section.to_wire();
        assert_eq!(
            SharedSection::from_wire(&bytes).expect("round trip"),
            section
        );
        assert_truncations_error::<SharedSection>(&bytes);
        let empty = SharedSection::default();
        assert_eq!(
            SharedSection::from_wire(&empty.to_wire()).expect("round trip"),
            empty
        );
    }

    #[test]
    fn shard_vo_round_trips_from_wire() {
        let sub = sample_shard_vo(
            2,
            ShardBovw::Patched {
                template: 0,
                unique: vec![Digest::of(b"d")],
                slots: vec![0, 0],
            },
        );
        let bytes = sub.to_wire();
        assert_eq!(ShardVo::from_wire(&bytes).expect("round trip"), sub);
        assert_truncations_error::<ShardVo>(&bytes);
    }

    #[test]
    fn sharded_vo_round_trips_from_wire() {
        let vo = ShardedVo {
            shard_count: 2,
            shared: SharedSection {
                templates: vec![sample_bovw_variant()],
            },
            shards: vec![
                sample_shard_vo(0, ShardBovw::Inline(sample_bovw_variant())),
                sample_shard_vo(
                    1,
                    ShardBovw::Patched {
                        template: 0,
                        unique: vec![Digest::of(b"x"), Digest::of(b"y")],
                        slots: vec![1, 0],
                    },
                ),
            ],
        };
        let bytes = vo.to_wire();
        assert_eq!(ShardedVo::from_wire(&bytes).expect("round trip"), vo);
        assert_truncations_error::<ShardedVo>(&bytes);
    }

    #[test]
    fn resolve_bovw_patches_templates_and_rejects_bad_references() {
        let template = sample_bovw_variant();
        let shared = SharedSection {
            templates: vec![template.clone()],
        };
        // A fresh digest payload resolves to the template with exactly
        // those digests swapped in (the sample template has two slots).
        let digests = vec![Digest::of(b"p2"), Digest::of(b"i2")];
        let sub = sample_shard_vo(
            1,
            ShardBovw::Patched {
                template: 0,
                unique: digests.clone(),
                slots: vec![0, 1],
            },
        );
        let resolved = sub.resolve_bovw(&shared).expect("resolves");
        assert_eq!(bovw_variant_digests(resolved.as_ref()), digests);
        assert_eq!(
            bovw_variant_with_digests(&template, &digests).as_ref(),
            Some(resolved.as_ref())
        );
        // Inline sub-VOs never consult the section.
        let inline = sample_shard_vo(0, ShardBovw::Inline(template.clone()));
        assert_eq!(
            inline
                .resolve_bovw(&SharedSection::default())
                .expect("inline")
                .as_ref(),
            &template
        );
        // An empty patch resolves to the template verbatim (the seeding
        // shard's digests already ride in the shared section).
        let seeded = sample_shard_vo(
            2,
            ShardBovw::Patched {
                template: 0,
                unique: Vec::new(),
                slots: Vec::new(),
            },
        );
        assert_eq!(
            seeded.resolve_bovw(&shared).expect("empty patch").as_ref(),
            &template
        );
        // Out-of-range template index.
        let dangling = sample_shard_vo(
            1,
            ShardBovw::Patched {
                template: 9,
                unique: digests.clone(),
                slots: vec![0, 1],
            },
        );
        assert_eq!(
            dangling.resolve_bovw(&shared).unwrap_err(),
            ShardedError::SharedIndexInvalid { shard: 1, index: 9 }
        );
        // Slot maps too short or too long for the template, and slots
        // referencing unique indexes that do not exist.
        for bad in [vec![0u32], vec![0, 1, 0], vec![0, 7]] {
            let sub = sample_shard_vo(
                1,
                ShardBovw::Patched {
                    template: 0,
                    unique: digests.clone(),
                    slots: bad,
                },
            );
            assert_eq!(
                sub.resolve_bovw(&shared).unwrap_err(),
                ShardedError::SharedPatchMismatch { shard: 1 }
            );
        }
    }

    #[test]
    fn dedup_seeds_a_template_and_slot_dedups_the_other_patches() {
        let template = sample_bovw_variant();
        let other_digests = vec![Digest::of(b"other-pruned"), Digest::of(b"other-inv")];
        let other = bovw_variant_with_digests(&template, &other_digests).expect("same shape");
        let mut shards = vec![
            sample_shard_vo(0, ShardBovw::Inline(template.clone())),
            sample_shard_vo(1, ShardBovw::Inline(other.clone())),
        ];
        let (shared, _saved) = dedup_shared_section(&mut shards);
        assert_eq!(shared.templates, vec![template.clone()]);
        // The seeding shard ships an empty patch; the other a slot map.
        assert_eq!(
            shards[0].bovw,
            ShardBovw::Patched {
                template: 0,
                unique: Vec::new(),
                slots: Vec::new(),
            }
        );
        assert_eq!(
            shards[1].bovw,
            ShardBovw::Patched {
                template: 0,
                unique: other_digests,
                slots: vec![0, 1],
            }
        );
        // Both resolve back to their original inline VOs.
        assert_eq!(shards[0].resolve_bovw(&shared).unwrap().as_ref(), &template);
        assert_eq!(shards[1].resolve_bovw(&shared).unwrap().as_ref(), &other);
        // A lone shard stays inline: a template plus one patch saves nothing.
        let mut solo = vec![sample_shard_vo(0, ShardBovw::Inline(template.clone()))];
        let (section, saved) = dedup_shared_section(&mut solo);
        assert!(section.templates.is_empty());
        assert_eq!(saved, 0);
        assert_eq!(solo[0].bovw, ShardBovw::Inline(template));
    }

    #[test]
    fn merge_order_breaks_ties_by_ascending_id() {
        let mut c = [(0u32, 9u64, 0.5f32), (1, 2, 0.5), (2, 4, 0.7)];
        c.sort_by(merge_cmp);
        let ids: Vec<u64> = c.iter().map(|&(_, id, _)| id).collect();
        assert_eq!(ids, vec![4, 2, 9]);
        assert!(beats(0.6, 10, 0.5, 2));
        assert!(beats(0.5, 1, 0.5, 2), "equal score, smaller id wins");
        assert!(!beats(0.5, 3, 0.5, 2), "equal score, larger id loses");
        assert!(!beats(0.4, 1, 0.5, 2));
    }
}
