//! The image owner: ADS generation and signing (paper §V-A).

use crate::scheme::{Scheme, SystemConfig};
use crate::shard::{manifest_root, manifest_signing_message, shard_of, ShardManifest};
use imageproof_akm::{AkmParams, Codebook, ImpactModel, SparseBovw};
use imageproof_crypto::{Digest, PublicKey, Signature, SigningKey};
use imageproof_invindex::grouped::GroupedInvertedIndex;
use imageproof_invindex::{MerkleInvertedIndex, SpaceUsage};
use imageproof_mrkd::MrkdForest;
use imageproof_obs::{Profiler, QueryProfile};
use imageproof_parallel::{par_map, par_map_chunked, Concurrency};
use imageproof_vision::{Corpus, ImageId, SyntheticImage};
use std::collections::BTreeMap;

/// Everything the owner publishes to clients.
#[derive(Clone, Debug)]
pub struct PublishedParams {
    pub scheme: Scheme,
    pub public_key: PublicKey,
    /// Signature over the combined MRKD root digest (which transitively
    /// binds the whole inverted index).
    pub root_signature: Signature,
    /// Number of MRKD-trees (clients must receive one VO tree per tree).
    pub n_trees: usize,
}

/// One outsourced image: raw payload plus the owner's signature (Eq. 15).
#[derive(Clone, Debug)]
pub struct StoredImage {
    pub data: Vec<u8>,
    pub signature: Signature,
}

/// The inverted index in the form the scheme requires.
#[derive(Clone, Debug)]
pub enum IndexVariant {
    Plain(MerkleInvertedIndex),
    Grouped(GroupedInvertedIndex),
}

impl IndexVariant {
    /// `h_Γ` per cluster.
    pub fn list_digests(&self) -> Vec<Digest> {
        match self {
            IndexVariant::Plain(i) => i.list_digests(),
            IndexVariant::Grouped(i) => i.list_digests(),
        }
    }

    /// Total postings in the given clusters.
    pub fn total_postings(&self, clusters: impl Iterator<Item = u32>) -> usize {
        match self {
            IndexVariant::Plain(i) => i.total_postings(clusters),
            IndexVariant::Grouped(i) => i.total_postings(clusters),
        }
    }

    /// Drops every list's build-time filter-digest memo.
    pub fn clear_filter_caches(&mut self) {
        match self {
            IndexVariant::Plain(i) => i.clear_filter_caches(),
            IndexVariant::Grouped(i) => i.clear_filter_caches(),
        }
    }

    /// Per-structure byte accounting for the inverted index.
    pub fn space_usage(&self) -> SpaceUsage {
        match self {
            IndexVariant::Plain(i) => i.space_usage(),
            IndexVariant::Grouped(i) => i.space_usage(),
        }
    }
}

/// Everything outsourced to the SP.
#[derive(Clone, Debug)]
pub struct Database {
    pub scheme: Scheme,
    pub codebook: Codebook,
    pub mrkd: MrkdForest,
    pub inv: IndexVariant,
    pub images: BTreeMap<ImageId, StoredImage>,
    /// Per-image BoVW encodings (kept for diagnostics and ablations; a real
    /// SP could drop them).
    pub encodings: Vec<(ImageId, SparseBovw)>,
}

impl Database {
    /// Disables the query-time digest memos (currently the per-list filter
    /// commitments), forcing every subsequent VO assembly to recompute them
    /// from the authenticated structures. The equivalence suite uses this to
    /// prove memoization is invisible on the wire; the hot path never calls
    /// it.
    pub fn clear_hot_path_caches(&mut self) {
        self.inv.clear_filter_caches();
    }

    /// Per-structure byte accounting for the whole outsourced ADS: the
    /// inverted index's own breakdown plus the MRKD forest's authenticated
    /// digest levels (32 bytes each).
    pub fn space_usage(&self) -> SpaceUsage {
        let mut usage = self.inv.space_usage();
        usage.digest_bytes += self.mrkd.n_digests() * 32;
        usage
    }
}

/// One sharded deployment: the per-shard databases (outsourced to the SP)
/// plus the signed manifest and published parameters (given to clients).
#[derive(Clone, Debug)]
pub struct ShardedSystem {
    /// `shards[i]` holds exactly the images with `shard_of(id, S) == i`.
    pub shards: Vec<Database>,
    pub manifest: ShardManifest,
    pub published: PublishedParams,
}

/// The message an image signature covers: `h(I | h(img_I))` (Eq. 15).
pub fn image_signing_message(id: ImageId, data: &[u8]) -> [u8; 32] {
    Digest::builder()
        .u64(id)
        .digest(&Digest::of(data))
        .finish()
        .0
}

/// The message the root signature covers (domain-separated from image
/// signatures).
// audit:allow(panic) slice bounds are the constants 8 and 40 into a fixed [u8; 40]
pub fn root_signing_message(root: &Digest) -> [u8; 40] {
    let mut msg = [0u8; 40];
    msg[..8].copy_from_slice(b"IPROOF.1");
    msg[8..].copy_from_slice(&root.0);
    msg
}

/// The image owner.
pub struct Owner {
    signing_key: SigningKey,
}

impl Owner {
    /// Creates an owner from a key seed.
    pub fn new(seed: &[u8; 32]) -> Owner {
        Owner {
            signing_key: SigningKey::from_seed(seed),
        }
    }

    /// The owner's public key.
    pub fn public_key(&self) -> PublicKey {
        self.signing_key.public_key()
    }

    /// Crate-internal access for the update module.
    pub(crate) fn signing_key(&self) -> &SigningKey {
        &self.signing_key
    }

    /// Full system setup (§V-A): trains the codebook, encodes the corpus,
    /// builds the inverted index and MRKD forest for `scheme`, and signs the
    /// root digest and every image.
    pub fn build_system(
        &self,
        corpus: &Corpus,
        akm: &AkmParams,
        scheme: Scheme,
    ) -> (Database, PublishedParams) {
        self.build_system_config(corpus, akm, SystemConfig::new(scheme))
    }

    /// [`Owner::build_system`] under an explicit [`SystemConfig`]: with
    /// `config.concurrency.threads > 1` the ADS construction (encoding,
    /// per-cluster list/filter/digest builds, per-tree Merkle-ization, image
    /// signing) fans out across workers. The resulting database, root
    /// digest, and signatures are bit-identical for every thread count.
    pub fn build_system_config(
        &self,
        corpus: &Corpus,
        akm: &AkmParams,
        config: SystemConfig,
    ) -> (Database, PublishedParams) {
        let (db, published, _) = self.build_system_config_profiled(corpus, akm, config);
        (db, published)
    }

    /// [`Owner::build_system_config`] that additionally returns the
    /// build's structured span profile (phases `codebook`, `encode`,
    /// `model`, `index`, `mrkd`, `sign`, `sign_root`). The profile is pure
    /// observation: the database, root digest, and signatures are
    /// identical whether or not recording is enabled.
    pub fn build_system_config_profiled(
        &self,
        corpus: &Corpus,
        akm: &AkmParams,
        config: SystemConfig,
    ) -> (Database, PublishedParams, QueryProfile) {
        let mut prof = Profiler::new("owner.build");
        // 1. Codebook over all corpus descriptors.
        prof.enter("codebook");
        let codebook = Codebook::train(corpus.config.kind, corpus.all_features(), akm);
        prof.exit();
        let (db, published) =
            self.build_system_with_codebook_config_prof(corpus, codebook, config, &mut prof);
        (db, published, prof.finish())
    }

    /// Setup with a pre-trained codebook (lets experiments reuse one
    /// codebook across schemes, exactly like the paper compares schemes on
    /// identical indexes).
    pub fn build_system_with_codebook(
        &self,
        corpus: &Corpus,
        codebook: Codebook,
        scheme: Scheme,
    ) -> (Database, PublishedParams) {
        self.build_system_with_codebook_config(corpus, codebook, SystemConfig::new(scheme))
    }

    /// [`Owner::build_system_with_codebook`] under an explicit
    /// [`SystemConfig`].
    pub fn build_system_with_codebook_config(
        &self,
        corpus: &Corpus,
        codebook: Codebook,
        config: SystemConfig,
    ) -> (Database, PublishedParams) {
        let mut prof = Profiler::new("owner.build");
        self.build_system_with_codebook_config_prof(corpus, codebook, config, &mut prof)
    }

    fn build_system_with_codebook_config_prof(
        &self,
        corpus: &Corpus,
        codebook: Codebook,
        config: SystemConfig,
        prof: &mut Profiler,
    ) -> (Database, PublishedParams) {
        // 2. BoVW-encode every image with the protocol's assignment rule.
        // Each image encodes independently; merged in image index order.
        prof.enter("encode");
        prof.add("images", corpus.images.len() as u64);
        let encodings: Vec<(ImageId, SparseBovw)> =
            par_map(config.concurrency, &corpus.images, |_, img| {
                (
                    img.id,
                    SparseBovw::encode(&codebook, img.features.iter().map(Vec::as_slice)),
                )
            });
        prof.exit();
        self.build_system_prepared_config_prof(corpus, codebook, encodings, config, prof)
    }

    /// Setup with pre-computed encodings (lets experiments amortize the
    /// encoding pass, the most expensive build step, across schemes).
    pub fn build_system_prepared(
        &self,
        corpus: &Corpus,
        codebook: Codebook,
        encodings: Vec<(ImageId, SparseBovw)>,
        scheme: Scheme,
    ) -> (Database, PublishedParams) {
        self.build_system_prepared_config(corpus, codebook, encodings, SystemConfig::new(scheme))
    }

    /// [`Owner::build_system_prepared`] under an explicit [`SystemConfig`].
    pub fn build_system_prepared_config(
        &self,
        corpus: &Corpus,
        codebook: Codebook,
        encodings: Vec<(ImageId, SparseBovw)>,
        config: SystemConfig,
    ) -> (Database, PublishedParams) {
        let mut prof = Profiler::new("owner.build");
        self.build_system_prepared_config_prof(corpus, codebook, encodings, config, &mut prof)
    }

    fn build_system_prepared_config_prof(
        &self,
        corpus: &Corpus,
        codebook: Codebook,
        encodings: Vec<(ImageId, SparseBovw)>,
        config: SystemConfig,
        prof: &mut Profiler,
    ) -> (Database, PublishedParams) {
        let SystemConfig {
            scheme,
            concurrency,
        } = config;
        prof.enter("model");
        let plain_encodings: Vec<SparseBovw> = encodings.iter().map(|(_, b)| b.clone()).collect();
        let model = ImpactModel::build(codebook.len(), &plain_encodings);
        prof.exit();
        let n_trees = codebook.forest.trees().len();
        let images: Vec<&SyntheticImage> = corpus.images.iter().collect();
        let db = self.build_ads(
            scheme,
            codebook,
            encodings,
            &model,
            &images,
            concurrency,
            prof,
        );
        prof.enter("sign_root");
        let root_signature = self
            .signing_key
            .sign(&root_signing_message(&db.mrkd.combined_root_digest()));
        prof.exit();
        if prof.is_recording() {
            imageproof_obs::global()
                .counter(
                    "imageproof_owner_builds_total",
                    &[("scheme", scheme.slug())],
                )
                .inc();
        }
        let published = PublishedParams {
            scheme,
            public_key: self.public_key(),
            root_signature,
            n_trees,
        };
        (db, published)
    }

    /// Steps 3–5 of the build for one ADS set — the whole corpus for a
    /// monolith, one partition for a shard: the inverted index, the MRKD
    /// forest over its list digests, and the per-image signatures. The
    /// impact model is passed in because sharded builds must share the
    /// owner's *global* model, or per-shard scores would diverge from the
    /// monolith's.
    #[allow(clippy::too_many_arguments)]
    fn build_ads(
        &self,
        scheme: Scheme,
        codebook: Codebook,
        encodings: Vec<(ImageId, SparseBovw)>,
        model: &ImpactModel,
        images: &[&SyntheticImage],
        concurrency: Concurrency,
        prof: &mut Profiler,
    ) -> Database {
        // 3. The inverted index (plain or grouped); per-cluster posting
        // lists, cuckoo filters, and digest chains build in parallel.
        prof.enter("index");
        prof.add("clusters", codebook.len() as u64);
        let inv = if scheme.grouped_index() {
            IndexVariant::Grouped(GroupedInvertedIndex::build_with(
                codebook.len(),
                &encodings,
                model,
                concurrency,
            ))
        } else {
            IndexVariant::Plain(MerkleInvertedIndex::build_with(
                codebook.len(),
                &encodings,
                model,
                concurrency,
            ))
        };
        prof.exit();

        // 4. The MRKD forest over the codebook's randomized k-d trees.
        prof.enter("mrkd");
        let mrkd = MrkdForest::build_with(
            &codebook.forest,
            &codebook.centers,
            &inv.list_digests(),
            scheme.candidate_mode(),
            concurrency,
        );
        prof.exit();

        // 5. Image signatures. Ed25519 signing is deterministic (RFC
        // 8032), so per-image signatures fan out without affecting the
        // bytes.
        prof.enter("sign");
        prof.add("images", images.len() as u64);
        let stored: BTreeMap<ImageId, StoredImage> =
            par_map_chunked(concurrency, images, 16, |_, img| {
                let signature = self
                    .signing_key
                    .sign(&image_signing_message(img.id, &img.data));
                (
                    img.id,
                    StoredImage {
                        data: img.data.clone(),
                        signature,
                    },
                )
            })
            .into_iter()
            .collect();
        prof.exit();

        Database {
            scheme,
            codebook,
            mrkd,
            inv,
            images: stored,
            encodings,
        }
    }

    /// Sharded setup: partitions the corpus with [`shard_of`], builds a
    /// full ADS set per shard — sharing one codebook and one *global*
    /// impact model, so per-shard scores are bit-identical to the monolith
    /// — and signs one manifest committing every shard root.
    pub fn build_sharded_system(
        &self,
        corpus: &Corpus,
        akm: &AkmParams,
        scheme: Scheme,
        shard_count: usize,
    ) -> ShardedSystem {
        self.build_sharded_system_config(corpus, akm, SystemConfig::new(scheme), shard_count)
    }

    /// [`Owner::build_sharded_system`] under an explicit [`SystemConfig`].
    pub fn build_sharded_system_config(
        &self,
        corpus: &Corpus,
        akm: &AkmParams,
        config: SystemConfig,
        shard_count: usize,
    ) -> ShardedSystem {
        let codebook = Codebook::train(corpus.config.kind, corpus.all_features(), akm);
        let encodings: Vec<(ImageId, SparseBovw)> =
            par_map(config.concurrency, &corpus.images, |_, img| {
                (
                    img.id,
                    SparseBovw::encode(&codebook, img.features.iter().map(Vec::as_slice)),
                )
            });
        self.build_sharded_system_prepared_config(corpus, codebook, encodings, config, shard_count)
    }

    /// Sharded setup from a pre-trained codebook and pre-computed
    /// encodings (amortizes the expensive steps across schemes and shard
    /// counts, exactly like the monolith `_prepared` path).
    pub fn build_sharded_system_prepared_config(
        &self,
        corpus: &Corpus,
        codebook: Codebook,
        encodings: Vec<(ImageId, SparseBovw)>,
        config: SystemConfig,
        shard_count: usize,
    ) -> ShardedSystem {
        assert!(
            shard_count > 0,
            "a sharded deployment needs at least one shard"
        );
        let SystemConfig {
            scheme,
            concurrency,
        } = config;
        let plain_encodings: Vec<SparseBovw> = encodings.iter().map(|(_, b)| b.clone()).collect();
        // One *global* impact model over the whole corpus: list weights
        // must not depend on the partition, or scores would not be
        // comparable across shards (and would diverge from the monolith).
        let model = ImpactModel::build(codebook.len(), &plain_encodings);
        let n_trees = codebook.forest.trees().len();
        let mut prof = Profiler::new("owner.build_sharded");
        let mut shards = Vec::with_capacity(shard_count);
        let mut roots = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let shard_encodings: Vec<(ImageId, SparseBovw)> = encodings
                .iter()
                .filter(|(id, _)| shard_of(*id, shard_count) == shard)
                .cloned()
                .collect();
            let shard_images: Vec<&SyntheticImage> = corpus
                .images
                .iter()
                .filter(|img| shard_of(img.id, shard_count) == shard)
                .collect();
            prof.enter("shard.build");
            prof.add("shard", shard as u64);
            let db = self.build_ads(
                scheme,
                codebook.clone(),
                shard_encodings,
                &model,
                &shard_images,
                concurrency,
                &mut prof,
            );
            prof.exit();
            roots.push(db.mrkd.combined_root_digest());
            shards.push(db);
        }
        if prof.is_recording() {
            imageproof_obs::global()
                .counter(
                    "imageproof_owner_sharded_builds_total",
                    &[("scheme", scheme.slug())],
                )
                .inc();
        }
        drop(prof.finish());
        let manifest = self.sign_manifest(roots);
        let published = PublishedParams {
            scheme,
            public_key: self.public_key(),
            // For a sharded deployment the manifest signature *is* the
            // root commitment; clients check sub-VO roots against the
            // manifest, never against `root_signature` directly.
            root_signature: manifest.signature,
            n_trees,
        };
        ShardedSystem {
            shards,
            manifest,
            published,
        }
    }

    /// Signs a manifest committing the given per-shard root digests.
    pub fn sign_manifest(&self, shard_roots: Vec<Digest>) -> ShardManifest {
        let root = manifest_root(&shard_roots).expect("a manifest needs at least one shard root");
        let signature = self
            .signing_key
            .sign(&manifest_signing_message(&root, shard_roots.len() as u32));
        ShardManifest {
            shard_roots,
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use imageproof_vision::{CorpusConfig, DescriptorKind};

    fn tiny() -> (Corpus, Owner) {
        let corpus = Corpus::generate(&CorpusConfig {
            n_images: 60,
            n_latent_words: 60,
            ..CorpusConfig::small(DescriptorKind::Surf)
        });
        (corpus, Owner::new(&[21u8; 32]))
    }

    fn tiny_akm() -> AkmParams {
        AkmParams {
            n_clusters: 48,
            n_trees: 3,
            max_leaf_size: 2,
            max_checks: 8,
            iterations: 1,
            seed: 5,
        }
    }

    #[test]
    fn database_covers_every_image_with_a_valid_signature() {
        let (corpus, owner) = tiny();
        let (db, published) = owner.build_system(&corpus, &tiny_akm(), Scheme::ImageProof);
        assert_eq!(db.images.len(), corpus.images.len());
        for img in &corpus.images {
            let stored = &db.images[&img.id];
            assert_eq!(stored.data, img.data);
            let msg = image_signing_message(img.id, &stored.data);
            assert!(published.public_key.verify(&msg, &stored.signature));
        }
    }

    #[test]
    fn root_signature_covers_the_mrkd_root() {
        let (corpus, owner) = tiny();
        let (db, published) = owner.build_system(&corpus, &tiny_akm(), Scheme::ImageProof);
        let msg = root_signing_message(&db.mrkd.combined_root_digest());
        assert!(published.public_key.verify(&msg, &published.root_signature));
        // Domain separation: the root message never verifies as an image
        // signature and vice versa.
        assert!(!published
            .public_key
            .verify(&msg[..32], &published.root_signature));
    }

    #[test]
    fn index_digests_are_embedded_in_the_forest() {
        let (corpus, owner) = tiny();
        for scheme in [Scheme::ImageProof, Scheme::OptimizedBoth] {
            let (db, _) = owner.build_system(&corpus, &tiny_akm(), scheme);
            let digests = db.inv.list_digests();
            for (c, d) in digests.iter().enumerate() {
                assert_eq!(db.mrkd.inv_digest(c as u32), *d, "{scheme:?} cluster {c}");
            }
        }
    }

    #[test]
    fn schemes_produce_distinct_root_digests() {
        // Different ADS layouts commit differently; a VO for one scheme can
        // never be replayed against another scheme's signature.
        let (corpus, owner) = tiny();
        let mut roots = std::collections::HashSet::new();
        for scheme in [
            Scheme::ImageProof,
            Scheme::OptimizedBovw,
            Scheme::OptimizedBoth,
        ] {
            let (db, _) = owner.build_system(&corpus, &tiny_akm(), scheme);
            assert!(roots.insert(db.mrkd.combined_root_digest()), "{scheme:?}");
        }
    }

    #[test]
    fn encodings_are_nonempty_and_cover_all_images() {
        let (corpus, owner) = tiny();
        let (db, _) = owner.build_system(&corpus, &tiny_akm(), Scheme::ImageProof);
        assert_eq!(db.encodings.len(), corpus.images.len());
        for (_, bovw) in &db.encodings {
            assert!(!bovw.is_empty());
        }
    }
}
