//! # imageproof-core
//!
//! The complete ImageProof protocol (Guo, Xu, Zhang, Xu, Xiang — *ImageProof:
//! Enabling Authentication for Large-Scale Image Retrieval*, ICDE 2019):
//! authenticated SIFT-based content-based image retrieval with a trusted
//! image owner, an untrusted service provider, and a verifying client.
//!
//! ```
//! use imageproof_akm::AkmParams;
//! use imageproof_core::{Client, Owner, Scheme, ServiceProvider};
//! use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};
//!
//! // Owner: build and outsource the database + ADSs.
//! let corpus = Corpus::generate(&CorpusConfig::small(DescriptorKind::Surf));
//! let owner = Owner::new(&[7u8; 32]);
//! let akm = AkmParams { n_clusters: 64, ..AkmParams::default() };
//! let (db, published) = owner.build_system(&corpus, &akm, Scheme::ImageProof);
//!
//! // SP: answer a top-k query with a verification object.
//! let sp = ServiceProvider::new(db);
//! let query = corpus.query_from_image(3, 30, 99);
//! let (response, _stats) = sp.query(&query, 5);
//!
//! // Client: verify soundness and completeness.
//! let client = Client::new(published);
//! let verified = client.verify(&query, 5, &response).expect("honest SP");
//! assert_eq!(verified.topk.len(), 5);
//! ```
//!
//! Module map: [`owner`] (§V-A ADS generation), [`sp`] (§V-B query
//! processing, Alg. 5), [`client`] (§V-C verification), [`scheme`] (the four
//! §VII schemes and the combined VO), [`adversary`] (the §V-D attack cases,
//! for tests).

pub mod adversary;
pub mod client;
pub(crate) mod fanout;
pub mod owner;
pub mod rpc;
pub mod scheme;
pub mod shard;
pub mod sp;
pub mod update;

pub use client::{Client, ClientError, ClientStats, VerifiedResult};
pub use imageproof_invindex::SpaceUsage;
pub use imageproof_parallel::Concurrency;
pub use owner::{Database, IndexVariant, Owner, PublishedParams, ShardedSystem, StoredImage};
pub use scheme::{BovwVoVariant, InvVoVariant, QueryVo, Scheme, SystemConfig};
pub use shard::{
    bovw_variant_digests, bovw_variant_with_digests, dedup_shared_section, manifest_leaf_digest,
    manifest_root, manifest_signing_message, shard_of, RootExpectation, ShardBovw, ShardManifest,
    ShardVo, ShardedError, ShardedResponse, ShardedVerifiedResult, ShardedVo, SharedSection,
    SubVerify,
};
pub use sp::{ImageResult, QueryResponse, ServiceProvider, ShardedSp, ShardedSpStats, SpStats};
pub use update::UpdateError;

#[cfg(test)]
mod tests {
    use super::*;
    use imageproof_akm::AkmParams;
    use imageproof_crypto::wire::{Decode, Encode};
    use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};

    fn small_akm(k: usize) -> AkmParams {
        AkmParams {
            n_clusters: k,
            n_trees: 4,
            max_leaf_size: 2,
            max_checks: 16,
            iterations: 2,
            seed: 11,
        }
    }

    fn setup(scheme: Scheme) -> (Corpus, ServiceProvider, Client) {
        // Codebook larger than the latent vocabulary, like the paper's
        // large/medium codebooks: quantization is fine, so assignment
        // thresholds stay small.
        let corpus = Corpus::generate(&CorpusConfig {
            n_latent_words: 100,
            ..CorpusConfig::small(DescriptorKind::Surf)
        });
        let owner = Owner::new(&[9u8; 32]);
        let (db, published) = owner.build_system(&corpus, &small_akm(128), scheme);
        (corpus, ServiceProvider::new(db), Client::new(published))
    }

    #[test]
    fn every_scheme_round_trips_honestly() {
        for scheme in Scheme::ALL {
            let (corpus, sp, client) = setup(scheme);
            let query = corpus.query_from_image(5, 25, 1);
            let (response, stats) = sp.query(&query, 5);
            let verified = client
                .verify(&query, 5, &response)
                .unwrap_or_else(|e| panic!("{scheme:?} rejected honest SP: {e}"));
            assert_eq!(verified.topk.len(), 5, "{scheme:?}");
            assert!(stats.bovw_seconds >= 0.0);
            // The query derives from image 5; it must rank in the top-5.
            assert!(
                verified.topk.iter().any(|&(id, _)| id == 5),
                "{scheme:?}: source image missing from top-k {:?}",
                verified.topk
            );
        }
    }

    #[test]
    fn all_schemes_agree_on_the_result_set() {
        let mut sets: Vec<Vec<u64>> = Vec::new();
        for scheme in Scheme::ALL {
            let (corpus, sp, _) = setup(scheme);
            let query = corpus.query_from_image(8, 25, 2);
            let (response, _) = sp.query(&query, 5);
            let mut ids: Vec<u64> = response.results.iter().map(|r| r.id).collect();
            ids.sort_unstable();
            sets.push(ids);
        }
        // All schemes index the same corpus with the same codebook seed, so
        // the top-k sets must agree (scores may differ in float rounding
        // between grouped/ungrouped accumulation, but the sets coincide for
        // non-degenerate queries).
        for s in &sets[1..] {
            assert_eq!(s, &sets[0]);
        }
    }

    #[test]
    fn query_vo_round_trips_on_the_wire() {
        for scheme in Scheme::ALL {
            let (corpus, sp, _) = setup(scheme);
            let query = corpus.query_from_image(2, 20, 3);
            let (response, _) = sp.query(&query, 3);
            let bytes = response.vo.to_wire();
            let decoded = QueryVo::from_wire(&bytes).expect("round trip");
            assert_eq!(decoded, response.vo, "{scheme:?}");
        }
    }

    #[test]
    fn tampered_image_data_is_rejected() {
        let (corpus, sp, client) = setup(Scheme::ImageProof);
        let query = corpus.query_from_image(1, 20, 4);
        let (mut response, _) = sp.query(&query, 4);
        adversary::tamper_image_data(&mut response);
        assert!(matches!(
            client.verify(&query, 4, &response),
            Err(ClientError::ImageSignatureInvalid { .. })
        ));
    }

    #[test]
    fn forged_signature_is_rejected() {
        let (corpus, sp, client) = setup(Scheme::ImageProof);
        let query = corpus.query_from_image(1, 20, 5);
        let (mut response, _) = sp.query(&query, 4);
        adversary::forge_image_signature(&mut response);
        assert!(matches!(
            client.verify(&query, 4, &response),
            Err(ClientError::ImageSignatureInvalid { .. })
        ));
    }

    #[test]
    fn substituted_result_is_rejected() {
        let (corpus, sp, client) = setup(Scheme::ImageProof);
        let query = corpus.query_from_image(1, 20, 6);
        let (mut response, _) = sp.query(&query, 4);
        // Pick a database image not in the results; its payload and
        // signature are genuine, but it is not a true winner.
        let winner_ids: Vec<u64> = response.results.iter().map(|r| r.id).collect();
        let substitute = corpus
            .images
            .iter()
            .find(|img| !winner_ids.contains(&img.id))
            .expect("non-winner exists");
        let stored = sp.database().images[&substitute.id].clone();
        adversary::substitute_result(&mut response, substitute.id, stored.data, stored.signature);
        assert!(client.verify(&query, 4, &response).is_err());
    }

    #[test]
    fn tampered_posting_is_rejected() {
        for scheme in [Scheme::ImageProof, Scheme::OptimizedBoth] {
            let (corpus, sp, client) = setup(scheme);
            let query = corpus.query_from_image(1, 20, 7);
            let (mut response, _) = sp.query(&query, 4);
            assert!(adversary::tamper_posting(&mut response));
            assert!(
                matches!(
                    client.verify(&query, 4, &response),
                    Err(ClientError::Inv(_))
                ),
                "{scheme:?}"
            );
        }
    }

    #[test]
    fn tampered_bovw_centroid_is_rejected() {
        for scheme in [Scheme::Baseline, Scheme::ImageProof, Scheme::OptimizedBovw] {
            let (corpus, sp, client) = setup(scheme);
            let query = corpus.query_from_image(1, 20, 8);
            let (mut response, _) = sp.query(&query, 4);
            assert!(adversary::tamper_bovw_centroid(&mut response), "{scheme:?}");
            assert!(client.verify(&query, 4, &response).is_err(), "{scheme:?}");
        }
    }

    #[test]
    fn tampered_bovw_split_is_rejected() {
        let (corpus, sp, client) = setup(Scheme::ImageProof);
        let query = corpus.query_from_image(1, 20, 9);
        let (mut response, _) = sp.query(&query, 4);
        assert!(adversary::tamper_bovw_split(&mut response));
        assert!(matches!(
            client.verify(&query, 4, &response),
            Err(ClientError::RootSignatureInvalid) | Err(ClientError::Bovw(_))
        ));
    }

    #[test]
    fn wrong_owner_key_is_rejected() {
        let corpus = Corpus::generate(&CorpusConfig::small(DescriptorKind::Surf));
        let owner = Owner::new(&[9u8; 32]);
        let impostor = Owner::new(&[10u8; 32]);
        let (db, mut published) = owner.build_system(&corpus, &small_akm(64), Scheme::ImageProof);
        published.public_key = impostor.public_key();
        let sp = ServiceProvider::new(db);
        let client = Client::new(published);
        let query = corpus.query_from_image(0, 20, 10);
        let (response, _) = sp.query(&query, 3);
        assert!(matches!(
            client.verify(&query, 3, &response),
            Err(ClientError::RootSignatureInvalid)
        ));
    }

    #[test]
    fn scheme_mismatch_is_detected() {
        // A client configured for ImageProof must reject a Baseline-shaped
        // VO even when the underlying database is identical.
        let (corpus, sp_baseline, _) = setup(Scheme::Baseline);
        let (_, _, client_imageproof) = setup(Scheme::ImageProof);
        let query = corpus.query_from_image(3, 20, 12);
        let (response, _) = sp_baseline.query(&query, 3);
        assert!(matches!(
            client_imageproof.verify(&query, 3, &response),
            Err(ClientError::SchemeMismatch)
        ));
    }

    #[test]
    fn result_signature_shape_mismatch_is_detected() {
        let (corpus, sp, client) = setup(Scheme::ImageProof);
        let query = corpus.query_from_image(3, 20, 13);
        let (mut response, _) = sp.query(&query, 3);
        response.vo.signatures.pop();
        assert!(matches!(
            client.verify(&query, 3, &response),
            Err(ClientError::ResultShapeMismatch)
        ));
    }

    #[test]
    fn dropping_a_result_row_is_detected() {
        let (corpus, sp, client) = setup(Scheme::ImageProof);
        let query = corpus.query_from_image(3, 20, 14);
        let (mut response, _) = sp.query(&query, 3);
        response.results.pop();
        response.vo.signatures.pop();
        assert!(client.verify(&query, 3, &response).is_err());
    }

    #[test]
    fn reordering_results_keeps_the_set_verifiable() {
        // Definition 1 is a set property: the client accepts any order of
        // the genuine top-k (scores are re-derived per image).
        let (corpus, sp, client) = setup(Scheme::ImageProof);
        let query = corpus.query_from_image(3, 20, 15);
        let (mut response, _) = sp.query(&query, 4);
        response.results.swap(0, 3);
        response.vo.signatures.swap(0, 3);
        let verified = client
            .verify(&query, 4, &response)
            .expect("reordered genuine set verifies");
        assert_eq!(verified.topk[0].0, response.results[0].id);
    }

    #[test]
    fn shared_vo_is_smaller_and_optimized_smaller_still() {
        let sizes: Vec<usize> = Scheme::ALL
            .iter()
            .map(|&scheme| {
                let (corpus, sp, _) = setup(scheme);
                let query = corpus.query_from_image(4, 30, 11);
                let (response, _) = sp.query(&query, 5);
                response.vo.wire_size()
            })
            .collect();
        // Baseline > ImageProof > Optimized(BoVW) >= Optimized(Both).
        assert!(
            sizes[0] > sizes[1],
            "baseline {} <= imageproof {}",
            sizes[0],
            sizes[1]
        );
        assert!(
            sizes[1] > sizes[2],
            "imageproof {} <= opt-bovw {}",
            sizes[1],
            sizes[2]
        );
        assert!(
            sizes[2] >= sizes[3],
            "opt-bovw {} < opt-both {}",
            sizes[2],
            sizes[3]
        );
    }
}
