//! Cross-shard merge, trim planning, and VO assembly, shared by the
//! in-process [`crate::ShardedSp`] and the socket coordinator
//! (`crate::rpc`).
//!
//! Both deployments answer a sharded top-k query the same way: fan the
//! full-k query out to every shard, merge the local winners, re-query
//! shards whose claims can be trimmed, and assemble the sharded VO with
//! its shared section. The fan-out *transport* differs (function call vs
//! length-prefixed RPC frame), but everything downstream of the per-shard
//! responses is deterministic and lives here — so the coordinator's output
//! is bit-equal to `ShardedSp`'s by construction, not by parallel
//! maintenance of two merge implementations (asserted end-to-end by the
//! `rpc_equivalence` suite).

use crate::scheme::InvVoVariant;
use crate::shard::{dedup_shared_section, ShardBovw, ShardVo, ShardedVo};
use crate::sp::{ImageResult, QueryResponse};
use imageproof_crypto::Signature;
use imageproof_vision::ImageId;
use std::collections::BTreeMap;

/// The merge verdict over the full-k fan-out: the k global winners (as
/// `(shard, id, score)`, strongest first) and each shard's winner count.
pub(crate) struct MergeOutcome {
    pub candidates: Vec<(usize, ImageId, f32)>,
    pub contributed: Vec<usize>,
}

/// Merges the per-shard local top-ks under `(score desc, id asc)` — the
/// same order the per-shard engines use — and keeps the k global winners.
/// Scores are shard-invariant (global impact model), so this merge
/// reproduces the monolith top-k exactly.
pub(crate) fn merge_candidates(full: &[QueryResponse], k: usize) -> MergeOutcome {
    let mut candidates: Vec<(usize, ImageId, f32)> = Vec::new();
    for (shard, resp) in full.iter().enumerate() {
        for r in &resp.results {
            candidates.push((shard, r.id, r.score));
        }
    }
    candidates.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.1.cmp(&b.1)));
    candidates.truncate(k);
    let mut contributed = vec![0usize; full.len()];
    for &(shard, _, _) in &candidates {
        contributed[shard] += 1;
    }
    MergeOutcome {
        candidates,
        contributed,
    }
}

/// The shards whose sub-VO can be merge-trimmed, as `(shard, k')` with
/// k' = min(j + 1, k): a shard contributing j entries must prove its local
/// top-k'; shards with j ≥ k − 1 reuse the fan-out response verbatim.
pub(crate) fn trim_targets(contributed: &[usize], k: usize) -> Vec<(usize, usize)> {
    (0..contributed.len())
        .filter_map(|s| {
            let k_trim = (contributed[s] + 1).min(k);
            (k_trim < k).then_some((s, k_trim))
        })
        .collect()
}

/// One trim re-query result: the shard's local top-k', the inverted-index
/// VO proving it, and the claimed images' owner signatures (in claim
/// order). The signatures ride with the trim so the assembler needs no
/// database access — over RPC the shard server extracts them from its own
/// store, exactly as the in-process engine does.
pub(crate) type TrimOutcome = (Vec<(ImageId, f32)>, InvVoVariant, Vec<Signature>);

/// The assembled sharded answer plus the assembly's own byte accounting.
pub(crate) struct Assembled {
    pub results: Vec<ImageResult>,
    pub vo: ShardedVo,
    /// Entries the merge trim dropped from sub-VO claims, summed over
    /// shards (full-k fan-out length minus trimmed claim length).
    pub trimmed_entries: usize,
    /// Response bytes the shared-section dedup removed.
    pub dedup_bytes_saved: usize,
}

/// Assembles the global results and the sharded VO: sub-VOs in ascending
/// shard order (trimmed claims where a trim outcome exists, the full-k
/// fan-out response verbatim otherwise), then deduplicates the shards'
/// common BoVW geometry into the response's shared section.
pub(crate) fn assemble_response(
    full: &[QueryResponse],
    merge: &MergeOutcome,
    trimmed: &BTreeMap<usize, TrimOutcome>,
) -> Assembled {
    let mut results = Vec::with_capacity(merge.candidates.len());
    for &(shard, id, score) in &merge.candidates {
        if let Some(r) = full[shard].results.iter().find(|r| r.id == id) {
            results.push(ImageResult {
                id,
                data: r.data.clone(),
                score,
            });
        }
    }
    let mut shard_vos = Vec::with_capacity(full.len());
    let mut trimmed_entries = 0usize;
    for (shard, resp) in full.iter().enumerate() {
        let (claimed, inv, signatures): (Vec<ImageId>, InvVoVariant, Vec<Signature>) =
            match trimmed.get(&shard) {
                Some((topk, inv, signatures)) => {
                    let claimed: Vec<ImageId> = topk.iter().map(|&(id, _)| id).collect();
                    trimmed_entries += resp.results.len().saturating_sub(claimed.len());
                    (claimed, inv.clone(), signatures.clone())
                }
                None => (
                    resp.results.iter().map(|r| r.id).collect(),
                    resp.vo.inv.clone(),
                    resp.vo.signatures.clone(),
                ),
            };
        shard_vos.push(ShardVo {
            shard_id: shard as u32,
            contributed: merge.contributed[shard] as u32,
            claimed,
            bovw: ShardBovw::Inline(resp.vo.bovw.clone()),
            inv,
            signatures,
        });
    }
    let (shared, dedup_bytes_saved) = dedup_shared_section(&mut shard_vos);
    Assembled {
        results,
        vo: ShardedVo {
            shard_count: full.len() as u32,
            shared,
            shards: shard_vos,
        },
        trimmed_entries,
        dedup_bytes_saved,
    }
}
