//! Malicious-SP behaviours for the §V-D security analysis.
//!
//! Each function takes an honest [`QueryResponse`] and mutates it the way a
//! cheating SP would, covering the three attack cases of Theorem 1:
//!
//! 1. forging the BoVW vector (tampering MRKD disclosures);
//! 2. forging the top-k set (swapping winners, tampering postings or
//!    filters);
//! 3. returning fake image data (with a stale or forged signature).
//!
//! Integration and unit tests assert the client rejects every one of them.

use crate::scheme::{BovwVoVariant, InvVoVariant, QueryVo};
use crate::sp::QueryResponse;
use imageproof_crypto::Signature;
use imageproof_mrkd::{Reveal, VoNode};

/// Case 3: replace the first result's raw bytes (keeping its signature).
pub fn tamper_image_data(response: &mut QueryResponse) {
    let first = response.results.first_mut().expect("response has results");
    first.data[0] ^= 0xFF;
}

/// Case 3: replace the first result's signature with garbage.
pub fn forge_image_signature(response: &mut QueryResponse) {
    let QueryVo { signatures, .. } = &mut response.vo;
    signatures[0] = Signature::from_bytes([0x42; 64]);
}

/// Case 2: swap the first result for a different image of the database
/// (with that image's own *valid* payload and signature) while leaving the
/// inverted-index VO untouched — a "plausible" substitution attack.
pub fn substitute_result(
    response: &mut QueryResponse,
    substitute_id: u64,
    substitute_data: Vec<u8>,
    substitute_sig: Signature,
) {
    let first = response.results.first_mut().expect("response has results");
    first.id = substitute_id;
    first.data = substitute_data;
    response.vo.signatures[0] = substitute_sig;
}

/// Case 2: tamper a popped posting's impact value in the inverted VO.
pub fn tamper_posting(response: &mut QueryResponse) -> bool {
    match &mut response.vo.inv {
        InvVoVariant::Plain(vo) => {
            for list in &mut vo.lists {
                if let Some(p) = list.popped.first_mut() {
                    p.1 *= 0.5;
                    return true;
                }
            }
            false
        }
        InvVoVariant::Grouped(vo) => {
            for list in &mut vo.lists {
                if let Some(g) = list.popped.first_mut() {
                    g.members[0].1 *= 2.0;
                    return true;
                }
            }
            false
        }
    }
}

/// Case 1: tamper a revealed centroid coordinate in the BoVW VO.
pub fn tamper_bovw_centroid(response: &mut QueryResponse) -> bool {
    fn walk(node: &mut VoNode) -> bool {
        match node {
            VoNode::Pruned(_) => false,
            VoNode::Leaf { entries } => {
                for e in entries {
                    match &mut e.reveal {
                        Reveal::Full { coords } | Reveal::FullCompressed { coords } => {
                            coords[0] += 0.5;
                            return true;
                        }
                        Reveal::Partial { .. } => {}
                    }
                }
                false
            }
            VoNode::Internal { left, right, .. } => walk(left) || walk(right),
        }
    }
    match &mut response.vo.bovw {
        BovwVoVariant::Shared(vo) => vo.trees.iter_mut().any(walk),
        BovwVoVariant::PerQuery(vo) => vo
            .per_query
            .iter_mut()
            .any(|q| q.trees.iter_mut().any(walk)),
    }
}

/// Case 1: tamper a splitting hyperplane in the BoVW VO (changes the
/// reconstructed root).
pub fn tamper_bovw_split(response: &mut QueryResponse) -> bool {
    fn walk(node: &mut VoNode) -> bool {
        match node {
            VoNode::Pruned(_) | VoNode::Leaf { .. } => false,
            VoNode::Internal {
                value, left, right, ..
            } => {
                *value += 0.125;
                let _ = (left, right);
                true
            }
        }
    }
    match &mut response.vo.bovw {
        BovwVoVariant::Shared(vo) => vo.trees.iter_mut().any(walk),
        BovwVoVariant::PerQuery(vo) => vo
            .per_query
            .iter_mut()
            .any(|q| q.trees.iter_mut().any(walk)),
    }
}
