//! The length-prefixed frame format and the RPC request/response messages.
//!
//! A frame is `[u32 LE body length][body]`; the body is one [`Request`] or
//! [`Response`] in the workspace's canonical `Encode` wire format, so every
//! byte arriving from the network is parsed by the same audited
//! `Reader`/`bound_len` path as VO decoding. The frame length itself is
//! bounded by [`MAX_FRAME_LEN`] *before* any allocation, and
//! [`FrameBuffer`] only ever allocates in proportion to bytes actually
//! received — a hostile length prefix can announce 4 GiB but buys nothing.
//!
//! Observability splits across two frames by design: the query/trim
//! *payload* frames carry only deterministic data (results, VOs, counter
//! statistics), while span profiles and registry snapshots ride in a
//! separate [`Response::Telemetry`] frame sent only when the request asked
//! for it. Payload frame bytes are therefore identical whether recording
//! is on or off — the socket extension of the repo's zero-perturbation
//! guarantee (`tests/rpc_equivalence.rs`).

use super::RpcError;
use crate::scheme::{InvVoVariant, QueryVo};
use crate::sp::{ImageResult, QueryResponse, SpStats};
use imageproof_crypto::wire::{Decode, Encode, Reader, WireError, Writer};
use imageproof_crypto::{Digest, Signature};
use imageproof_obs::{HistogramSnapshot, MetricId, QueryProfile, RegistrySnapshot, SpanRecord};
use std::collections::BTreeMap;

/// Hard cap on a frame body: 256 MiB, comfortably above the largest
/// baseline-scheme VO the benches produce and far below anything that
/// could be mistaken for a sane allocation request.
pub const MAX_FRAME_LEN: usize = 1 << 28;

/// Span nesting deeper than this decodes to [`WireError::DepthExceeded`].
const MAX_SPAN_DEPTH: usize = 32;

/// Interned remote span names are capped; past the cap, spans decode under
/// this fallback label rather than growing the table without bound.
const MAX_INTERNED_NAMES: usize = 4096;

/// Wraps a message body in a length-prefixed frame.
pub fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 4);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Incremental frame parser: feed it whatever the socket yields (partial
/// writes included) and pull complete frame bodies out. Allocation tracks
/// received bytes, never the announced length.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends raw bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet drained as a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame body, `Ok(None)` if more bytes are
    /// needed, or [`RpcError::FrameTooLarge`] for a hostile length prefix
    /// (checked against [`MAX_FRAME_LEN`] before anything is allocated).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, RpcError> {
        let Some(header) = self.buf.get(..4) else {
            return Ok(None);
        };
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(RpcError::FrameTooLarge { len: len as u64 });
        }
        let Some(body) = self.buf.get(4..4 + len) else {
            return Ok(None);
        };
        let body = body.to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(body))
    }
}

// ---------------------------------------------------------------------------
// Shared field helpers.

fn encode_string(w: &mut Writer, s: &str) {
    w.bytes(s.as_bytes());
}

/// Strings on the wire are advisory telemetry labels; invalid UTF-8 from a
/// hostile peer decodes lossily rather than erroring, keeping the decoder
/// total without inventing a new `WireError` variant.
fn decode_string(r: &mut Reader<'_>) -> Result<String, WireError> {
    Ok(String::from_utf8_lossy(&r.bytes()?).into_owned())
}

fn encode_f64(w: &mut Writer, v: f64) {
    w.u64(v.to_bits());
}

fn decode_f64(r: &mut Reader<'_>) -> Result<f64, WireError> {
    Ok(f64::from_bits(r.u64()?))
}

fn encode_bool(w: &mut Writer, v: bool) {
    w.u8(u8::from(v));
}

fn decode_bool(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(WireError::InvalidTag(t)),
    }
}

fn encode_features(w: &mut Writer, features: &[Vec<f32>]) {
    w.seq_len(features.len());
    for f in features {
        w.seq_len(f.len());
        for &v in f {
            w.f32(v);
        }
    }
}

fn decode_features(r: &mut Reader<'_>) -> Result<Vec<Vec<f32>>, WireError> {
    let n = r.seq_len()?;
    let mut features = Vec::with_capacity(n);
    for _ in 0..n {
        let m = r.seq_len()?;
        let mut f = Vec::with_capacity(m);
        for _ in 0..m {
            f.push(r.f32()?);
        }
        features.push(f);
    }
    Ok(features)
}

fn decode_signature(r: &mut Reader<'_>) -> Result<Signature, WireError> {
    let bytes = r.bytes()?;
    let arr: [u8; 64] = bytes.try_into().map_err(|_| WireError::UnexpectedEnd)?;
    Ok(Signature::from_bytes(arr))
}

// ---------------------------------------------------------------------------
// Requests.

/// A coordinator → shard request. `id` is echoed by the matching response;
/// the coordinator keeps one request outstanding per connection, so any
/// response with another id is a duplicate, reorder, or replay.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Opening handshake: asks the shard to identify itself so the
    /// coordinator can pin it against the owner-signed manifest.
    Hello,
    /// One full-k query (the fan-out phase).
    Query {
        id: u64,
        k: u32,
        /// Ask for a [`Response::Telemetry`] frame ahead of the payload.
        want_telemetry: bool,
        features: Vec<Vec<f32>>,
    },
    /// Several concurrent client queries batched onto one round-trip.
    QueryBatch {
        id: u64,
        k: u32,
        want_telemetry: bool,
        queries: Vec<Vec<Vec<f32>>>,
    },
    /// One trim re-query at `k_trim` (the merge-trim phase).
    Trim {
        id: u64,
        k_trim: u32,
        features: Vec<Vec<f32>>,
    },
    /// The trim re-queries of a query batch, one entry per trimmed query.
    TrimBatch {
        id: u64,
        items: Vec<(u32, Vec<Vec<f32>>)>,
    },
    /// Heartbeat: asks the shard for a [`WireHealth`] report. The
    /// coordinator re-verifies the reported root against the owner-signed
    /// manifest pin, so a shard cannot report healthy under the wrong
    /// committed state.
    Health { id: u64 },
}

impl Encode for Request {
    fn encode(&self, w: &mut Writer) {
        match self {
            Request::Hello => w.u8(1),
            Request::Query {
                id,
                k,
                want_telemetry,
                features,
            } => {
                w.u8(2);
                w.u64(*id);
                w.u32(*k);
                encode_bool(w, *want_telemetry);
                encode_features(w, features);
            }
            Request::QueryBatch {
                id,
                k,
                want_telemetry,
                queries,
            } => {
                w.u8(3);
                w.u64(*id);
                w.u32(*k);
                encode_bool(w, *want_telemetry);
                w.seq_len(queries.len());
                for q in queries {
                    encode_features(w, q);
                }
            }
            Request::Trim {
                id,
                k_trim,
                features,
            } => {
                w.u8(4);
                w.u64(*id);
                w.u32(*k_trim);
                encode_features(w, features);
            }
            Request::TrimBatch { id, items } => {
                w.u8(5);
                w.u64(*id);
                w.seq_len(items.len());
                for (k_trim, features) in items {
                    w.u32(*k_trim);
                    encode_features(w, features);
                }
            }
            Request::Health { id } => {
                w.u8(6);
                w.u64(*id);
            }
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            1 => Ok(Request::Hello),
            2 => Ok(Request::Query {
                id: r.u64()?,
                k: r.u32()?,
                want_telemetry: decode_bool(r)?,
                features: decode_features(r)?,
            }),
            3 => {
                let id = r.u64()?;
                let k = r.u32()?;
                let want_telemetry = decode_bool(r)?;
                let n = r.seq_len()?;
                let mut queries = Vec::with_capacity(n);
                for _ in 0..n {
                    queries.push(decode_features(r)?);
                }
                Ok(Request::QueryBatch {
                    id,
                    k,
                    want_telemetry,
                    queries,
                })
            }
            4 => Ok(Request::Trim {
                id: r.u64()?,
                k_trim: r.u32()?,
                features: decode_features(r)?,
            }),
            5 => {
                let id = r.u64()?;
                let n = r.seq_len()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let k_trim = r.u32()?;
                    items.push((k_trim, decode_features(r)?));
                }
                Ok(Request::TrimBatch { id, items })
            }
            6 => Ok(Request::Health { id: r.u64()? }),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

// ---------------------------------------------------------------------------
// Health reports.

/// The classified last error a shard server observed — a closed set so
/// health aggregation never has to parse free text. Strict on the wire:
/// an unknown class byte is a decode error, not a silently invented
/// category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ErrorClass {
    /// No error observed this epoch.
    #[default]
    None,
    /// A frame failed to decode.
    Wire,
    /// A length prefix exceeded the frame cap.
    Oversize,
    /// A transport-level read/write failure.
    Io,
}

impl ErrorClass {
    /// Stable exposition name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorClass::None => "none",
            ErrorClass::Wire => "wire",
            ErrorClass::Oversize => "oversize",
            ErrorClass::Io => "io",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            ErrorClass::None => 0,
            ErrorClass::Wire => 1,
            ErrorClass::Oversize => 2,
            ErrorClass::Io => 3,
        }
    }

    /// Total mapping back from the wire byte.
    pub fn from_u8(v: u8) -> Result<ErrorClass, WireError> {
        match v {
            0 => Ok(ErrorClass::None),
            1 => Ok(ErrorClass::Wire),
            2 => Ok(ErrorClass::Oversize),
            3 => Ok(ErrorClass::Io),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

/// A shard's heartbeat report. The `root` field is load-bearing: the
/// coordinator checks it against the manifest pin on every heartbeat, so
/// "healthy" is only ever attributed to the committed shard state the
/// owner signed — a replica serving a different catalog cannot pass.
#[derive(Clone, Debug, PartialEq)]
pub struct WireHealth {
    pub shard_id: u32,
    pub shard_count: u32,
    /// The shard's committed ADS root, re-verified by the receiver.
    pub root: Digest,
    /// Seconds since this server process started serving.
    pub uptime_seconds: f64,
    /// Requests currently being served on this shard's connections.
    pub queue_depth: u64,
    /// Cumulative queries answered since launch.
    pub queries_served: u64,
    /// The most recent error the server observed, classified.
    pub last_error: ErrorClass,
}

impl Encode for WireHealth {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.shard_id);
        w.u32(self.shard_count);
        w.digest(&self.root);
        encode_f64(w, self.uptime_seconds);
        w.u64(self.queue_depth);
        w.u64(self.queries_served);
        w.u8(self.last_error.to_u8());
    }
}

impl Decode for WireHealth {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(WireHealth {
            shard_id: r.u32()?,
            shard_count: r.u32()?,
            root: r.digest()?,
            uptime_seconds: decode_f64(r)?,
            queue_depth: r.u64()?,
            queries_served: r.u64()?,
            last_error: ErrorClass::from_u8(r.u8()?)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Response payloads.

/// Deterministic per-query statistics: the counter half of
/// [`SpStats`], with the span-derived `*_seconds` fields deliberately
/// absent so payload frames stay byte-identical whether observability
/// recording is on or off.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WireStats {
    pub shared_ratio: f64,
    pub popped: u64,
    pub total_postings: u64,
    pub hashes_computed: u64,
    pub hashes_cached: u64,
    pub blocks_skipped: u64,
    pub blocks_scanned: u64,
}

impl WireStats {
    pub fn from_stats(stats: &SpStats) -> WireStats {
        WireStats {
            shared_ratio: stats.shared_ratio,
            popped: stats.popped as u64,
            total_postings: stats.total_postings as u64,
            hashes_computed: stats.hashes_computed as u64,
            hashes_cached: stats.hashes_cached as u64,
            blocks_skipped: stats.blocks_skipped as u64,
            blocks_scanned: stats.blocks_scanned as u64,
        }
    }

    /// Reconstructs [`SpStats`] with the non-deterministic seconds fields
    /// zeroed (they never cross the payload wire).
    pub fn to_stats(self) -> SpStats {
        SpStats {
            bovw_seconds: 0.0,
            inv_seconds: 0.0,
            shared_ratio: self.shared_ratio,
            popped: self.popped as usize,
            total_postings: self.total_postings as usize,
            hashes_computed: self.hashes_computed as usize,
            hashes_cached: self.hashes_cached as usize,
            blocks_skipped: self.blocks_skipped as usize,
            blocks_scanned: self.blocks_scanned as usize,
        }
    }
}

impl Encode for WireStats {
    fn encode(&self, w: &mut Writer) {
        encode_f64(w, self.shared_ratio);
        w.varint(self.popped);
        w.varint(self.total_postings);
        w.varint(self.hashes_computed);
        w.varint(self.hashes_cached);
        w.varint(self.blocks_skipped);
        w.varint(self.blocks_scanned);
    }
}

impl Decode for WireStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(WireStats {
            shared_ratio: decode_f64(r)?,
            popped: r.varint()?,
            total_postings: r.varint()?,
            hashes_computed: r.varint()?,
            hashes_cached: r.varint()?,
            blocks_skipped: r.varint()?,
            blocks_scanned: r.varint()?,
        })
    }
}

/// One shard's full answer to a fan-out query: the local top-k with image
/// payloads, the per-shard [`QueryVo`], and the deterministic counters.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryPayload {
    pub results: Vec<ImageResult>,
    pub vo: QueryVo,
    pub stats: WireStats,
}

impl QueryPayload {
    pub fn from_response(resp: &QueryResponse, stats: &SpStats) -> QueryPayload {
        QueryPayload {
            results: resp.results.clone(),
            vo: resp.vo.clone(),
            stats: WireStats::from_stats(stats),
        }
    }

    pub fn into_response(self) -> (QueryResponse, SpStats) {
        (
            QueryResponse {
                results: self.results,
                vo: self.vo,
            },
            self.stats.to_stats(),
        )
    }
}

impl Encode for QueryPayload {
    fn encode(&self, w: &mut Writer) {
        w.seq_len(self.results.len());
        for r in &self.results {
            w.u64(r.id);
            w.f32(r.score);
            w.bytes(&r.data);
        }
        self.vo.encode(w);
        self.stats.encode(w);
    }
}

impl Decode for QueryPayload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len()?;
        let mut results = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.u64()?;
            let score = r.f32()?;
            let data = r.bytes()?;
            results.push(ImageResult { id, data, score });
        }
        Ok(QueryPayload {
            results,
            vo: QueryVo::decode(r)?,
            stats: WireStats::decode(r)?,
        })
    }
}

/// One shard's answer to a trim re-query: its local top-k', the
/// inverted-index proof, and the claimed images' owner signatures (in
/// claim order) — everything `fanout::assemble_response` needs without a
/// database in the coordinator's address space.
#[derive(Clone, Debug, PartialEq)]
pub struct TrimPayload {
    pub topk: Vec<(u64, f32)>,
    pub inv: InvVoVariant,
    pub signatures: Vec<Signature>,
}

impl Encode for TrimPayload {
    fn encode(&self, w: &mut Writer) {
        w.seq_len(self.topk.len());
        for &(id, score) in &self.topk {
            w.u64(id);
            w.f32(score);
        }
        self.inv.encode(w);
        w.seq_len(self.signatures.len());
        for s in &self.signatures {
            w.bytes(&s.0);
        }
    }
}

impl Decode for TrimPayload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len()?;
        let mut topk = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.u64()?;
            let score = r.f32()?;
            topk.push((id, score));
        }
        let inv = InvVoVariant::decode(r)?;
        let ns = r.seq_len()?;
        let mut signatures = Vec::with_capacity(ns);
        for _ in 0..ns {
            signatures.push(decode_signature(r)?);
        }
        Ok(TrimPayload {
            topk,
            inv,
            signatures,
        })
    }
}

// ---------------------------------------------------------------------------
// Telemetry: span profiles and registry snapshots across the wire.

/// A [`SpanRecord`] with owned names, as it travels the wire. Remote names
/// are interned back to `&'static str` on conversion so
/// `Profiler::attach` grafts remote profiles exactly like local ones.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireSpan {
    pub name: String,
    pub seconds: f64,
    pub counters: Vec<(String, u64)>,
    pub children: Vec<WireSpan>,
}

impl WireSpan {
    fn from_record(rec: &SpanRecord) -> WireSpan {
        WireSpan {
            name: rec.name.to_owned(),
            seconds: rec.seconds,
            counters: rec
                .counters
                .iter()
                .map(|&(n, v)| (n.to_owned(), v))
                .collect(),
            children: rec.children.iter().map(WireSpan::from_record).collect(),
        }
    }

    fn to_record(&self) -> SpanRecord {
        SpanRecord {
            name: intern_span_name(&self.name),
            seconds: self.seconds,
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (intern_span_name(n), *v))
                .collect(),
            children: self.children.iter().map(WireSpan::to_record).collect(),
        }
    }

    fn encode_at(&self, w: &mut Writer) {
        encode_string(w, &self.name);
        encode_f64(w, self.seconds);
        w.seq_len(self.counters.len());
        for (n, v) in &self.counters {
            encode_string(w, n);
            w.varint(*v);
        }
        w.seq_len(self.children.len());
        for c in &self.children {
            c.encode_at(w);
        }
    }

    fn decode_at(r: &mut Reader<'_>, depth: usize) -> Result<WireSpan, WireError> {
        if depth > MAX_SPAN_DEPTH {
            return Err(WireError::DepthExceeded);
        }
        let name = decode_string(r)?;
        let seconds = decode_f64(r)?;
        let nc = r.seq_len()?;
        let mut counters = Vec::with_capacity(nc);
        for _ in 0..nc {
            let n = decode_string(r)?;
            let v = r.varint()?;
            counters.push((n, v));
        }
        let nk = r.seq_len()?;
        let mut children = Vec::with_capacity(nk);
        for _ in 0..nk {
            children.push(WireSpan::decode_at(r, depth + 1)?);
        }
        Ok(WireSpan {
            name,
            seconds,
            counters,
            children,
        })
    }
}

impl Encode for WireSpan {
    fn encode(&self, w: &mut Writer) {
        self.encode_at(w);
    }
}

impl Decode for WireSpan {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        WireSpan::decode_at(r, 0)
    }
}

/// Span names live in program text on the recording side
/// (`&'static str`); names arriving from a shard are dynamic. This table
/// leaks each distinct remote name once — capped, with a fallback label
/// past the cap — so remote spans can re-enter the `SpanRecord` shape and
/// `Profiler::attach` needs no wire-specific variant. Not called from any
/// decoder: decoding keeps owned strings, only profile *grafting* interns.
fn intern_span_name(name: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static TABLE: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut table = match TABLE.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(&interned) = table.get(name) {
        return interned;
    }
    if table.len() >= MAX_INTERNED_NAMES {
        return "rpc.span.overflow";
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    table.insert(leaked);
    leaked
}

/// A [`QueryProfile`] as it travels the wire.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireProfile {
    pub root: Option<WireSpan>,
}

impl WireProfile {
    pub fn from_profile(profile: &QueryProfile) -> WireProfile {
        WireProfile {
            root: profile.root.as_ref().map(WireSpan::from_record),
        }
    }

    /// Rebuilds a local [`QueryProfile`] (interning remote span names) so
    /// the coordinator can `Profiler::attach` it under its own spans.
    pub fn to_profile(&self) -> QueryProfile {
        QueryProfile {
            root: self.root.as_ref().map(WireSpan::to_record),
        }
    }
}

impl Encode for WireProfile {
    fn encode(&self, w: &mut Writer) {
        match &self.root {
            None => w.u8(0),
            Some(span) => {
                w.u8(1);
                span.encode(w);
            }
        }
    }
}

impl Decode for WireProfile {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(WireProfile { root: None }),
            1 => Ok(WireProfile {
                root: Some(WireSpan::decode(r)?),
            }),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

/// A metric identity on the wire (mirrors `imageproof_obs::MetricId`,
/// which cannot implement the wire traits itself without inverting the
/// crate dependency).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireMetricId {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl WireMetricId {
    fn from_id(id: &MetricId) -> WireMetricId {
        WireMetricId {
            name: id.name.clone(),
            labels: id.labels.clone(),
        }
    }

    fn to_id(&self) -> MetricId {
        MetricId {
            name: self.name.clone(),
            labels: self.labels.clone(),
        }
    }
}

impl Encode for WireMetricId {
    fn encode(&self, w: &mut Writer) {
        encode_string(w, &self.name);
        w.seq_len(self.labels.len());
        for (k, v) in &self.labels {
            encode_string(w, k);
            encode_string(w, v);
        }
    }
}

impl Decode for WireMetricId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = decode_string(r)?;
        let n = r.seq_len()?;
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let k = decode_string(r)?;
            let v = decode_string(r)?;
            labels.push((k, v));
        }
        Ok(WireMetricId { name, labels })
    }
}

/// A histogram snapshot on the wire (mirrors
/// `imageproof_obs::HistogramSnapshot`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireHistogram {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl Encode for WireHistogram {
    fn encode(&self, w: &mut Writer) {
        w.varint(self.count);
        w.varint(self.sum);
        w.seq_len(self.buckets.len());
        for &(bound, n) in &self.buckets {
            w.varint(bound);
            w.varint(n);
        }
    }
}

impl Decode for WireHistogram {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let count = r.varint()?;
        let sum = r.varint()?;
        let n = r.seq_len()?;
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            let bound = r.varint()?;
            let cnt = r.varint()?;
            buckets.push((bound, cnt));
        }
        Ok(WireHistogram {
            count,
            sum,
            buckets,
        })
    }
}

/// A full registry snapshot on the wire: the shard's cumulative counters,
/// gauges, and histograms, so coordinator-side obs aggregation keeps
/// working when the shards leave the process.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireRegistry {
    pub counters: Vec<(WireMetricId, u64)>,
    pub gauges: Vec<(WireMetricId, i64)>,
    pub histograms: Vec<(WireMetricId, WireHistogram)>,
}

impl WireRegistry {
    pub fn from_snapshot(snap: &RegistrySnapshot) -> WireRegistry {
        WireRegistry {
            counters: snap
                .counters
                .iter()
                .map(|(id, v)| (WireMetricId::from_id(id), *v))
                .collect(),
            gauges: snap
                .gauges
                .iter()
                .map(|(id, v)| (WireMetricId::from_id(id), *v))
                .collect(),
            histograms: snap
                .histograms
                .iter()
                .map(|(id, h)| {
                    (
                        WireMetricId::from_id(id),
                        WireHistogram {
                            count: h.count,
                            sum: h.sum,
                            buckets: h.buckets.clone(),
                        },
                    )
                })
                .collect(),
        }
    }

    pub fn to_snapshot(&self) -> RegistrySnapshot {
        let mut counters = BTreeMap::new();
        for (id, v) in &self.counters {
            counters.insert(id.to_id(), *v);
        }
        let mut gauges = BTreeMap::new();
        for (id, v) in &self.gauges {
            gauges.insert(id.to_id(), *v);
        }
        let mut histograms = BTreeMap::new();
        for (id, h) in &self.histograms {
            histograms.insert(
                id.to_id(),
                HistogramSnapshot {
                    count: h.count,
                    sum: h.sum,
                    buckets: h.buckets.clone(),
                },
            );
        }
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl Encode for WireRegistry {
    fn encode(&self, w: &mut Writer) {
        w.seq_len(self.counters.len());
        for (id, v) in &self.counters {
            id.encode(w);
            w.varint(*v);
        }
        w.seq_len(self.gauges.len());
        for (id, v) in &self.gauges {
            id.encode(w);
            w.u64(*v as u64);
        }
        w.seq_len(self.histograms.len());
        for (id, h) in &self.histograms {
            id.encode(w);
            h.encode(w);
        }
    }
}

impl Decode for WireRegistry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let nc = r.seq_len()?;
        let mut counters = Vec::with_capacity(nc);
        for _ in 0..nc {
            let id = WireMetricId::decode(r)?;
            let v = r.varint()?;
            counters.push((id, v));
        }
        let ng = r.seq_len()?;
        let mut gauges = Vec::with_capacity(ng);
        for _ in 0..ng {
            let id = WireMetricId::decode(r)?;
            let v = r.u64()? as i64;
            gauges.push((id, v));
        }
        let nh = r.seq_len()?;
        let mut histograms = Vec::with_capacity(nh);
        for _ in 0..nh {
            let id = WireMetricId::decode(r)?;
            let h = WireHistogram::decode(r)?;
            histograms.push((id, h));
        }
        Ok(WireRegistry {
            counters,
            gauges,
            histograms,
        })
    }
}

// ---------------------------------------------------------------------------
// Responses.

/// A shard → coordinator response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The shard's identity, pinned against the manifest at connect time:
    /// its shard id, the deployment's shard count, and its committed ADS
    /// root (which must equal the owner-signed manifest entry).
    Hello {
        shard_id: u32,
        shard_count: u32,
        root: Digest,
    },
    Query {
        id: u64,
        payload: QueryPayload,
    },
    QueryBatch {
        id: u64,
        payloads: Vec<QueryPayload>,
    },
    Trim {
        id: u64,
        payload: TrimPayload,
    },
    TrimBatch {
        id: u64,
        payloads: Vec<TrimPayload>,
    },
    /// Observability sidecar, sent *before* the matching payload frame and
    /// only when the request set `want_telemetry`. Spoofing or corrupting
    /// this frame can never change a served VO byte.
    Telemetry {
        id: u64,
        profile: WireProfile,
        registry: WireRegistry,
    },
    /// The server could not serve the request.
    Error {
        id: u64,
        message: String,
    },
    /// Heartbeat answer: the shard's health report, root included so the
    /// coordinator can re-verify it against the manifest pin.
    Health {
        id: u64,
        health: WireHealth,
    },
}

impl Response {
    /// The request id this response answers.
    pub fn id(&self) -> u64 {
        match self {
            Response::Hello { .. } => 0,
            Response::Query { id, .. }
            | Response::QueryBatch { id, .. }
            | Response::Trim { id, .. }
            | Response::TrimBatch { id, .. }
            | Response::Telemetry { id, .. }
            | Response::Error { id, .. }
            | Response::Health { id, .. } => *id,
        }
    }
}

impl Encode for Response {
    fn encode(&self, w: &mut Writer) {
        match self {
            Response::Hello {
                shard_id,
                shard_count,
                root,
            } => {
                w.u8(1);
                w.u32(*shard_id);
                w.u32(*shard_count);
                w.digest(root);
            }
            Response::Query { id, payload } => {
                w.u8(2);
                w.u64(*id);
                payload.encode(w);
            }
            Response::QueryBatch { id, payloads } => {
                w.u8(3);
                w.u64(*id);
                w.seq_len(payloads.len());
                for p in payloads {
                    p.encode(w);
                }
            }
            Response::Trim { id, payload } => {
                w.u8(4);
                w.u64(*id);
                payload.encode(w);
            }
            Response::TrimBatch { id, payloads } => {
                w.u8(5);
                w.u64(*id);
                w.seq_len(payloads.len());
                for p in payloads {
                    p.encode(w);
                }
            }
            Response::Telemetry {
                id,
                profile,
                registry,
            } => {
                w.u8(6);
                w.u64(*id);
                profile.encode(w);
                registry.encode(w);
            }
            Response::Error { id, message } => {
                w.u8(7);
                w.u64(*id);
                encode_string(w, message);
            }
            Response::Health { id, health } => {
                w.u8(8);
                w.u64(*id);
                health.encode(w);
            }
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            1 => Ok(Response::Hello {
                shard_id: r.u32()?,
                shard_count: r.u32()?,
                root: r.digest()?,
            }),
            2 => Ok(Response::Query {
                id: r.u64()?,
                payload: QueryPayload::decode(r)?,
            }),
            3 => {
                let id = r.u64()?;
                let n = r.seq_len()?;
                let mut payloads = Vec::with_capacity(n);
                for _ in 0..n {
                    payloads.push(QueryPayload::decode(r)?);
                }
                Ok(Response::QueryBatch { id, payloads })
            }
            4 => Ok(Response::Trim {
                id: r.u64()?,
                payload: TrimPayload::decode(r)?,
            }),
            5 => {
                let id = r.u64()?;
                let n = r.seq_len()?;
                let mut payloads = Vec::with_capacity(n);
                for _ in 0..n {
                    payloads.push(TrimPayload::decode(r)?);
                }
                Ok(Response::TrimBatch { id, payloads })
            }
            6 => Ok(Response::Telemetry {
                id: r.u64()?,
                profile: WireProfile::decode(r)?,
                registry: WireRegistry::decode(r)?,
            }),
            7 => Ok(Response::Error {
                id: r.u64()?,
                message: decode_string(r)?,
            }),
            8 => Ok(Response::Health {
                id: r.u64()?,
                health: WireHealth::decode(r)?,
            }),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imageproof_crypto::Digest;

    fn sample_features() -> Vec<Vec<f32>> {
        vec![vec![0.25, -1.5, 3.0], vec![7.75, 0.0]]
    }

    fn sample_span() -> WireSpan {
        WireSpan {
            name: "sp.query".into(),
            seconds: 0.125,
            counters: vec![("popped".into(), 41)],
            children: vec![WireSpan {
                name: "bovw".into(),
                seconds: 0.0625,
                counters: Vec::new(),
                children: Vec::new(),
            }],
        }
    }

    fn sample_registry() -> WireRegistry {
        WireRegistry {
            counters: vec![(
                WireMetricId {
                    name: "imageproof_sp_queries_total".into(),
                    labels: vec![("scheme".into(), "imageproof".into())],
                },
                7,
            )],
            gauges: vec![(
                WireMetricId {
                    name: "g".into(),
                    labels: Vec::new(),
                },
                -3,
            )],
            histograms: vec![(
                WireMetricId {
                    name: "h".into(),
                    labels: Vec::new(),
                },
                WireHistogram {
                    count: 2,
                    sum: 10,
                    buckets: vec![(4, 1), (8, 1)],
                },
            )],
        }
    }

    #[test]
    fn requests_round_trip_on_the_wire() {
        let samples = [
            Request::Hello,
            Request::Query {
                id: 9,
                k: 5,
                want_telemetry: true,
                features: sample_features(),
            },
            Request::QueryBatch {
                id: 10,
                k: 3,
                want_telemetry: false,
                queries: vec![sample_features(), Vec::new()],
            },
            Request::Trim {
                id: 11,
                k_trim: 2,
                features: sample_features(),
            },
            Request::TrimBatch {
                id: 12,
                items: vec![(1, sample_features()), (4, Vec::new())],
            },
            Request::Health { id: 13 },
        ];
        for sample in &samples {
            let decoded = Request::from_wire(&sample.to_wire()).expect("request round trip");
            assert_eq!(&decoded, sample);
        }
        // Truncations of every sample must error, never panic.
        for sample in &samples {
            let wire = sample.to_wire();
            for cut in 0..wire.len() {
                assert!(Request::from_wire(&wire[..cut]).is_err());
            }
        }
    }

    #[test]
    fn responses_round_trip_on_the_wire() {
        let hello = Response::Hello {
            shard_id: 3,
            shard_count: 8,
            root: Digest::of(b"root"),
        };
        let telemetry = Response::Telemetry {
            id: 21,
            profile: WireProfile {
                root: Some(sample_span()),
            },
            registry: sample_registry(),
        };
        let error = Response::Error {
            id: 22,
            message: "bad request".into(),
        };
        let health = Response::Health {
            id: 23,
            health: sample_health(),
        };
        for sample in [&hello, &telemetry, &error, &health] {
            let wire = sample.to_wire();
            let decoded = Response::from_wire(&wire).expect("response round trip");
            assert_eq!(decoded.to_wire(), wire, "canonical re-encode");
            for cut in 0..wire.len() {
                assert!(Response::from_wire(&wire[..cut]).is_err());
            }
        }
    }

    fn sample_health() -> WireHealth {
        WireHealth {
            shard_id: 2,
            shard_count: 4,
            root: Digest::of(b"health-root"),
            uptime_seconds: 12.5,
            queue_depth: 3,
            queries_served: 99,
            last_error: ErrorClass::Wire,
        }
    }

    #[test]
    fn wire_health_round_trips_and_rejects_unknown_error_class() {
        let health = sample_health();
        let wire = health.to_wire();
        let decoded = WireHealth::from_wire(&wire).expect("health round trip");
        assert_eq!(decoded, health);
        for cut in 0..wire.len() {
            assert!(WireHealth::from_wire(&wire[..cut]).is_err());
        }
        // The error class is a closed set: an unknown byte is a wire
        // error, never a silently invented category.
        let mut bad = wire.clone();
        let last = bad.len() - 1;
        bad[last] = 17;
        assert!(WireHealth::from_wire(&bad).is_err());
        for (raw, class) in [
            (0u8, ErrorClass::None),
            (1, ErrorClass::Wire),
            (2, ErrorClass::Oversize),
            (3, ErrorClass::Io),
        ] {
            assert_eq!(ErrorClass::from_u8(raw).unwrap(), class);
            assert!(!class.name().is_empty());
        }
        assert!(ErrorClass::from_u8(4).is_err());
    }

    #[test]
    fn wire_stats_round_trips_and_strips_seconds() {
        let stats = SpStats {
            bovw_seconds: 1.0,
            inv_seconds: 2.0,
            shared_ratio: 0.5,
            popped: 10,
            total_postings: 20,
            hashes_computed: 3,
            hashes_cached: 4,
            blocks_skipped: 5,
            blocks_scanned: 6,
        };
        let wire = WireStats::from_stats(&stats);
        let decoded = WireStats::from_wire(&wire.to_wire()).expect("stats round trip");
        assert_eq!(decoded, wire);
        let back = decoded.to_stats();
        assert_eq!(back.popped, 10);
        assert_eq!(back.bovw_seconds, 0.0, "seconds never cross the wire");
        assert_eq!(back.inv_seconds, 0.0);
    }

    #[test]
    fn trim_payload_round_trips_on_the_wire() {
        use imageproof_invindex::InvVo;
        let payload = TrimPayload {
            topk: vec![(5, 1.5), (9, 0.25)],
            inv: InvVoVariant::Plain(InvVo { lists: Vec::new() }),
            signatures: vec![Signature::from_bytes([7u8; 64])],
        };
        let decoded = TrimPayload::from_wire(&payload.to_wire()).expect("trim round trip");
        assert_eq!(decoded.topk, payload.topk);
        assert_eq!(decoded.signatures, payload.signatures);
    }

    #[test]
    fn query_payload_round_trips_on_the_wire() {
        use imageproof_invindex::InvVo;
        use imageproof_mrkd::BovwVo;
        let payload = QueryPayload {
            results: vec![ImageResult {
                id: 4,
                data: vec![1, 2, 3],
                score: 2.5,
            }],
            vo: QueryVo {
                bovw: crate::scheme::BovwVoVariant::Shared(BovwVo { trees: Vec::new() }),
                inv: InvVoVariant::Plain(InvVo { lists: Vec::new() }),
                signatures: vec![Signature::from_bytes([9u8; 64])],
            },
            stats: WireStats::default(),
        };
        let decoded = QueryPayload::from_wire(&payload.to_wire()).expect("payload round trip");
        assert_eq!(decoded.to_wire(), payload.to_wire());
        let (resp, stats) = decoded.into_response();
        assert_eq!(resp.results.len(), 1);
        assert_eq!(stats.popped, 0);
    }

    #[test]
    fn wire_span_and_profile_round_trip_and_intern() {
        let span = sample_span();
        let decoded = WireSpan::from_wire(&span.to_wire()).expect("span round trip");
        assert_eq!(decoded, span);

        let profile = WireProfile {
            root: Some(span.clone()),
        };
        let decoded = WireProfile::from_wire(&profile.to_wire()).expect("profile round trip");
        assert_eq!(decoded, profile);
        let local = decoded.to_profile();
        let root = local.root.expect("profile has a root");
        assert_eq!(root.name, "sp.query");
        assert_eq!(root.children[0].name, "bovw");
        // Interning is stable: the same remote name maps to one pointer.
        assert!(std::ptr::eq(
            intern_span_name("sp.query"),
            intern_span_name("sp.query")
        ));

        let empty = WireProfile::from_wire(&WireProfile::default().to_wire());
        assert_eq!(
            empty.expect("empty profile round trip"),
            WireProfile::default()
        );
    }

    #[test]
    fn deep_span_nesting_is_rejected() {
        let mut span = WireSpan {
            name: "leaf".into(),
            ..WireSpan::default()
        };
        for _ in 0..(MAX_SPAN_DEPTH + 2) {
            span = WireSpan {
                name: "n".into(),
                seconds: 0.0,
                counters: Vec::new(),
                children: vec![span],
            };
        }
        assert_eq!(
            WireSpan::from_wire(&span.to_wire()),
            Err(WireError::DepthExceeded)
        );
    }

    #[test]
    fn wire_registry_round_trips_through_snapshots() {
        let wire = sample_registry();
        let decoded = WireRegistry::from_wire(&wire.to_wire()).expect("registry round trip");
        assert_eq!(decoded, wire);
        let snap = decoded.to_snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.gauges.values().next(), Some(&-3));
        let back = WireRegistry::from_snapshot(&snap);
        assert_eq!(back, wire);

        let metric_id = WireMetricId {
            name: "m".into(),
            labels: vec![("a".into(), "b".into())],
        };
        assert_eq!(
            WireMetricId::from_wire(&metric_id.to_wire()).expect("metric id round trip"),
            metric_id
        );
        let histogram = WireHistogram {
            count: 1,
            sum: 2,
            buckets: vec![(3, 1)],
        };
        assert_eq!(
            WireHistogram::from_wire(&histogram.to_wire()).expect("histogram round trip"),
            histogram
        );
    }

    #[test]
    fn frame_buffer_reassembles_partial_writes() {
        let body = Request::Query {
            id: 1,
            k: 2,
            want_telemetry: false,
            features: sample_features(),
        }
        .to_wire();
        let framed = frame(&body);
        let mut fb = FrameBuffer::new();
        // Trickle one byte at a time: no frame until the last byte lands.
        for (i, &b) in framed.iter().enumerate() {
            fb.extend(&[b]);
            if i + 1 < framed.len() {
                assert!(fb
                    .next_frame()
                    .expect("no error on partial frame")
                    .is_none());
            }
        }
        let got = fb.next_frame().expect("complete frame parses");
        assert_eq!(got, Some(body.clone()));
        assert_eq!(fb.pending(), 0);

        // Two frames in one burst drain in order.
        fb.extend(&frame(&body));
        fb.extend(&frame(b"second"));
        assert_eq!(fb.next_frame().expect("first frame"), Some(body));
        assert_eq!(
            fb.next_frame().expect("second frame"),
            Some(b"second".to_vec())
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut fb = FrameBuffer::new();
        fb.extend(&u32::MAX.to_le_bytes());
        assert_eq!(
            fb.next_frame(),
            Err(RpcError::FrameTooLarge {
                len: u64::from(u32::MAX)
            })
        );
        let mut fb = FrameBuffer::new();
        fb.extend(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        assert!(matches!(
            fb.next_frame(),
            Err(RpcError::FrameTooLarge { .. })
        ));
    }
}
