//! [`RpcCoordinator`]: the socket deployment's fan-out engine.
//!
//! One nonblocking connection per shard, driven by a single-threaded event
//! loop: a fan-out round writes every shard's request, then multiplexes
//! reads across all connections until every response (or a typed failure)
//! is in. Concurrent client queries batch onto one `QueryBatch` /
//! `TrimBatch` round-trip per shard instead of a socket conversation per
//! query.
//!
//! Fault handling: every transport fault — stalled shard (per-shard
//! timeout on a [`Stopwatch`] deadline), mid-frame reset, short write,
//! hostile frame length, duplicated/replayed response id — maps to a typed
//! [`RpcError`]; if the shard's endpoint chain has untried replicas the
//! coordinator reconnects to the next one (hello re-verified against the
//! owner-signed manifest pin), replays the request, and counts a failover.
//! Only when the chain is exhausted does the triggering error surface.
//!
//! Everything downstream of the per-shard responses is the shared
//! [`fanout`] code, so the assembled [`ShardedResponse`] is bit-equal to
//! the in-process [`crate::ShardedSp`] — asserted end-to-end by
//! `tests/rpc_equivalence.rs`.

use super::frame::{frame, FrameBuffer, Request, Response, WireHealth};
use super::RpcError;
use crate::fanout;
use crate::shard::{ShardManifest, ShardedResponse};
use crate::sp::{QueryResponse, ShardedSpStats, SpStats};
use imageproof_crypto::wire::{Decode, Encode};
use imageproof_crypto::Digest;
use imageproof_obs::{
    micros, EventKind, EventLog, MetricId, Profiler, QueryProfile, RegistrySnapshot,
    ScrapeProvider, SloTracker, Stopwatch, WindowedHistogram,
};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Events retained by the coordinator's ring.
const COORDINATOR_EVENT_CAPACITY: usize = 1024;

/// Where one shard lives: a primary address plus failover replicas, tried
/// in order. Every endpoint must present the same manifest-pinned
/// identity; a replica serving a different ADS root is rejected at hello
/// time exactly like a primary would be.
#[derive(Clone, Debug)]
pub struct ShardEndpoint {
    pub primary: SocketAddr,
    pub replicas: Vec<SocketAddr>,
}

impl ShardEndpoint {
    pub fn single(primary: SocketAddr) -> ShardEndpoint {
        ShardEndpoint {
            primary,
            replicas: Vec::new(),
        }
    }

    pub fn with_replicas(primary: SocketAddr, replicas: Vec<SocketAddr>) -> ShardEndpoint {
        ShardEndpoint { primary, replicas }
    }

    fn chain(&self) -> Vec<SocketAddr> {
        let mut chain = Vec::with_capacity(1 + self.replicas.len());
        chain.push(self.primary);
        chain.extend(self.replicas.iter().copied());
        chain
    }
}

/// Timeouts and health thresholds, all in seconds (converted through
/// `Duration`; the coordinator's only clock is the observability
/// [`Stopwatch`]).
#[derive(Clone, Copy, Debug)]
pub struct CoordinatorConfig {
    /// Per-shard deadline for one request round-trip; a shard that blows
    /// it is treated as stalled and failed over.
    pub request_timeout_seconds: f64,
    /// TCP connect deadline per endpoint attempt.
    pub connect_timeout_seconds: f64,
    /// Deadline for the hello exchange after a connect.
    pub hello_timeout_seconds: f64,
    /// Deadline for one heartbeat round-trip. Deliberately much shorter
    /// than `request_timeout_seconds`: a stalled shard misses heartbeats
    /// and is failed over *before* any query would hit its deadline.
    pub heartbeat_timeout_seconds: f64,
    /// Consecutive heartbeat misses before a shard is marked degraded.
    pub degraded_after_misses: u32,
    /// Consecutive heartbeat misses before the coordinator proactively
    /// fails over to the next replica (dead if the chain is exhausted).
    pub failover_after_misses: u32,
    /// Queries slower than this are recorded in the event log and burn
    /// the SLO budget.
    pub slow_query_threshold_seconds: f64,
    /// Width of the rolling SLO / latency window.
    pub slo_window_seconds: f64,
    /// Allowed fraction of slow queries (the SLO error budget).
    pub slo_budget: f64,
}

impl Default for CoordinatorConfig {
    fn default() -> CoordinatorConfig {
        CoordinatorConfig {
            request_timeout_seconds: 5.0,
            connect_timeout_seconds: 1.0,
            hello_timeout_seconds: 2.0,
            heartbeat_timeout_seconds: 0.5,
            degraded_after_misses: 1,
            failover_after_misses: 2,
            slow_query_threshold_seconds: 1.0,
            slo_window_seconds: 60.0,
            slo_budget: 0.01,
        }
    }
}

/// The coordinator's verdict on one shard, driven by heartbeats.
///
/// `Healthy → Degraded → Dead` on consecutive misses, back to `Healthy`
/// on a verified heartbeat or a successful manifest-pinned failover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealthState {
    /// Heartbeats arrive in time and carry the pinned root.
    Healthy,
    /// At least `degraded_after_misses` consecutive misses.
    Degraded,
    /// The failover threshold was crossed and the endpoint chain is
    /// exhausted — queries to this shard will fail until it recovers.
    Dead,
}

impl ShardHealthState {
    /// Stable exposition name.
    pub fn name(self) -> &'static str {
        match self {
            ShardHealthState::Healthy => "healthy",
            ShardHealthState::Degraded => "degraded",
            ShardHealthState::Dead => "dead",
        }
    }
}

/// One shard's aggregated health, as the coordinator sees it.
#[derive(Clone, Debug)]
pub struct ShardHealthView {
    pub state: ShardHealthState,
    /// Consecutive heartbeat misses (reset by a verified heartbeat).
    pub missed_heartbeats: u32,
    /// Verified heartbeats received in total.
    pub heartbeats_ok: u64,
    /// The last verified report, if any arrived yet.
    pub last_report: Option<WireHealth>,
}

impl Default for ShardHealthView {
    fn default() -> ShardHealthView {
        ShardHealthView {
            state: ShardHealthState::Healthy,
            missed_heartbeats: 0,
            heartbeats_ok: 0,
            last_report: None,
        }
    }
}

/// The coordinator's shareable observability plane: per-shard health,
/// rolling latency windows, the SLO tracker, and the event ring. Lives in
/// an `Arc` so the scrape server's threads read it while the
/// single-threaded coordinator loop writes it.
pub struct FleetHealth {
    health: Mutex<Vec<ShardHealthView>>,
    windows: Vec<WindowedHistogram>,
    slo: SloTracker,
    events: EventLog,
    pinned_roots: Vec<Digest>,
}

/// A poisoned health lock only means a scrape thread panicked mid-read;
/// the data is plain-old-data, so recover the guard instead of poisoning
/// the whole serving plane.
fn lock_health(fleet: &FleetHealth) -> MutexGuard<'_, Vec<ShardHealthView>> {
    fleet.health.lock().unwrap_or_else(|e| e.into_inner())
}

impl FleetHealth {
    fn new(
        shard_count: usize,
        pinned_roots: Vec<Digest>,
        config: &CoordinatorConfig,
    ) -> FleetHealth {
        FleetHealth {
            health: Mutex::new(vec![ShardHealthView::default(); shard_count]),
            windows: (0..shard_count)
                .map(|_| WindowedHistogram::new(config.slo_window_seconds))
                .collect(),
            slo: SloTracker::new(
                micros(config.slow_query_threshold_seconds),
                config.slo_budget,
                config.slo_window_seconds,
            ),
            events: EventLog::new(COORDINATOR_EVENT_CAPACITY),
            pinned_roots,
        }
    }

    /// Per-shard health snapshots, by shard id.
    pub fn views(&self) -> Vec<ShardHealthView> {
        lock_health(self).clone()
    }

    /// Per-shard states only, by shard id.
    pub fn states(&self) -> Vec<ShardHealthState> {
        lock_health(self).iter().map(|v| v.state).collect()
    }

    /// The fleet's bounded structured event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The SLO tracker over coordinator round-trip latencies.
    pub fn slo(&self) -> &SloTracker {
        &self.slo
    }

    /// One shard's rolling latency window (micros), if the shard exists.
    pub fn window(&self, shard: usize) -> Option<&WindowedHistogram> {
        self.windows.get(shard)
    }

    /// The rolling latency view merged across every shard — the windowed
    /// p50/p90/p99 source for fig16 and the scrape endpoint.
    pub fn windowed_latency(&self) -> imageproof_obs::HistogramSnapshot {
        let mut merged = imageproof_obs::HistogramSnapshot::default();
        for w in &self.windows {
            merged = merged.merge(&w.snapshot());
        }
        merged
    }

    /// Moves one shard's state machine, logging the transition. Returns
    /// the new state.
    fn transition(&self, shard: usize, to: ShardHealthState, why: &str) -> ShardHealthState {
        let mut health = lock_health(self);
        let Some(view) = health.get_mut(shard) else {
            return to;
        };
        if view.state != to {
            let from = view.state;
            view.state = to;
            drop(health);
            self.events.record(
                EventKind::HealthTransition,
                Some(shard as u32),
                format!("{} -> {}: {why}", from.name(), to.name()),
            );
        }
        to
    }

    /// The overall fleet verdict: the worst shard state.
    pub fn overall(&self) -> ShardHealthState {
        let mut overall = ShardHealthState::Healthy;
        for v in lock_health(self).iter() {
            overall = match (overall, v.state) {
                (_, ShardHealthState::Dead) | (ShardHealthState::Dead, _) => ShardHealthState::Dead,
                (_, ShardHealthState::Degraded) | (ShardHealthState::Degraded, _) => {
                    ShardHealthState::Degraded
                }
                _ => ShardHealthState::Healthy,
            };
        }
        overall
    }

    /// The `/healthz` body: overall status plus one entry per shard with
    /// its pinned root, state, and last verified report.
    pub fn healthz_json(&self) -> String {
        let views = self.views();
        let shards: Vec<String> = views
            .iter()
            .enumerate()
            .map(|(s, v)| {
                let report = match &v.last_report {
                    Some(h) => format!(
                        "{{\"uptime_seconds\": {:.3}, \"queue_depth\": {}, \"queries_served\": {}, \"last_error\": \"{}\"}}",
                        h.uptime_seconds, h.queue_depth, h.queries_served, h.last_error.name()
                    ),
                    None => "null".to_string(),
                };
                let root = self
                    .pinned_roots
                    .get(s)
                    .map(|r| r.to_hex())
                    .unwrap_or_default();
                format!(
                    "{{\"shard\": {s}, \"state\": \"{}\", \"missed_heartbeats\": {}, \"heartbeats_ok\": {}, \"pinned_root\": \"{root}\", \"report\": {report}}}",
                    v.state.name(),
                    v.missed_heartbeats,
                    v.heartbeats_ok,
                )
            })
            .collect();
        format!(
            "{{\"role\": \"coordinator\", \"status\": \"{}\", \"shards\": [{}]}}",
            self.overall().name(),
            shards.join(", ")
        )
    }
}

/// The scrape-endpoint view of a [`FleetHealth`]: process metrics plus
/// injected windowed-SLO and health-state series.
struct FleetScrapeProvider {
    fleet: Arc<FleetHealth>,
}

impl ScrapeProvider for FleetScrapeProvider {
    fn healthz_json(&self) -> String {
        self.fleet.healthz_json()
    }

    fn registry_snapshot(&self) -> RegistrySnapshot {
        let mut snap = imageproof_obs::global().snapshot();
        let gauge = |name: &str, labels: Vec<(String, String)>, v: i64| {
            (
                MetricId {
                    name: name.to_string(),
                    labels,
                },
                v,
            )
        };
        for (s, w) in self.fleet.windows.iter().enumerate() {
            let labels = vec![("shard".to_string(), s.to_string())];
            let windowed = w.snapshot();
            for (q, qname) in [(0.50, "p50"), (0.90, "p90"), (0.99, "p99")] {
                if let Some(v) = windowed.quantile(q) {
                    let mut labels = labels.clone();
                    labels.push(("quantile".to_string(), qname.to_string()));
                    labels.sort();
                    let (id, v) = gauge(
                        "imageproof_rpc_windowed_latency_micros",
                        labels,
                        v.min(i64::MAX as u64) as i64,
                    );
                    snap.gauges.insert(id, v);
                }
            }
        }
        for (s, v) in self.fleet.views().iter().enumerate() {
            let labels = vec![("shard".to_string(), s.to_string())];
            let state = match v.state {
                ShardHealthState::Healthy => 0,
                ShardHealthState::Degraded => 1,
                ShardHealthState::Dead => 2,
            };
            let (id, v) = gauge("imageproof_shard_health_state", labels, state);
            snap.gauges.insert(id, v);
        }
        if let Some(rate) = self.fleet.slo.burn_rate() {
            // Milli-units: gauges are integers and burn rates near 1.0
            // matter at the third decimal.
            let milli = (rate * 1000.0).clamp(0.0, i64::MAX as f64) as i64;
            let (id, v) = gauge("imageproof_slo_burn_rate_milli", Vec::new(), milli);
            snap.gauges.insert(id, v);
        }
        snap.counters.insert(
            MetricId {
                name: "imageproof_slo_breached_total".to_string(),
                labels: Vec::new(),
            },
            self.fleet.slo.breached_total(),
        );
        for kind in imageproof_obs::EVENT_KINDS {
            snap.counters.insert(
                MetricId {
                    name: "imageproof_fleet_events_total".to_string(),
                    labels: vec![("kind".to_string(), kind.name().to_string())],
                },
                self.fleet.events.count(kind),
            );
        }
        snap
    }

    fn events_jsonl(&self) -> String {
        self.fleet.events.jsonl()
    }
}

/// Transport-level accounting, kept outside the query results so the
/// served bytes stay free of anything nondeterministic.
#[derive(Clone, Debug, Default)]
pub struct CoordinatorStats {
    /// Replica failovers performed since connect.
    pub failovers: u64,
    /// Completed round-trip latencies per shard, in seconds, in issue
    /// order (quantiles are computed by sorting a copy — see
    /// [`CoordinatorStats::latency_quantile`]).
    pub rpc_seconds: Vec<Vec<f64>>,
}

impl CoordinatorStats {
    /// The `q`-quantile (0 ≤ q ≤ 1, nearest-rank) of one shard's recorded
    /// round-trip latencies, or `None` when nothing completed yet.
    pub fn latency_quantile(&self, shard: usize, q: f64) -> Option<f64> {
        let samples = self.rpc_seconds.get(shard)?;
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(sorted.len() - 1);
        Some(sorted[rank])
    }
}

/// One live shard connection.
struct ShardConn {
    stream: TcpStream,
    fb: FrameBuffer,
    /// Index into the endpoint chain this connection is bound to; failover
    /// resumes at the next entry.
    endpoint_index: usize,
}

/// One in-flight request within a fan-out round.
struct Pending {
    shard: usize,
    id: u64,
    outbox: Vec<u8>,
    sent: usize,
    want_telemetry: bool,
    telemetry: Option<(QueryProfile, RegistrySnapshot)>,
    response: Option<Response>,
    sw: Stopwatch,
    /// Round-trip deadline for this request (the request timeout for
    /// query rounds, the much shorter heartbeat timeout for heartbeats).
    timeout_seconds: f64,
}

enum Expect {
    Query,
    QueryBatch,
    Trim,
    TrimBatch,
    Health,
}

impl Expect {
    fn matches(&self, resp: &Response) -> bool {
        matches!(
            (self, resp),
            (Expect::Query, Response::Query { .. })
                | (Expect::QueryBatch, Response::QueryBatch { .. })
                | (Expect::Trim, Response::Trim { .. })
                | (Expect::TrimBatch, Response::TrimBatch { .. })
                | (Expect::Health, Response::Health { .. })
        )
    }
}

/// The fan-out coordinator for a socket-deployed [`ShardManifest`].
pub struct RpcCoordinator {
    endpoints: Vec<ShardEndpoint>,
    /// Owner-signed per-shard ADS roots, pinned at connect time; every
    /// (re)connected endpoint's hello is checked against its entry.
    pinned_roots: Vec<Digest>,
    conns: Vec<ShardConn>,
    config: CoordinatorConfig,
    next_id: u64,
    stats: CoordinatorStats,
    /// Latest telemetry registry snapshot received from each shard.
    shard_registries: Vec<Option<RegistrySnapshot>>,
    /// Shared health/SLO/event plane (scrape threads read it live).
    fleet: Arc<FleetHealth>,
}

impl RpcCoordinator {
    /// Connects to every shard and pins each hello against the manifest:
    /// the shard id, the deployment size, and the shard's committed ADS
    /// root must all match the owner-signed entry, or the endpoint is
    /// rejected ([`RpcError::HelloMismatch`]) and its replicas are tried.
    pub fn connect(
        endpoints: Vec<ShardEndpoint>,
        manifest: &ShardManifest,
        config: CoordinatorConfig,
    ) -> Result<RpcCoordinator, RpcError> {
        if endpoints.len() != manifest.shard_roots.len() {
            return Err(RpcError::EndpointCountMismatch {
                expected: manifest.shard_roots.len() as u32,
                got: endpoints.len() as u32,
            });
        }
        let pinned_roots = manifest.shard_roots.clone();
        let shard_count = endpoints.len();
        let fleet = Arc::new(FleetHealth::new(shard_count, pinned_roots.clone(), &config));
        let mut coordinator = RpcCoordinator {
            endpoints,
            pinned_roots,
            conns: Vec::with_capacity(shard_count),
            config,
            next_id: 1,
            stats: CoordinatorStats {
                failovers: 0,
                rpc_seconds: vec![Vec::new(); shard_count],
            },
            shard_registries: vec![None; shard_count],
            fleet,
        };
        for shard in 0..shard_count {
            let conn = coordinator.connect_shard(shard, 0)?;
            coordinator.conns.push(conn);
        }
        Ok(coordinator)
    }

    pub fn shard_count(&self) -> usize {
        self.conns.len()
    }

    /// Transport accounting so far (failovers, per-shard latencies).
    pub fn stats(&self) -> &CoordinatorStats {
        &self.stats
    }

    /// The shared health/SLO/event plane.
    pub fn fleet(&self) -> &Arc<FleetHealth> {
        &self.fleet
    }

    /// Per-shard health views, by shard id.
    pub fn health(&self) -> Vec<ShardHealthView> {
        self.fleet.views()
    }

    /// Spawns this coordinator's scrape endpoint on `bind_addr` (e.g.
    /// `127.0.0.1:0`): `/metrics` and `/metrics.json` expose the process
    /// registry plus windowed per-shard latency quantiles, health-state
    /// and SLO burn-rate series; `/healthz` the per-shard health table;
    /// `/events` the fleet event log.
    pub fn launch_scrape(&self, bind_addr: &str) -> std::io::Result<imageproof_obs::RunningScrape> {
        let provider = Arc::new(FleetScrapeProvider {
            fleet: Arc::clone(&self.fleet),
        });
        imageproof_obs::launch_scrape(provider, bind_addr)
    }

    /// The latest telemetry registry snapshot each shard shipped, by
    /// shard id (`None` until a telemetry frame arrives).
    pub fn shard_registries(&self) -> &[Option<RegistrySnapshot>] {
        &self.shard_registries
    }

    /// Merges every shard's latest registry snapshot into one
    /// deployment-wide snapshot: counters and gauges sum, histograms merge
    /// bucket-wise.
    pub fn aggregate_registry(&self) -> RegistrySnapshot {
        let mut counters: BTreeMap<_, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<_, i64> = BTreeMap::new();
        let mut histograms: BTreeMap<_, imageproof_obs::HistogramSnapshot> = BTreeMap::new();
        for snap in self.shard_registries.iter().flatten() {
            for (id, v) in &snap.counters {
                *counters.entry(id.clone()).or_insert(0) += *v;
            }
            for (id, v) in &snap.gauges {
                *gauges.entry(id.clone()).or_insert(0) += *v;
            }
            for (id, h) in &snap.histograms {
                let merged = histograms.entry(id.clone()).or_default();
                merged.count += h.count;
                merged.sum += h.sum;
                let mut buckets: BTreeMap<u64, u64> = merged.buckets.iter().copied().collect();
                for &(bound, n) in &h.buckets {
                    *buckets.entry(bound).or_insert(0) += n;
                }
                merged.buckets = buckets.into_iter().collect();
            }
        }
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Establishes (or re-establishes) shard `shard`'s connection, trying
    /// the endpoint chain from `start_index` on. Each candidate must pass
    /// the manifest-pinned hello before it is accepted.
    fn connect_shard(&self, shard: usize, start_index: usize) -> Result<ShardConn, RpcError> {
        let chain = self.endpoints[shard].chain();
        let mut last_err = RpcError::HelloMismatch {
            shard: shard as u32,
        };
        for (offset, addr) in chain.iter().enumerate().skip(start_index) {
            match self.try_endpoint(shard, *addr) {
                Ok(stream) => {
                    return Ok(ShardConn {
                        stream,
                        fb: FrameBuffer::new(),
                        endpoint_index: offset,
                    })
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Connect + blocking hello exchange + manifest pin check against one
    /// candidate address; returns the stream switched to nonblocking mode.
    fn try_endpoint(&self, shard: usize, addr: SocketAddr) -> Result<TcpStream, RpcError> {
        let as_io = |e: std::io::Error| RpcError::Io {
            shard: shard as u32,
            kind: e.kind(),
        };
        let stream = TcpStream::connect_timeout(
            &addr,
            Duration::from_secs_f64(self.config.connect_timeout_seconds.max(0.001)),
        )
        .map_err(as_io)?;
        let _ = stream.set_nodelay(true);
        let mut stream = stream;
        stream
            .set_read_timeout(Some(Duration::from_millis(10)))
            .map_err(as_io)?;
        stream
            .write_all(&frame(&Request::Hello.to_wire()))
            .map_err(as_io)?;
        let mut fb = FrameBuffer::new();
        let mut buf = [0u8; 4096];
        let sw = Stopwatch::start();
        let body = loop {
            if let Some(body) = fb.next_frame()? {
                break body;
            }
            if sw.elapsed_seconds() > self.config.hello_timeout_seconds {
                return Err(RpcError::ShardTimeout {
                    shard: shard as u32,
                });
            }
            match stream.read(&mut buf) {
                Ok(0) => {
                    return Err(RpcError::ConnectionClosed {
                        shard: shard as u32,
                    })
                }
                Ok(n) => fb.extend(&buf[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(as_io(e)),
            }
        };
        let hello = Response::from_wire(&body).map_err(|error| RpcError::Wire {
            shard: shard as u32,
            error,
        })?;
        match hello {
            Response::Hello {
                shard_id,
                shard_count,
                root,
            } if shard_id as usize == shard
                && shard_count as usize == self.pinned_roots.len()
                && root == self.pinned_roots[shard] =>
            {
                stream.set_nonblocking(true).map_err(as_io)?;
                self.fleet.events.record(
                    EventKind::HelloReverify,
                    Some(shard as u32),
                    format!("{addr}: hello matches the manifest pin"),
                );
                Ok(stream)
            }
            _ => {
                self.fleet.events.record(
                    EventKind::HelloReverify,
                    Some(shard as u32),
                    format!("{addr}: hello does not match the manifest pin"),
                );
                Err(RpcError::HelloMismatch {
                    shard: shard as u32,
                })
            }
        }
    }

    /// Allocates the next request id (monotonic across the connection's
    /// whole life, so a replayed or duplicated response can never collide
    /// with a later request).
    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Runs one fan-out round: request `i` goes to shard `shards[i]`, all
    /// round-trips multiplexed on one event loop. Returns responses in
    /// input order.
    fn fanout_round(
        &mut self,
        shards: &[usize],
        requests: Vec<Request>,
        expect: Expect,
        want_telemetry: bool,
    ) -> Result<Vec<Pending>, RpcError> {
        debug_assert_eq!(shards.len(), requests.len());
        let mut pendings: Vec<Pending> = Vec::with_capacity(requests.len());
        for (&shard, request) in shards.iter().zip(&requests) {
            pendings.push(Pending {
                shard,
                id: request_id(request),
                outbox: frame(&request.to_wire()),
                sent: 0,
                want_telemetry,
                telemetry: None,
                response: None,
                sw: Stopwatch::start(),
                timeout_seconds: self.config.request_timeout_seconds,
            });
        }
        let mut buf = vec![0u8; 256 * 1024];
        loop {
            let mut all_done = true;
            let mut progressed = false;
            for pending in &mut pendings {
                if pending.response.is_some() {
                    continue;
                }
                all_done = false;
                match self.drive_pending(pending, &expect, &mut buf) {
                    Ok(did) => progressed |= did,
                    Err(err) => {
                        // Typed fault: fail over along the endpoint chain
                        // (hello re-verified), replay the request; only an
                        // exhausted chain surfaces the error.
                        if matches!(err, RpcError::ShardTimeout { .. }) {
                            self.fleet.events.record(
                                EventKind::Timeout,
                                Some(pending.shard as u32),
                                format!("query round-trip missed its deadline: {err}"),
                            );
                        }
                        let next = self.conns[pending.shard].endpoint_index + 1;
                        match self.connect_shard(pending.shard, next) {
                            Ok(conn) => {
                                let endpoint = conn.endpoint_index;
                                self.conns[pending.shard] = conn;
                                self.stats.failovers += 1;
                                self.fleet.events.record(
                                    EventKind::Failover,
                                    Some(pending.shard as u32),
                                    format!("promoted endpoint {endpoint} after: {err}"),
                                );
                                self.fleet.transition(
                                    pending.shard,
                                    ShardHealthState::Healthy,
                                    "failover to a verified replica",
                                );
                                if imageproof_obs::enabled() {
                                    imageproof_obs::global()
                                        .counter("imageproof_rpc_failovers_total", &[])
                                        .inc();
                                }
                                pending.sent = 0;
                                pending.telemetry = None;
                                pending.sw = Stopwatch::start();
                                progressed = true;
                            }
                            Err(_) => return Err(err),
                        }
                    }
                }
            }
            if all_done {
                return Ok(pendings);
            }
            if !progressed {
                // Nothing moved on any connection: yield briefly instead
                // of spinning the core.
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    /// Pumps one pending request: drains its outbox, reads whatever the
    /// shard sent, dispatches complete frames. `Ok(true)` when any bytes
    /// or frames moved.
    fn drive_pending(
        &mut self,
        pending: &mut Pending,
        expect: &Expect,
        buf: &mut [u8],
    ) -> Result<bool, RpcError> {
        let shard = pending.shard as u32;
        let mut progressed = false;
        {
            let conn = &mut self.conns[pending.shard];
            while pending.sent < pending.outbox.len() {
                match conn.stream.write(&pending.outbox[pending.sent..]) {
                    Ok(0) => return Err(RpcError::ConnectionClosed { shard }),
                    Ok(n) => {
                        pending.sent += n;
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        return Err(RpcError::Io {
                            shard,
                            kind: e.kind(),
                        })
                    }
                }
            }
            loop {
                match conn.stream.read(buf) {
                    Ok(0) => return Err(RpcError::ConnectionClosed { shard }),
                    Ok(n) => {
                        conn.fb.extend(&buf[..n]);
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        return Err(RpcError::Io {
                            shard,
                            kind: e.kind(),
                        })
                    }
                }
            }
        }
        while pending.response.is_none() {
            let Some(body) = self.conns[pending.shard].fb.next_frame()? else {
                break;
            };
            progressed = true;
            let response =
                Response::from_wire(&body).map_err(|error| RpcError::Wire { shard, error })?;
            match response {
                Response::Telemetry {
                    id,
                    profile,
                    registry,
                } => {
                    if !pending.want_telemetry || id != pending.id {
                        return Err(RpcError::UnsolicitedTelemetry { shard });
                    }
                    self.shard_registries[pending.shard] = Some(registry.to_snapshot());
                    pending.telemetry = Some((profile.to_profile(), registry.to_snapshot()));
                }
                Response::Error { id, message } => {
                    if id != pending.id {
                        return Err(RpcError::ResponseIdMismatch {
                            shard,
                            expected: pending.id,
                            got: id,
                        });
                    }
                    return Err(RpcError::Remote { shard, message });
                }
                other => {
                    if other.id() != pending.id {
                        return Err(RpcError::ResponseIdMismatch {
                            shard,
                            expected: pending.id,
                            got: other.id(),
                        });
                    }
                    if !expect.matches(&other) {
                        return Err(RpcError::UnexpectedResponse { shard });
                    }
                    let seconds = pending.sw.elapsed_seconds();
                    self.stats.rpc_seconds[pending.shard].push(seconds);
                    if imageproof_obs::enabled() {
                        imageproof_obs::global()
                            .histogram(
                                "imageproof_rpc_request_micros",
                                &[("shard", &pending.shard.to_string())],
                            )
                            .record(micros(seconds));
                    }
                    // Heartbeats are health traffic, not serving traffic:
                    // only query/trim round-trips feed the rolling window
                    // and burn the SLO budget.
                    if !matches!(other, Response::Health { .. }) {
                        let us = micros(seconds);
                        if let Some(window) = self.fleet.windows.get(pending.shard) {
                            window.record(us);
                        }
                        if self.fleet.slo.record(us) {
                            self.fleet.events.record(
                                EventKind::SlowQuery,
                                Some(pending.shard as u32),
                                format!(
                                    "round-trip {us} us exceeded the {} us threshold",
                                    self.fleet.slo.threshold()
                                ),
                            );
                        }
                    }
                    pending.response = Some(other);
                }
            }
        }
        if pending.response.is_none() && pending.sw.elapsed_seconds() > pending.timeout_seconds {
            return Err(RpcError::ShardTimeout { shard });
        }
        Ok(progressed)
    }

    /// Runs one heartbeat round over every shard and advances the
    /// degraded/healthy/dead state machine. Call it between queries (or
    /// from a service loop): the heartbeat deadline is far shorter than
    /// the request timeout, so a stalled shard is detected and failed
    /// over *before* any query would block on it.
    ///
    /// Per shard: a verified [`WireHealth`] (matching shard id and the
    /// owner-signed manifest root — a replica on the wrong root can never
    /// report healthy) resets the miss counter and the state to healthy.
    /// A miss (timeout, transport fault, or root mismatch) increments the
    /// counter: `degraded_after_misses` marks the shard degraded,
    /// `failover_after_misses` proactively promotes the next manifest-
    /// pinned replica (healthy again on success, dead when the chain is
    /// exhausted). Returns the post-round state per shard.
    pub fn heartbeat(&mut self) -> Vec<ShardHealthState> {
        let shard_count = self.shard_count();
        for shard in 0..shard_count {
            match self.heartbeat_shard(shard) {
                Ok(report) => {
                    let mut health = lock_health(&self.fleet);
                    if let Some(view) = health.get_mut(shard) {
                        view.missed_heartbeats = 0;
                        view.heartbeats_ok += 1;
                        view.last_report = Some(report);
                    }
                    drop(health);
                    self.fleet
                        .transition(shard, ShardHealthState::Healthy, "verified heartbeat");
                }
                Err(err) => {
                    let misses = {
                        let mut health = lock_health(&self.fleet);
                        match health.get_mut(shard) {
                            Some(view) => {
                                view.missed_heartbeats += 1;
                                view.missed_heartbeats
                            }
                            None => 0,
                        }
                    };
                    self.fleet.events.record(
                        EventKind::Timeout,
                        Some(shard as u32),
                        format!("heartbeat miss {misses}: {err}"),
                    );
                    if misses >= self.config.failover_after_misses {
                        let next = self.conns[shard].endpoint_index + 1;
                        match self.connect_shard(shard, next) {
                            Ok(conn) => {
                                let endpoint = conn.endpoint_index;
                                self.conns[shard] = conn;
                                self.stats.failovers += 1;
                                self.fleet.events.record(
                                    EventKind::Failover,
                                    Some(shard as u32),
                                    format!(
                                        "promoted endpoint {endpoint} after {misses} heartbeat misses"
                                    ),
                                );
                                if imageproof_obs::enabled() {
                                    imageproof_obs::global()
                                        .counter("imageproof_rpc_failovers_total", &[])
                                        .inc();
                                }
                                let mut health = lock_health(&self.fleet);
                                if let Some(view) = health.get_mut(shard) {
                                    view.missed_heartbeats = 0;
                                }
                                drop(health);
                                self.fleet.transition(
                                    shard,
                                    ShardHealthState::Healthy,
                                    "failed over to a verified replica on heartbeat loss",
                                );
                            }
                            Err(_) => {
                                self.fleet.transition(
                                    shard,
                                    ShardHealthState::Dead,
                                    "heartbeat misses exhausted the endpoint chain",
                                );
                            }
                        }
                    } else if misses >= self.config.degraded_after_misses {
                        self.fleet.transition(
                            shard,
                            ShardHealthState::Degraded,
                            "missed heartbeat",
                        );
                    }
                }
            }
        }
        self.fleet.states()
    }

    /// One shard's heartbeat round-trip under the heartbeat deadline,
    /// with the report verified against the manifest pin.
    fn heartbeat_shard(&mut self, shard: usize) -> Result<WireHealth, RpcError> {
        let id = self.fresh_id();
        let request = Request::Health { id };
        let mut pending = Pending {
            shard,
            id,
            outbox: frame(&request.to_wire()),
            sent: 0,
            want_telemetry: false,
            telemetry: None,
            response: None,
            sw: Stopwatch::start(),
            timeout_seconds: self.config.heartbeat_timeout_seconds,
        };
        let mut buf = vec![0u8; 16 * 1024];
        loop {
            let progressed = self.drive_pending(&mut pending, &Expect::Health, &mut buf)?;
            match pending.response.take() {
                Some(Response::Health { health, .. }) => {
                    // The heartbeat's trust anchor: "healthy" only counts
                    // when attributed to the committed state the owner
                    // signed.
                    if health.shard_id as usize != shard
                        || health.shard_count as usize != self.pinned_roots.len()
                        || health.root != self.pinned_roots[shard]
                    {
                        self.fleet.events.record(
                            EventKind::HelloReverify,
                            Some(shard as u32),
                            "heartbeat report does not match the manifest pin",
                        );
                        return Err(RpcError::HelloMismatch {
                            shard: shard as u32,
                        });
                    }
                    return Ok(health);
                }
                Some(_) => {
                    return Err(RpcError::UnexpectedResponse {
                        shard: shard as u32,
                    })
                }
                None => {
                    if !progressed {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            }
        }
    }

    /// Answers one sharded top-k query over the wire (the socket
    /// counterpart of [`crate::ShardedSp::query`]).
    pub fn query(
        &mut self,
        features: &[Vec<f32>],
        k: usize,
    ) -> Result<(ShardedResponse, ShardedSpStats), RpcError> {
        let (response, stats, _) = self.query_profiled(features, k)?;
        Ok((response, stats))
    }

    /// [`RpcCoordinator::query`] with the coordinator's own span profile:
    /// the in-process phase structure (`fanout`, `merge`, `trim`,
    /// `assemble`), with each shard's remote profile grafted under the
    /// phase that issued it when telemetry is on.
    pub fn query_profiled(
        &mut self,
        features: &[Vec<f32>],
        k: usize,
    ) -> Result<(ShardedResponse, ShardedSpStats, QueryProfile), RpcError> {
        let shard_count = self.shard_count();
        let want_telemetry = imageproof_obs::enabled();
        let mut prof = Profiler::new("rpc.query");

        prof.enter("fanout");
        let shards: Vec<usize> = (0..shard_count).collect();
        let requests: Vec<Request> = shards
            .iter()
            .map(|_| Request::Query {
                id: 0, // overwritten below with a fresh id
                k: k as u32,
                want_telemetry,
                features: features.to_vec(),
            })
            .collect();
        let requests = self.assign_ids(requests);
        let done = self.fanout_round(&shards, requests, Expect::Query, want_telemetry)?;
        let mut full: Vec<QueryResponse> = Vec::with_capacity(shard_count);
        let mut per_shard: Vec<SpStats> = Vec::with_capacity(shard_count);
        for pending in done {
            let shard = pending.shard;
            if let Some((profile, _)) = pending.telemetry {
                prof.attach(profile, "shard", shard as u64);
            }
            match pending.response {
                Some(Response::Query { payload, .. }) => {
                    let (resp, stats) = payload.into_response();
                    full.push(resp);
                    per_shard.push(stats);
                }
                _ => {
                    return Err(RpcError::UnexpectedResponse {
                        shard: shard as u32,
                    })
                }
            }
        }
        let fanout_seconds = prof.exit();

        prof.enter("merge");
        let merge = fanout::merge_candidates(&full, k);
        prof.add("candidates", merge.candidates.len() as u64);
        let mut merge_seconds = prof.exit();

        prof.enter("trim");
        let trim_targets = fanout::trim_targets(&merge.contributed, k);
        prof.add("trim_queries", trim_targets.len() as u64);
        let mut trimmed: BTreeMap<usize, fanout::TrimOutcome> = BTreeMap::new();
        if !trim_targets.is_empty() {
            let shards: Vec<usize> = trim_targets.iter().map(|&(s, _)| s).collect();
            let requests: Vec<Request> = trim_targets
                .iter()
                .map(|&(_, k_trim)| Request::Trim {
                    id: 0,
                    k_trim: k_trim as u32,
                    features: features.to_vec(),
                })
                .collect();
            let requests = self.assign_ids(requests);
            let done = self.fanout_round(&shards, requests, Expect::Trim, false)?;
            for pending in done {
                match pending.response {
                    Some(Response::Trim { payload, .. }) => {
                        trimmed.insert(
                            pending.shard,
                            (payload.topk, payload.inv, payload.signatures),
                        );
                    }
                    _ => {
                        return Err(RpcError::UnexpectedResponse {
                            shard: pending.shard as u32,
                        })
                    }
                }
            }
        }
        let trim_seconds = prof.exit();

        prof.enter("assemble");
        let assembled = fanout::assemble_response(&full, &merge, &trimmed);
        prof.add("dedup_bytes_saved", assembled.dedup_bytes_saved as u64);
        merge_seconds += prof.exit();

        let stats = ShardedSpStats {
            per_shard,
            trim_queries: trim_targets.len(),
            trimmed_entries: assembled.trimmed_entries,
            dedup_bytes_saved: assembled.dedup_bytes_saved,
            merge_seconds,
            wall_seconds: fanout_seconds + merge_seconds + trim_seconds,
        };
        Ok((
            ShardedResponse {
                results: assembled.results,
                vo: assembled.vo,
            },
            stats,
            prof.finish(),
        ))
    }

    /// Answers several concurrent client queries with one `QueryBatch`
    /// round-trip per shard (plus one `TrimBatch` round-trip for the trim
    /// phase) instead of a socket conversation per query. Responses come
    /// back in input order, each bit-equal to what [`RpcCoordinator::query`]
    /// would have produced.
    pub fn query_batch(
        &mut self,
        queries: &[Vec<Vec<f32>>],
        k: usize,
    ) -> Result<Vec<(ShardedResponse, ShardedSpStats)>, RpcError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let shard_count = self.shard_count();
        let want_telemetry = imageproof_obs::enabled();

        // Phase 1: every query's full-k fan-out, batched per shard.
        let shards: Vec<usize> = (0..shard_count).collect();
        let requests: Vec<Request> = shards
            .iter()
            .map(|_| Request::QueryBatch {
                id: 0,
                k: k as u32,
                want_telemetry,
                queries: queries.to_vec(),
            })
            .collect();
        let requests = self.assign_ids(requests);
        let done = self.fanout_round(&shards, requests, Expect::QueryBatch, want_telemetry)?;
        // fulls[q][s], stats[q][s]: responses regrouped per query.
        let mut fulls: Vec<Vec<QueryResponse>> = (0..queries.len())
            .map(|_| Vec::with_capacity(shard_count))
            .collect();
        let mut per_query_stats: Vec<Vec<SpStats>> = (0..queries.len())
            .map(|_| Vec::with_capacity(shard_count))
            .collect();
        for pending in done {
            let shard = pending.shard as u32;
            match pending.response {
                Some(Response::QueryBatch { payloads, .. }) => {
                    if payloads.len() != queries.len() {
                        return Err(RpcError::UnexpectedResponse { shard });
                    }
                    for (q, payload) in payloads.into_iter().enumerate() {
                        let (resp, stats) = payload.into_response();
                        fulls[q].push(resp);
                        per_query_stats[q].push(stats);
                    }
                }
                _ => return Err(RpcError::UnexpectedResponse { shard }),
            }
        }

        // Phase 2: merge each query locally, then batch all trim
        // re-queries onto one TrimBatch round-trip per shard that needs
        // any. trim_plan[s] lists (query, k_trim) in ascending query
        // order.
        let merges: Vec<fanout::MergeOutcome> = fulls
            .iter()
            .map(|full| fanout::merge_candidates(full, k))
            .collect();
        let mut trim_plan: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shard_count];
        let mut trim_counts: Vec<usize> = vec![0; queries.len()];
        for (q, merge) in merges.iter().enumerate() {
            for (s, k_trim) in fanout::trim_targets(&merge.contributed, k) {
                trim_plan[s].push((q, k_trim));
                trim_counts[q] += 1;
            }
        }
        let mut trimmed: Vec<BTreeMap<usize, fanout::TrimOutcome>> =
            vec![BTreeMap::new(); queries.len()];
        let shards: Vec<usize> = (0..shard_count)
            .filter(|&s| !trim_plan[s].is_empty())
            .collect();
        if !shards.is_empty() {
            let requests: Vec<Request> = shards
                .iter()
                .map(|&s| Request::TrimBatch {
                    id: 0,
                    items: trim_plan[s]
                        .iter()
                        .map(|&(q, k_trim)| (k_trim as u32, queries[q].clone()))
                        .collect(),
                })
                .collect();
            let requests = self.assign_ids(requests);
            let done = self.fanout_round(&shards, requests, Expect::TrimBatch, false)?;
            for pending in done {
                let shard = pending.shard;
                match pending.response {
                    Some(Response::TrimBatch { payloads, .. }) => {
                        if payloads.len() != trim_plan[shard].len() {
                            return Err(RpcError::UnexpectedResponse {
                                shard: shard as u32,
                            });
                        }
                        for (&(q, _), payload) in trim_plan[shard].iter().zip(payloads) {
                            trimmed[q]
                                .insert(shard, (payload.topk, payload.inv, payload.signatures));
                        }
                    }
                    _ => {
                        return Err(RpcError::UnexpectedResponse {
                            shard: shard as u32,
                        })
                    }
                }
            }
        }

        // Phase 3: assemble every query through the shared fan-out code.
        let mut out = Vec::with_capacity(queries.len());
        for (q, merge) in merges.iter().enumerate() {
            let assembled = fanout::assemble_response(&fulls[q], merge, &trimmed[q]);
            let stats = ShardedSpStats {
                per_shard: std::mem::take(&mut per_query_stats[q]),
                trim_queries: trim_counts[q],
                trimmed_entries: assembled.trimmed_entries,
                dedup_bytes_saved: assembled.dedup_bytes_saved,
                merge_seconds: 0.0,
                wall_seconds: 0.0,
            };
            out.push((
                ShardedResponse {
                    results: assembled.results,
                    vo: assembled.vo,
                },
                stats,
            ));
        }
        Ok(out)
    }

    /// Stamps each request with a fresh monotonic id.
    fn assign_ids(&mut self, requests: Vec<Request>) -> Vec<Request> {
        requests
            .into_iter()
            .map(|request| {
                let fresh = self.fresh_id();
                match request {
                    Request::Hello => Request::Hello,
                    Request::Query {
                        k,
                        want_telemetry,
                        features,
                        ..
                    } => Request::Query {
                        id: fresh,
                        k,
                        want_telemetry,
                        features,
                    },
                    Request::QueryBatch {
                        k,
                        want_telemetry,
                        queries,
                        ..
                    } => Request::QueryBatch {
                        id: fresh,
                        k,
                        want_telemetry,
                        queries,
                    },
                    Request::Trim {
                        k_trim, features, ..
                    } => Request::Trim {
                        id: fresh,
                        k_trim,
                        features,
                    },
                    Request::TrimBatch { items, .. } => Request::TrimBatch { id: fresh, items },
                    Request::Health { .. } => Request::Health { id: fresh },
                }
            })
            .collect()
    }
}

/// The id a request was stamped with (0 for hello, which has none).
fn request_id(request: &Request) -> u64 {
    match request {
        Request::Hello => 0,
        Request::Query { id, .. }
        | Request::QueryBatch { id, .. }
        | Request::Trim { id, .. }
        | Request::TrimBatch { id, .. }
        | Request::Health { id } => *id,
    }
}
