//! Shards as real processes: a hand-rolled, length-prefixed binary RPC
//! over std TCP sockets.
//!
//! The in-process [`crate::ShardedSp`] fan-out (DESIGN.md §4d) assumed the
//! shards live in the coordinator's address space. This module puts each
//! shard behind a socket instead — the deployment shape the ROADMAP's
//! production north-star (and the web-collection/committed-snapshot
//! serving literature) assumes: shard servers that can be slow, dead, or
//! actively malicious, reached only through a wire protocol.
//!
//! Layout:
//! - [`frame`]: the `[u32 LE length][body]` frame format and the
//!   request/response messages, built on the audited `Encode`/`Decode`
//!   wire infrastructure (hostile lengths go through the same
//!   `bound_len`/checked-read path as VO decoding).
//! - [`server`]: [`ShardServer`], a per-shard TCP server wrapping one
//!   [`crate::ServiceProvider`].
//! - [`coordinator`]: [`RpcCoordinator`], a single-threaded nonblocking
//!   event loop that fans queries out over all shard connections at once,
//!   batches concurrent client queries onto shard round-trips, enforces
//!   per-shard timeouts, and fails over to manifest-pinned replicas.
//!
//! Trust model: the coordinator is part of the *untrusted* SP. Nothing in
//! this module is security-critical — a compromised coordinator (or a
//! man-in-the-middle on a shard link) can corrupt responses, but every
//! corruption lands in the client's `verify_sharded`, which checks the
//! assembled VO against the owner-signed manifest. The RPC layer's job is
//! only *robustness*: every transport fault maps to a typed [`RpcError`]
//! or a successful failover, never a panic and never a
//! wrong-but-verified result (`tests/rpc_faults.rs`,
//! `tests/shard_adversary.rs`).

pub mod coordinator;
pub mod frame;
pub mod server;

pub use coordinator::{
    CoordinatorConfig, CoordinatorStats, FleetHealth, RpcCoordinator, ShardEndpoint,
    ShardHealthState, ShardHealthView,
};
pub use frame::{
    frame, ErrorClass, FrameBuffer, QueryPayload, Request, Response, TrimPayload, WireHealth,
    WireHistogram, WireMetricId, WireProfile, WireRegistry, WireSpan, WireStats, MAX_FRAME_LEN,
};
pub use server::{RunningServer, ShardServer};

use imageproof_crypto::wire::WireError;

/// A transport or protocol fault, attributed to the shard link it occurred
/// on. Every injected fault in the `rpc_faults` suite must surface as
/// exactly one of these (or as a successful failover) — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// A frame header announced a length beyond [`MAX_FRAME_LEN`].
    FrameTooLarge { len: u64 },
    /// The peer closed the connection mid-conversation (including
    /// mid-frame resets).
    ConnectionClosed { shard: u32 },
    /// A socket operation failed.
    Io {
        shard: u32,
        kind: std::io::ErrorKind,
    },
    /// A frame body failed to decode as a protocol message.
    Wire { shard: u32, error: WireError },
    /// A response carried a request id other than the one outstanding —
    /// a duplicated, reordered, or replayed response.
    ResponseIdMismatch { shard: u32, expected: u64, got: u64 },
    /// A response was well-formed but of the wrong kind for the
    /// outstanding request.
    UnexpectedResponse { shard: u32 },
    /// A telemetry frame arrived unrequested or for the wrong request —
    /// a spoofed or replayed telemetry stream.
    UnsolicitedTelemetry { shard: u32 },
    /// The shard server reported an error.
    Remote { shard: u32, message: String },
    /// The shard did not complete the round-trip within the configured
    /// timeout (stalled shard).
    ShardTimeout { shard: u32 },
    /// An endpoint's hello did not match the manifest pin (wrong shard
    /// id, wrong deployment size, or an ADS root differing from the
    /// owner-signed manifest entry).
    HelloMismatch { shard: u32 },
    /// The endpoint list handed to the coordinator does not cover the
    /// manifest's shards one-to-one.
    EndpointCountMismatch { expected: u32, got: u32 },
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            RpcError::ConnectionClosed { shard } => {
                write!(f, "shard {shard}: connection closed mid-conversation")
            }
            RpcError::Io { shard, kind } => write!(f, "shard {shard}: socket error ({kind:?})"),
            RpcError::Wire { shard, error } => {
                write!(f, "shard {shard}: malformed frame ({error})")
            }
            RpcError::ResponseIdMismatch {
                shard,
                expected,
                got,
            } => write!(
                f,
                "shard {shard}: response for request {got}, expected {expected}"
            ),
            RpcError::UnexpectedResponse { shard } => {
                write!(f, "shard {shard}: response kind does not match the request")
            }
            RpcError::UnsolicitedTelemetry { shard } => {
                write!(f, "shard {shard}: unsolicited telemetry frame")
            }
            RpcError::Remote { shard, message } => {
                write!(f, "shard {shard}: remote error: {message}")
            }
            RpcError::ShardTimeout { shard } => write!(f, "shard {shard}: request timed out"),
            RpcError::HelloMismatch { shard } => {
                write!(f, "shard {shard}: hello does not match the manifest pin")
            }
            RpcError::EndpointCountMismatch { expected, got } => write!(
                f,
                "manifest pins {expected} shards but {got} endpoints were supplied"
            ),
        }
    }
}

impl std::error::Error for RpcError {}
