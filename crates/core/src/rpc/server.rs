//! [`ShardServer`]: one shard's query engine behind a TCP socket.
//!
//! The server wraps a [`ServiceProvider`] (exactly the engine the
//! in-process [`crate::ShardedSp`] fan-out would call) and answers the
//! frame protocol of [`super::frame`]. Query handling runs the *serial*
//! engine path — the same path the in-process fan-out runs per shard — so
//! every payload byte a healthy server produces is bit-equal to the
//! in-process deployment by construction.
//!
//! Threading: one nonblocking accept loop polling a stop flag, one thread
//! per connection with a short read timeout (so shutdown is prompt even
//! with idle clients). Malformed input never panics the server: a frame
//! that fails to decode earns the client a [`Response::Error`] frame and a
//! closed connection.

use super::frame::{frame, FrameBuffer, Request, Response, TrimPayload, WireProfile, WireRegistry};
use super::{QueryPayload, RpcError};
use crate::sp::ServiceProvider;
use imageproof_crypto::wire::{Decode, Encode};
use imageproof_obs::Profiler;
use imageproof_parallel::Concurrency;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection thread blocks in `read` before re-checking the
/// stop flag.
const READ_POLL: Duration = Duration::from_millis(25);

/// One shard's engine plus its wire identity.
pub struct ShardServer {
    sp: Arc<ServiceProvider>,
    shard_id: u32,
    shard_count: u32,
}

/// Handle to a spawned [`ShardServer`]: its bound address and a shutdown
/// switch that joins every server thread.
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl RunningServer {
    /// The loopback address the server accepted on (port picked by the OS).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals every server thread to stop and joins them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl ShardServer {
    pub fn new(sp: ServiceProvider, shard_id: u32, shard_count: u32) -> ShardServer {
        ShardServer {
            sp: Arc::new(sp),
            shard_id,
            shard_count,
        }
    }

    /// Binds `127.0.0.1:0` (deterministic *allocation*: the OS picks a free
    /// port, so parallel test binaries never collide) and serves until
    /// [`RunningServer::shutdown`].
    pub fn launch(self) -> std::io::Result<RunningServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_handle = std::thread::spawn(move || self.accept_loop(listener, accept_stop));
        Ok(RunningServer {
            addr,
            stop,
            accept_handle: Some(accept_handle),
        })
    }

    fn accept_loop(self, listener: TcpListener, stop: Arc<AtomicBool>) {
        let mut conn_handles: Vec<JoinHandle<()>> = Vec::new();
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let sp = Arc::clone(&self.sp);
                    let conn_stop = Arc::clone(&stop);
                    let (shard_id, shard_count) = (self.shard_id, self.shard_count);
                    conn_handles.push(std::thread::spawn(move || {
                        serve_connection(stream, sp, shard_id, shard_count, conn_stop);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        for handle in conn_handles {
            let _ = handle.join();
        }
    }
}

/// Reads frames off one connection and answers them until the peer hangs
/// up, sends garbage, or the server stops.
fn serve_connection(
    mut stream: TcpStream,
    sp: Arc<ServiceProvider>,
    shard_id: u32,
    shard_count: u32,
    stop: Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 64 * 1024];
    'conn: while !stop.load(Ordering::SeqCst) {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => fb.extend(&buf[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
        loop {
            let body = match fb.next_frame() {
                Ok(Some(body)) => body,
                Ok(None) => break,
                Err(RpcError::FrameTooLarge { len }) => {
                    // Hostile length prefix: refuse before allocating.
                    let msg = format!("frame length {len} exceeds the cap");
                    let _ = send(
                        &mut stream,
                        &Response::Error {
                            id: 0,
                            message: msg,
                        },
                    );
                    break 'conn;
                }
                Err(_) => break 'conn,
            };
            let request = match Request::from_wire(&body) {
                Ok(req) => req,
                Err(e) => {
                    let msg = format!("malformed request frame: {e}");
                    let _ = send(
                        &mut stream,
                        &Response::Error {
                            id: 0,
                            message: msg,
                        },
                    );
                    break 'conn;
                }
            };
            if !handle_request(&mut stream, &sp, shard_id, shard_count, request) {
                break 'conn;
            }
        }
    }
}

/// Serves one decoded request; returns false when the connection should
/// close (write failure).
fn handle_request(
    stream: &mut TcpStream,
    sp: &ServiceProvider,
    shard_id: u32,
    shard_count: u32,
    request: Request,
) -> bool {
    match request {
        Request::Hello => send(
            stream,
            &Response::Hello {
                shard_id,
                shard_count,
                root: sp.database().mrkd.combined_root_digest(),
            },
        )
        .is_ok(),
        Request::Query {
            id,
            k,
            want_telemetry,
            features,
        } => {
            let (resp, stats, profile) =
                sp.query_profiled(&features, k as usize, Concurrency::serial());
            if want_telemetry && !send_telemetry(stream, id, &profile) {
                return false;
            }
            send(
                stream,
                &Response::Query {
                    id,
                    payload: QueryPayload::from_response(&resp, &stats),
                },
            )
            .is_ok()
        }
        Request::QueryBatch {
            id,
            k,
            want_telemetry,
            queries,
        } => {
            // One span per batch, each query's own profile grafted under
            // it — the coordinator attaches the whole thing under its
            // fan-out span, mirroring the in-process shape.
            let mut prof = Profiler::new("shard.batch");
            prof.enter("queries");
            let mut payloads = Vec::with_capacity(queries.len());
            for (i, features) in queries.iter().enumerate() {
                let (resp, stats, sub) =
                    sp.query_profiled(features, k as usize, Concurrency::serial());
                prof.attach(sub, "query", i as u64);
                payloads.push(QueryPayload::from_response(&resp, &stats));
            }
            prof.exit();
            if want_telemetry && !send_telemetry(stream, id, &prof.finish()) {
                return false;
            }
            send(stream, &Response::QueryBatch { id, payloads }).is_ok()
        }
        Request::Trim {
            id,
            k_trim,
            features,
        } => {
            let (topk, inv, signatures) = sp.trim_query(&features, k_trim as usize);
            send(
                stream,
                &Response::Trim {
                    id,
                    payload: trim_payload(topk, inv, signatures),
                },
            )
            .is_ok()
        }
        Request::TrimBatch { id, items } => {
            let mut payloads = Vec::with_capacity(items.len());
            for (k_trim, features) in &items {
                let (topk, inv, signatures) = sp.trim_query(features, *k_trim as usize);
                payloads.push(trim_payload(topk, inv, signatures));
            }
            send(stream, &Response::TrimBatch { id, payloads }).is_ok()
        }
    }
}

fn trim_payload(
    topk: Vec<(u64, f32)>,
    inv: crate::scheme::InvVoVariant,
    signatures: Vec<imageproof_crypto::Signature>,
) -> TrimPayload {
    TrimPayload {
        topk,
        inv,
        signatures,
    }
}

/// Ships the observability sidecar frame: the query's span profile plus a
/// snapshot of this shard process's cumulative metrics registry.
fn send_telemetry(stream: &mut TcpStream, id: u64, profile: &imageproof_obs::QueryProfile) -> bool {
    let registry = WireRegistry::from_snapshot(&imageproof_obs::global().snapshot());
    send(
        stream,
        &Response::Telemetry {
            id,
            profile: WireProfile::from_profile(profile),
            registry,
        },
    )
    .is_ok()
}

fn send(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    stream.write_all(&frame(&resp.to_wire()))
}
