//! [`ShardServer`]: one shard's query engine behind a TCP socket.
//!
//! The server wraps a [`ServiceProvider`] (exactly the engine the
//! in-process [`crate::ShardedSp`] fan-out would call) and answers the
//! frame protocol of [`super::frame`]. Query handling runs the *serial*
//! engine path — the same path the in-process fan-out runs per shard — so
//! every payload byte a healthy server produces is bit-equal to the
//! in-process deployment by construction.
//!
//! Threading: one nonblocking accept loop polling a stop flag, one thread
//! per connection with a short read timeout (so shutdown is prompt even
//! with idle clients). Malformed input never panics the server: a frame
//! that fails to decode earns the client a [`Response::Error`] frame and a
//! closed connection.
//!
//! Observability: the server keeps a small health ledger ([`ServerObs`]:
//! uptime, in-flight queue depth, queries served, classified last error,
//! bounded event ring) that feeds both the [`Request::Health`] heartbeat
//! answer and the optional HTTP-lite scrape endpoint
//! ([`ShardServer::launch_observed`]) serving `/metrics`,
//! `/metrics.json`, `/healthz`, and `/events`. Everything on that path is
//! a read of atomic counters or registry snapshots — it can never change
//! a payload byte (`tests/obs_equivalence.rs`).

use super::frame::{
    frame, ErrorClass, FrameBuffer, Request, Response, TrimPayload, WireHealth, WireProfile,
    WireRegistry,
};
use super::{QueryPayload, RpcError};
use crate::sp::ServiceProvider;
use imageproof_crypto::wire::{Decode, Encode};
use imageproof_obs::{EventKind, EventLog, Profiler, RunningScrape, ScrapeProvider, Stopwatch};
use imageproof_parallel::Concurrency;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection thread blocks in `read` before re-checking the
/// stop flag.
const READ_POLL: Duration = Duration::from_millis(25);

/// Events retained by one shard server's ring.
const SERVER_EVENT_CAPACITY: usize = 256;

/// The server's health ledger, shared by every connection thread, the
/// heartbeat answer, and the scrape endpoint.
pub struct ServerObs {
    started: Stopwatch,
    queue_depth: AtomicU64,
    queries_served: AtomicU64,
    last_error: AtomicU8,
    events: EventLog,
}

impl ServerObs {
    fn new() -> ServerObs {
        ServerObs {
            started: Stopwatch::start(),
            queue_depth: AtomicU64::new(0),
            queries_served: AtomicU64::new(0),
            last_error: AtomicU8::new(0),
            events: EventLog::new(SERVER_EVENT_CAPACITY),
        }
    }

    fn note_error(&self, class: ErrorClass, shard_id: u32, detail: &str) {
        self.last_error
            .store(error_class_byte(class), Ordering::SeqCst);
        self.events
            .record(EventKind::WireError, Some(shard_id), detail);
    }

    fn last_error(&self) -> ErrorClass {
        ErrorClass::from_u8(self.last_error.load(Ordering::SeqCst)).unwrap_or(ErrorClass::None)
    }

    /// The report the heartbeat answer and `/healthz` both serve.
    fn health(
        &self,
        shard_id: u32,
        shard_count: u32,
        root: imageproof_crypto::Digest,
    ) -> WireHealth {
        WireHealth {
            shard_id,
            shard_count,
            root,
            uptime_seconds: self.started.elapsed_seconds(),
            queue_depth: self.queue_depth.load(Ordering::SeqCst),
            queries_served: self.queries_served.load(Ordering::SeqCst),
            last_error: self.last_error(),
        }
    }
}

fn error_class_byte(class: ErrorClass) -> u8 {
    match class {
        ErrorClass::None => 0,
        ErrorClass::Wire => 1,
        ErrorClass::Oversize => 2,
        ErrorClass::Io => 3,
    }
}

/// Decrements the queue-depth gauge when a request finishes, however it
/// exits.
struct QueueGuard<'a>(&'a ServerObs);

impl Drop for QueueGuard<'_> {
    fn drop(&mut self) {
        self.0.queue_depth.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One shard's engine plus its wire identity.
pub struct ShardServer {
    sp: Arc<ServiceProvider>,
    shard_id: u32,
    shard_count: u32,
}

/// Handle to a spawned [`ShardServer`]: its bound address and a shutdown
/// switch that joins every server thread.
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    obs: Arc<ServerObs>,
}

impl RunningServer {
    /// The loopback address the server accepted on (port picked by the OS).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's bounded event ring (wire errors and the like).
    pub fn events(&self) -> &EventLog {
        &self.obs.events
    }

    /// Signals every server thread to stop and joins them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

/// The shard's scrape endpoint state: health identity plus handles to the
/// process-global registry and the server's event ring.
struct ShardScrapeProvider {
    shard_id: u32,
    shard_count: u32,
    root: imageproof_crypto::Digest,
    obs: Arc<ServerObs>,
}

impl ScrapeProvider for ShardScrapeProvider {
    fn healthz_json(&self) -> String {
        let h = self.obs.health(self.shard_id, self.shard_count, self.root);
        format!(
            "{{\"role\": \"shard\", \"id\": {}, \"shard_count\": {}, \"status\": \"healthy\", \"root\": \"{}\", \"uptime_seconds\": {:.3}, \"queue_depth\": {}, \"queries_served\": {}, \"last_error\": \"{}\"}}",
            h.shard_id,
            h.shard_count,
            h.root.to_hex(),
            h.uptime_seconds,
            h.queue_depth,
            h.queries_served,
            h.last_error.name(),
        )
    }

    fn registry_snapshot(&self) -> imageproof_obs::RegistrySnapshot {
        let mut snap = imageproof_obs::global().snapshot();
        let shard = self.shard_id.to_string();
        let labels = vec![("shard".to_string(), shard)];
        snap.gauges.insert(
            imageproof_obs::MetricId {
                name: "imageproof_shard_queue_depth".to_string(),
                labels: labels.clone(),
            },
            self.obs.queue_depth.load(Ordering::SeqCst) as i64,
        );
        snap.gauges.insert(
            imageproof_obs::MetricId {
                name: "imageproof_shard_uptime_seconds".to_string(),
                labels: labels.clone(),
            },
            self.obs.started.elapsed_seconds() as i64,
        );
        snap.counters.insert(
            imageproof_obs::MetricId {
                name: "imageproof_shard_queries_served_total".to_string(),
                labels,
            },
            self.obs.queries_served.load(Ordering::SeqCst),
        );
        snap
    }

    fn events_jsonl(&self) -> String {
        self.obs.events.jsonl()
    }
}

impl ShardServer {
    pub fn new(sp: ServiceProvider, shard_id: u32, shard_count: u32) -> ShardServer {
        ShardServer {
            sp: Arc::new(sp),
            shard_id,
            shard_count,
        }
    }

    /// Binds `127.0.0.1:0` (deterministic *allocation*: the OS picks a free
    /// port, so parallel test binaries never collide) and serves until
    /// [`RunningServer::shutdown`].
    pub fn launch(self) -> std::io::Result<RunningServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let obs = Arc::new(ServerObs::new());
        let accept_stop = Arc::clone(&stop);
        let accept_obs = Arc::clone(&obs);
        let accept_handle =
            std::thread::spawn(move || self.accept_loop(listener, accept_stop, accept_obs));
        Ok(RunningServer {
            addr,
            stop,
            accept_handle: Some(accept_handle),
            obs,
        })
    }

    /// [`ShardServer::launch`] plus a scrape endpoint on `scrape_addr`
    /// (e.g. `127.0.0.1:0`) serving this shard's `/metrics`,
    /// `/metrics.json`, `/healthz`, and `/events`.
    pub fn launch_observed(
        self,
        scrape_addr: &str,
    ) -> std::io::Result<(RunningServer, RunningScrape)> {
        let shard_id = self.shard_id;
        let shard_count = self.shard_count;
        let root = self.sp.database().mrkd.combined_root_digest();
        let server = self.launch()?;
        let provider = Arc::new(ShardScrapeProvider {
            shard_id,
            shard_count,
            root,
            obs: Arc::clone(&server.obs),
        });
        let scrape = imageproof_obs::launch_scrape(provider, scrape_addr)?;
        Ok((server, scrape))
    }

    fn accept_loop(self, listener: TcpListener, stop: Arc<AtomicBool>, obs: Arc<ServerObs>) {
        let mut conn_handles: Vec<JoinHandle<()>> = Vec::new();
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let sp = Arc::clone(&self.sp);
                    let conn_stop = Arc::clone(&stop);
                    let conn_obs = Arc::clone(&obs);
                    let (shard_id, shard_count) = (self.shard_id, self.shard_count);
                    conn_handles.push(std::thread::spawn(move || {
                        serve_connection(stream, sp, shard_id, shard_count, conn_stop, conn_obs);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        for handle in conn_handles {
            let _ = handle.join();
        }
    }
}

/// Reads frames off one connection and answers them until the peer hangs
/// up, sends garbage, or the server stops.
fn serve_connection(
    mut stream: TcpStream,
    sp: Arc<ServiceProvider>,
    shard_id: u32,
    shard_count: u32,
    stop: Arc<AtomicBool>,
    obs: Arc<ServerObs>,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 64 * 1024];
    'conn: while !stop.load(Ordering::SeqCst) {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => fb.extend(&buf[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                obs.note_error(ErrorClass::Io, shard_id, "connection read failed");
                break;
            }
        }
        loop {
            let body = match fb.next_frame() {
                Ok(Some(body)) => body,
                Ok(None) => break,
                Err(RpcError::FrameTooLarge { len }) => {
                    // Hostile length prefix: refuse before allocating.
                    let msg = format!("frame length {len} exceeds the cap");
                    obs.note_error(ErrorClass::Oversize, shard_id, &msg);
                    let _ = send(
                        &mut stream,
                        &Response::Error {
                            id: 0,
                            message: msg,
                        },
                    );
                    break 'conn;
                }
                Err(_) => break 'conn,
            };
            let request = match Request::from_wire(&body) {
                Ok(req) => req,
                Err(e) => {
                    let msg = format!("malformed request frame: {e}");
                    obs.note_error(ErrorClass::Wire, shard_id, &msg);
                    let _ = send(
                        &mut stream,
                        &Response::Error {
                            id: 0,
                            message: msg,
                        },
                    );
                    break 'conn;
                }
            };
            if !handle_request(&mut stream, &sp, shard_id, shard_count, request, &obs) {
                break 'conn;
            }
        }
    }
}

/// Serves one decoded request; returns false when the connection should
/// close (write failure).
fn handle_request(
    stream: &mut TcpStream,
    sp: &ServiceProvider,
    shard_id: u32,
    shard_count: u32,
    request: Request,
    obs: &ServerObs,
) -> bool {
    obs.queue_depth.fetch_add(1, Ordering::SeqCst);
    let _guard = QueueGuard(obs);
    match request {
        Request::Hello => send(
            stream,
            &Response::Hello {
                shard_id,
                shard_count,
                root: sp.database().mrkd.combined_root_digest(),
            },
        )
        .is_ok(),
        Request::Health { id } => {
            let root = sp.database().mrkd.combined_root_digest();
            send(
                stream,
                &Response::Health {
                    id,
                    health: obs.health(shard_id, shard_count, root),
                },
            )
            .is_ok()
        }
        Request::Query {
            id,
            k,
            want_telemetry,
            features,
        } => {
            let (resp, stats, profile) =
                sp.query_profiled(&features, k as usize, Concurrency::serial());
            obs.queries_served.fetch_add(1, Ordering::SeqCst);
            if want_telemetry && !send_telemetry(stream, id, &profile) {
                return false;
            }
            send(
                stream,
                &Response::Query {
                    id,
                    payload: QueryPayload::from_response(&resp, &stats),
                },
            )
            .is_ok()
        }
        Request::QueryBatch {
            id,
            k,
            want_telemetry,
            queries,
        } => {
            // One span per batch, each query's own profile grafted under
            // it — the coordinator attaches the whole thing under its
            // fan-out span, mirroring the in-process shape.
            let mut prof = Profiler::new("shard.batch");
            prof.enter("queries");
            let mut payloads = Vec::with_capacity(queries.len());
            for (i, features) in queries.iter().enumerate() {
                let (resp, stats, sub) =
                    sp.query_profiled(features, k as usize, Concurrency::serial());
                prof.attach(sub, "query", i as u64);
                payloads.push(QueryPayload::from_response(&resp, &stats));
            }
            prof.exit();
            obs.queries_served
                .fetch_add(queries.len() as u64, Ordering::SeqCst);
            if want_telemetry && !send_telemetry(stream, id, &prof.finish()) {
                return false;
            }
            send(stream, &Response::QueryBatch { id, payloads }).is_ok()
        }
        Request::Trim {
            id,
            k_trim,
            features,
        } => {
            let (topk, inv, signatures) = sp.trim_query(&features, k_trim as usize);
            send(
                stream,
                &Response::Trim {
                    id,
                    payload: trim_payload(topk, inv, signatures),
                },
            )
            .is_ok()
        }
        Request::TrimBatch { id, items } => {
            let mut payloads = Vec::with_capacity(items.len());
            for (k_trim, features) in &items {
                let (topk, inv, signatures) = sp.trim_query(features, *k_trim as usize);
                payloads.push(trim_payload(topk, inv, signatures));
            }
            send(stream, &Response::TrimBatch { id, payloads }).is_ok()
        }
    }
}

fn trim_payload(
    topk: Vec<(u64, f32)>,
    inv: crate::scheme::InvVoVariant,
    signatures: Vec<imageproof_crypto::Signature>,
) -> TrimPayload {
    TrimPayload {
        topk,
        inv,
        signatures,
    }
}

/// Ships the observability sidecar frame: the query's span profile plus a
/// snapshot of this shard process's cumulative metrics registry.
fn send_telemetry(stream: &mut TcpStream, id: u64, profile: &imageproof_obs::QueryProfile) -> bool {
    let registry = WireRegistry::from_snapshot(&imageproof_obs::global().snapshot());
    send(
        stream,
        &Response::Telemetry {
            id,
            profile: WireProfile::from_profile(profile),
            registry,
        },
    )
    .is_ok()
}

fn send(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    stream.write_all(&frame(&resp.to_wire()))
}
