//! Owner-side dynamic catalogue updates — an extension beyond the paper's
//! static setting.
//!
//! The paper picks cuckoo filters partly because they "support dynamic
//! deletions" (§II-B) but never spells out the update protocol. This module
//! supplies it: the owner inserts or removes one image, incrementally
//! repairing exactly the affected state —
//!
//! 1. the affected clusters' Merkle inverted lists are rebuilt (postings,
//!    filter, chain digests);
//! 2. the MRKD forest's digests are refreshed along the paths to the
//!    affected leaves (`O(k log n)` hashes for `k` touched clusters);
//! 3. the combined root is re-signed and the new [`PublishedParams`] is
//!    returned for distribution to clients.
//!
//! **Frozen weights.** True tf-idf weights `w_c = ln(n_D/n_{D,c})` depend
//! globally on the corpus, so exact maintenance would re-hash every list on
//! every update. Like production search engines, updates freeze the
//! weights of the initial build; images mapped to clusters that were empty
//! at build time (weight 0) contribute zero similarity until the owner
//! re-indexes. This is a documented trade-off, not a soundness issue — the
//! scheme authenticates whatever ranking function the index encodes.

use crate::owner::{
    image_signing_message, root_signing_message, Database, IndexVariant, Owner, PublishedParams,
    StoredImage,
};
use imageproof_akm::bovw::{impact_value, SparseBovw};
use imageproof_crypto::Digest;
use imageproof_invindex::Posting;
use imageproof_vision::ImageId;
use std::collections::BTreeMap;

/// Why an update was rejected (the database is left unchanged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// Inserting an id that already exists.
    DuplicateImage { id: ImageId },
    /// Removing an id that does not exist.
    UnknownImage { id: ImageId },
    /// The new posting set no longer fits the committed filter geometry;
    /// the owner must rebuild the index (the geometry is a global
    /// commitment `MaxCount` depends on).
    FilterGeometryExhausted { cluster: u32 },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::DuplicateImage { id } => write!(f, "image {id} already exists"),
            UpdateError::UnknownImage { id } => write!(f, "image {id} does not exist"),
            UpdateError::FilterGeometryExhausted { cluster } => write!(
                f,
                "cluster {cluster} outgrew the committed filter geometry; re-index required"
            ),
        }
    }
}

impl std::error::Error for UpdateError {}

impl Owner {
    /// Inserts a new image into the outsourced database, returning the
    /// refreshed [`PublishedParams`] (new root signature) for clients.
    pub fn insert_image(
        &self,
        db: &mut Database,
        id: ImageId,
        data: Vec<u8>,
        features: &[Vec<f32>],
    ) -> Result<PublishedParams, UpdateError> {
        if db.images.contains_key(&id) {
            return Err(UpdateError::DuplicateImage { id });
        }
        let bovw = SparseBovw::encode(&db.codebook, features.iter().map(Vec::as_slice));
        let norm = bovw.norm();

        // Rebuild each affected cluster's list with the new posting.
        let mut digest_updates: BTreeMap<u32, Digest> = BTreeMap::new();
        for (cluster, freq) in bovw.iter() {
            let digest = match &mut db.inv {
                IndexVariant::Plain(index) => {
                    let weight = index.list(cluster).weight;
                    let mut postings = index.list(cluster).postings.clone();
                    postings.push(Posting {
                        image: id,
                        impact: impact_value(weight, freq, norm),
                    });
                    index.replace_list(cluster, postings)
                }
                IndexVariant::Grouped(index) => {
                    let mut entries = grouped_entries(index, cluster);
                    entries.push((id, freq, norm));
                    index.replace_list(cluster, entries)
                }
            }
            .map_err(|_| UpdateError::FilterGeometryExhausted { cluster })?;
            digest_updates.insert(cluster, digest);
        }

        db.mrkd.apply_inv_digest_updates(&digest_updates);
        let signature = self.sign_image(id, &data);
        db.images.insert(id, StoredImage { data, signature });
        db.encodings.push((id, bovw));
        Ok(self.republish(db))
    }

    /// Removes an image from the outsourced database, returning the
    /// refreshed [`PublishedParams`].
    pub fn remove_image(
        &self,
        db: &mut Database,
        id: ImageId,
    ) -> Result<PublishedParams, UpdateError> {
        if !db.images.contains_key(&id) {
            return Err(UpdateError::UnknownImage { id });
        }
        let position = db
            .encodings
            .iter()
            .position(|(i, _)| *i == id)
            .expect("stored images always have an encoding");
        let (_, bovw) = db.encodings.remove(position);

        let mut digest_updates: BTreeMap<u32, Digest> = BTreeMap::new();
        for (cluster, _) in bovw.iter() {
            let digest = match &mut db.inv {
                IndexVariant::Plain(index) => {
                    let postings: Vec<Posting> = index
                        .list(cluster)
                        .postings
                        .iter()
                        .copied()
                        .filter(|p| p.image != id)
                        .collect();
                    index.replace_list(cluster, postings)
                }
                IndexVariant::Grouped(index) => {
                    let entries: Vec<(u64, u32, f32)> = grouped_entries(index, cluster)
                        .into_iter()
                        .filter(|&(image, _, _)| image != id)
                        .collect();
                    index.replace_list(cluster, entries)
                }
            }
            .map_err(|_| UpdateError::FilterGeometryExhausted { cluster })?;
            digest_updates.insert(cluster, digest);
        }

        db.mrkd.apply_inv_digest_updates(&digest_updates);
        db.images.remove(&id);
        Ok(self.republish(db))
    }

    fn sign_image(&self, id: ImageId, data: &[u8]) -> imageproof_crypto::Signature {
        self.signing_key().sign(&image_signing_message(id, data))
    }

    fn republish(&self, db: &Database) -> PublishedParams {
        PublishedParams {
            scheme: db.scheme,
            public_key: self.public_key(),
            root_signature: self
                .signing_key()
                .sign(&root_signing_message(&db.mrkd.combined_root_digest())),
            n_trees: db.mrkd.trees().len(),
        }
    }
}

/// Flattens a grouped list back into `(image, frequency, norm)` entries.
fn grouped_entries(
    index: &imageproof_invindex::grouped::GroupedInvertedIndex,
    cluster: u32,
) -> Vec<(u64, u32, f32)> {
    index
        .list(cluster)
        .groups
        .iter()
        .flat_map(|g| {
            g.members
                .iter()
                .map(move |&(image, norm)| (image, g.frequency, norm))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Client, Scheme, ServiceProvider};
    use imageproof_akm::AkmParams;
    use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};

    fn setup(scheme: Scheme) -> (Corpus, Owner, Database, PublishedParams) {
        let corpus = Corpus::generate(&CorpusConfig {
            n_images: 80,
            n_latent_words: 80,
            ..CorpusConfig::small(DescriptorKind::Surf)
        });
        let owner = Owner::new(&[33u8; 32]);
        let akm = AkmParams {
            n_clusters: 96,
            n_trees: 3,
            max_leaf_size: 2,
            max_checks: 16,
            iterations: 1,
            seed: 7,
        };
        let (db, published) = owner.build_system(&corpus, &akm, scheme);
        (corpus, owner, db, published)
    }

    #[test]
    fn inserted_image_is_retrieved_and_verifies() {
        for scheme in [Scheme::ImageProof, Scheme::OptimizedBoth] {
            let (corpus, owner, mut db, _) = setup(scheme);
            // A brand-new image reusing image 5's scene (same latent words,
            // fresh noise) with a distinctive id.
            let new_id = 10_000;
            let features = corpus.query_from_image(5, 40, 777);
            let data = vec![0xEE; 128];
            let published = owner
                .insert_image(&mut db, new_id, data, &features)
                .expect("insert succeeds");

            let sp = ServiceProvider::new(db);
            let client = Client::new(published);
            let query = corpus.query_from_image(5, 40, 778);
            let (response, _) = sp.query(&query, 4);
            let verified = client.verify(&query, 4, &response).expect("verifies");
            assert!(
                verified.topk.iter().any(|&(id, _)| id == new_id),
                "{scheme:?}: inserted near-duplicate must be retrieved: {:?}",
                verified.topk
            );
        }
    }

    #[test]
    fn removed_image_disappears_and_queries_still_verify() {
        for scheme in [Scheme::ImageProof, Scheme::OptimizedBoth] {
            let (corpus, owner, mut db, _) = setup(scheme);
            let victim = 5u64;
            let published = owner.remove_image(&mut db, victim).expect("remove");
            let sp = ServiceProvider::new(db);
            let client = Client::new(published);
            let query = corpus.query_from_image(victim, 40, 779);
            let (response, _) = sp.query(&query, 4);
            let verified = client.verify(&query, 4, &response).expect("verifies");
            assert!(
                verified.topk.iter().all(|&(id, _)| id != victim),
                "{scheme:?}: removed image must not reappear"
            );
        }
    }

    #[test]
    fn stale_published_params_reject_updated_database() {
        let (corpus, owner, mut db, stale) = setup(Scheme::ImageProof);
        let features = corpus.query_from_image(9, 30, 780);
        owner
            .insert_image(&mut db, 20_000, vec![1, 2, 3], &features)
            .expect("insert");
        let sp = ServiceProvider::new(db);
        let stale_client = Client::new(stale);
        let query = corpus.query_from_image(9, 30, 781);
        let (response, _) = sp.query(&query, 3);
        // The stale root signature no longer matches the updated ADS.
        assert!(stale_client.verify(&query, 3, &response).is_err());
    }

    #[test]
    fn duplicate_insert_and_unknown_remove_are_rejected() {
        let (corpus, owner, mut db, _) = setup(Scheme::ImageProof);
        let features = corpus.query_from_image(0, 20, 782);
        assert!(matches!(
            owner.insert_image(&mut db, 0, vec![1], &features),
            Err(UpdateError::DuplicateImage { id: 0 })
        ));
        assert!(matches!(
            owner.remove_image(&mut db, 999_999),
            Err(UpdateError::UnknownImage { .. })
        ));
    }

    #[test]
    fn insert_then_remove_restores_the_root() {
        let (corpus, owner, mut db, _) = setup(Scheme::ImageProof);
        let before = db.mrkd.combined_root_digest();
        let features = corpus.query_from_image(3, 30, 783);
        owner
            .insert_image(&mut db, 30_000, vec![9; 64], &features)
            .expect("insert");
        assert_ne!(db.mrkd.combined_root_digest(), before);
        owner.remove_image(&mut db, 30_000).expect("remove");
        assert_eq!(
            db.mrkd.combined_root_digest(),
            before,
            "insert ∘ remove must be the identity on the ADS"
        );
    }
}
