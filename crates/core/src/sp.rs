//! The service provider: authenticated query processing (paper §V-B,
//! Alg. 5).

use crate::owner::{Database, IndexVariant};
use crate::scheme::{BovwVoVariant, InvVoVariant, QueryVo};
use imageproof_akm::SparseBovw;
use imageproof_invindex::grouped::grouped_search;
use imageproof_invindex::{inv_search, BoundsMode};
use imageproof_mrkd::{mrkd_search, mrkd_search_baseline};
use imageproof_vision::ImageId;
use std::time::Instant;

/// One returned image with its raw payload.
#[derive(Clone, Debug)]
pub struct ImageResult {
    pub id: ImageId,
    pub data: Vec<u8>,
    /// The SP's claimed similarity score (the client re-derives its own).
    pub score: f32,
}

/// The SP's answer to a top-k query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    pub results: Vec<ImageResult>,
    pub vo: QueryVo,
}

/// SP-side cost breakdown for one query.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpStats {
    /// Wall-clock seconds spent on BoVW encoding + MRKD VO generation.
    pub bovw_seconds: f64,
    /// Wall-clock seconds spent on inverted-index search + VO generation.
    pub inv_seconds: f64,
    /// Shared-node ratio of the MRKD traversal (Figs. 7–8).
    pub shared_ratio: f64,
    /// Postings popped / total postings in relevant lists (Figs. 9–11).
    pub popped: usize,
    pub total_postings: usize,
}

impl SpStats {
    pub fn popped_ratio(&self) -> f64 {
        if self.total_postings == 0 {
            0.0
        } else {
            self.popped as f64 / self.total_postings as f64
        }
    }
}

/// The service provider hosting one outsourced database.
pub struct ServiceProvider {
    db: Database,
}

impl ServiceProvider {
    pub fn new(db: Database) -> ServiceProvider {
        ServiceProvider { db }
    }

    /// Read access to the hosted database (used by adversarial tests and
    /// ablation benchmarks).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Reclaims the hosted database (e.g. to hand back to the owner for
    /// maintenance).
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Processes a top-k query (Alg. 5): BoVW-encodes the query features
    /// with threshold computation, runs `MRKDSearch` per tree, searches the
    /// inverted index, and assembles the VO.
    pub fn query(&self, features: &[Vec<f32>], k: usize) -> (QueryResponse, SpStats) {
        let mut stats = SpStats::default();
        let scheme = self.db.scheme;

        // --- BoVW step (Alg. 5 lines 1–4) ---
        let t0 = Instant::now();
        let mut assignments = Vec::with_capacity(features.len());
        let mut thresholds = Vec::with_capacity(features.len());
        for f in features {
            let (cluster, dist_sq) = self.db.codebook.assign_with_threshold(f);
            assignments.push(cluster);
            thresholds.push(dist_sq);
        }
        let (bovw_vo, mrkd_stats) = if scheme.shares_nodes() {
            let out = mrkd_search(&self.db.mrkd, features, &thresholds);
            (BovwVoVariant::Shared(out.vo), out.stats)
        } else {
            let (vo, _, s) = mrkd_search_baseline(&self.db.mrkd, features, &thresholds);
            (BovwVoVariant::PerQuery(vo), s)
        };
        let query_bovw = SparseBovw::from_counts(assignments.iter().map(|&c| (c, 1)));
        stats.bovw_seconds = t0.elapsed().as_secs_f64();
        stats.shared_ratio = mrkd_stats.shared_ratio();

        // --- Inverted-index step (Alg. 5 line 5) ---
        let t1 = Instant::now();
        let (topk, inv_vo) = match (&self.db.inv, scheme.uses_filters()) {
            (IndexVariant::Plain(index), true) => {
                let out = inv_search(index, &query_bovw, k, BoundsMode::CuckooFiltered);
                stats.popped = out.stats.popped;
                stats.total_postings = out.stats.total_postings;
                (out.topk, InvVoVariant::Plain(out.vo))
            }
            (IndexVariant::Plain(index), false) => {
                let out = inv_search(index, &query_bovw, k, BoundsMode::MaxBound);
                stats.popped = out.stats.popped;
                stats.total_postings = out.stats.total_postings;
                (out.topk, InvVoVariant::Plain(out.vo))
            }
            (IndexVariant::Grouped(index), _) => {
                let out = grouped_search(index, &query_bovw, k);
                stats.popped = out.stats.popped;
                stats.total_postings = out.stats.total_postings;
                (out.topk, InvVoVariant::Grouped(out.vo))
            }
        };
        stats.inv_seconds = t1.elapsed().as_secs_f64();

        // --- Results + signatures (Alg. 5 lines 6–7) ---
        let mut results = Vec::with_capacity(topk.len());
        let mut signatures = Vec::with_capacity(topk.len());
        for &(id, score) in &topk {
            let stored = &self.db.images[&id];
            results.push(ImageResult {
                id,
                data: stored.data.clone(),
                score,
            });
            signatures.push(stored.signature);
        }

        (
            QueryResponse {
                results,
                vo: QueryVo {
                    bovw: bovw_vo,
                    inv: inv_vo,
                    signatures,
                },
            },
            stats,
        )
    }
}
