//! The service provider: authenticated query processing (paper §V-B,
//! Alg. 5).

use crate::owner::{Database, IndexVariant};
use crate::scheme::{BovwVoVariant, InvVoVariant, QueryVo, Scheme};
use crate::shard::{ShardVo, ShardedResponse, ShardedVo};
use imageproof_akm::SparseBovw;
use imageproof_invindex::grouped::grouped_search;
use imageproof_invindex::{inv_search, BoundsMode};
use imageproof_mrkd::{mrkd_search_baseline_with, mrkd_search_with};
use imageproof_obs::{micros, Profiler, QueryProfile};
use imageproof_parallel::{par_map, par_map_chunked, Concurrency};
use imageproof_vision::ImageId;

/// One returned image with its raw payload.
#[derive(Clone, Debug)]
pub struct ImageResult {
    pub id: ImageId,
    pub data: Vec<u8>,
    /// The SP's claimed similarity score (the client re-derives its own).
    pub score: f32,
}

/// The SP's answer to a top-k query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    pub results: Vec<ImageResult>,
    pub vo: QueryVo,
}

/// SP-side cost breakdown for one query.
///
/// Timings are views over the query's observability spans
/// (`imageproof-obs`): with recording disabled via
/// [`imageproof_obs::set_enabled`]`(false)` the `*_seconds` fields read 0
/// while every counter field — and every VO byte — stays identical.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpStats {
    /// Wall-clock seconds spent on BoVW encoding + MRKD VO generation.
    pub bovw_seconds: f64,
    /// Wall-clock seconds spent on inverted-index search + VO generation.
    pub inv_seconds: f64,
    /// Shared-node ratio of the MRKD traversal (Figs. 7–8).
    pub shared_ratio: f64,
    /// Postings popped / total postings in relevant lists (Figs. 9–11).
    pub popped: usize,
    pub total_postings: usize,
    /// VO digests that required running Keccak at query time.
    pub hashes_computed: usize,
    /// VO digests copied from build-time memos (MRKD pruned stubs and
    /// leaf-embedded list digests, posting-chain digests, filter
    /// commitments).
    pub hashes_cached: usize,
}

impl SpStats {
    pub fn popped_ratio(&self) -> f64 {
        if self.total_postings == 0 {
            0.0
        } else {
            self.popped as f64 / self.total_postings as f64
        }
    }

    /// Fraction of VO digests served from build-time memos (guarded like
    /// [`SpStats::popped_ratio`] against empty VOs).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.hashes_computed + self.hashes_cached;
        if total == 0 {
            0.0
        } else {
            self.hashes_cached as f64 / total as f64
        }
    }
}

/// Records one finished SP query into the global metrics registry.
fn record_sp_query(scheme: Scheme, stats: &SpStats) {
    let reg = imageproof_obs::global();
    let slug = scheme.slug();
    reg.counter("imageproof_sp_queries_total", &[("scheme", slug)])
        .inc();
    for (phase, seconds) in [("bovw", stats.bovw_seconds), ("inv", stats.inv_seconds)] {
        reg.histogram(
            "imageproof_sp_phase_micros",
            &[("scheme", slug), ("phase", phase)],
        )
        .record(micros(seconds));
    }
    for (kind, n) in [
        ("computed", stats.hashes_computed),
        ("cached", stats.hashes_cached),
    ] {
        reg.counter(
            "imageproof_sp_hashes_total",
            &[("scheme", slug), ("kind", kind)],
        )
        .add(n as u64);
    }
    reg.counter("imageproof_sp_postings_popped_total", &[("scheme", slug)])
        .add(stats.popped as u64);
}

/// The service provider hosting one outsourced database.
pub struct ServiceProvider {
    db: Database,
}

impl ServiceProvider {
    pub fn new(db: Database) -> ServiceProvider {
        ServiceProvider { db }
    }

    /// Read access to the hosted database (used by adversarial tests and
    /// ablation benchmarks).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Reclaims the hosted database (e.g. to hand back to the owner for
    /// maintenance).
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Processes a top-k query (Alg. 5): BoVW-encodes the query features
    /// with threshold computation, runs `MRKDSearch` per tree, searches the
    /// inverted index, and assembles the VO.
    pub fn query(&self, features: &[Vec<f32>], k: usize) -> (QueryResponse, SpStats) {
        self.query_with(features, k, Concurrency::serial())
    }

    /// [`ServiceProvider::query`] with the per-feature work fanned out
    /// across workers: nearest-cluster assignment chunks `features`, and
    /// `MRKDSearch` parallelizes per tree (shared schemes) or per query
    /// vector (Baseline). Per-feature outputs merge in feature index order,
    /// so shared-node VO compression, [`SpStats`] counters, and the final
    /// VO bytes are identical to the serial path for every thread count.
    pub fn query_with(
        &self,
        features: &[Vec<f32>],
        k: usize,
        conc: Concurrency,
    ) -> (QueryResponse, SpStats) {
        let (response, stats, _) = self.query_profiled(features, k, conc);
        (response, stats)
    }

    /// [`ServiceProvider::query_with`] that additionally returns the
    /// query's structured span profile (phases `bovw`, `inv`, `assemble`
    /// with their counters). The profile is pure observation: the response
    /// and VO bytes are byte-identical whether or not recording is enabled
    /// (proven by the `obs_equivalence` suite).
    pub fn query_profiled(
        &self,
        features: &[Vec<f32>],
        k: usize,
        conc: Concurrency,
    ) -> (QueryResponse, SpStats, QueryProfile) {
        let mut prof = Profiler::new("sp.query");
        let (response, stats) = self.query_impl(features, k, conc, &mut prof);
        if prof.is_recording() {
            record_sp_query(self.db.scheme, &stats);
        }
        (response, stats, prof.finish())
    }

    fn query_impl(
        &self,
        features: &[Vec<f32>],
        k: usize,
        conc: Concurrency,
        prof: &mut Profiler,
    ) -> (QueryResponse, SpStats) {
        let mut stats = SpStats::default();
        let scheme = self.db.scheme;

        // --- BoVW step (Alg. 5 lines 1–4) ---
        prof.enter("bovw");
        prof.add("features", features.len() as u64);
        let assigned: Vec<(u32, f32)> = par_map_chunked(conc, features, 8, |_, f| {
            self.db.codebook.assign_with_threshold(f)
        });
        let mut assignments = Vec::with_capacity(features.len());
        let mut thresholds = Vec::with_capacity(features.len());
        for (cluster, dist_sq) in assigned {
            assignments.push(cluster);
            thresholds.push(dist_sq);
        }
        let (bovw_vo, mrkd_stats) = if scheme.shares_nodes() {
            let out = mrkd_search_with(&self.db.mrkd, features, &thresholds, conc);
            (BovwVoVariant::Shared(out.vo), out.stats)
        } else {
            let (vo, _, s) = mrkd_search_baseline_with(&self.db.mrkd, features, &thresholds, conc);
            (BovwVoVariant::PerQuery(vo), s)
        };
        let query_bovw = SparseBovw::from_counts(assignments.iter().map(|&c| (c, 1)));
        stats.shared_ratio = mrkd_stats.shared_ratio();
        stats.hashes_cached = mrkd_stats.digests_cached;
        prof.add("hashes_cached", mrkd_stats.digests_cached as u64);
        stats.bovw_seconds = prof.exit();

        // --- Inverted-index step (Alg. 5 line 5) ---
        prof.enter("inv");
        let (topk, inv_vo) = match (&self.db.inv, scheme.uses_filters()) {
            (IndexVariant::Plain(index), true) => {
                let out = inv_search(index, &query_bovw, k, BoundsMode::CuckooFiltered);
                stats.popped = out.stats.popped;
                stats.total_postings = out.stats.total_postings;
                stats.hashes_computed += out.stats.hashes_computed;
                stats.hashes_cached += out.stats.hashes_cached;
                (out.topk, InvVoVariant::Plain(out.vo))
            }
            (IndexVariant::Plain(index), false) => {
                let out = inv_search(index, &query_bovw, k, BoundsMode::MaxBound);
                stats.popped = out.stats.popped;
                stats.total_postings = out.stats.total_postings;
                stats.hashes_computed += out.stats.hashes_computed;
                stats.hashes_cached += out.stats.hashes_cached;
                (out.topk, InvVoVariant::Plain(out.vo))
            }
            (IndexVariant::Grouped(index), _) => {
                let out = grouped_search(index, &query_bovw, k);
                stats.popped = out.stats.popped;
                stats.total_postings = out.stats.total_postings;
                stats.hashes_computed += out.stats.hashes_computed;
                stats.hashes_cached += out.stats.hashes_cached;
                (out.topk, InvVoVariant::Grouped(out.vo))
            }
        };
        prof.add("popped", stats.popped as u64);
        prof.add("postings", stats.total_postings as u64);
        prof.add("hashes_computed", stats.hashes_computed as u64);
        stats.inv_seconds = prof.exit();

        // --- Results + signatures (Alg. 5 lines 6–7) ---
        prof.enter("assemble");
        prof.add("results", topk.len() as u64);
        let mut results = Vec::with_capacity(topk.len());
        let mut signatures = Vec::with_capacity(topk.len());
        for &(id, score) in &topk {
            let stored = &self.db.images[&id];
            results.push(ImageResult {
                id,
                data: stored.data.clone(),
                score,
            });
            signatures.push(stored.signature);
        }
        prof.exit();

        (
            QueryResponse {
                results,
                vo: QueryVo {
                    bovw: bovw_vo,
                    inv: inv_vo,
                    signatures,
                },
            },
            stats,
        )
    }

    /// Serves independent client queries concurrently over the shared
    /// immutable [`Database`] — the millions-of-users serving shape: one
    /// database, many simultaneous top-k queries.
    ///
    /// Each query runs the serial [`ServiceProvider::query`] path on one
    /// worker (inter-query parallelism, not intra-query), and responses are
    /// returned in input order, so `query_batch(qs, k, conc)[i]` is
    /// bit-identical to `query(&qs[i], k)` for every thread count.
    pub fn query_batch(
        &self,
        queries: &[Vec<Vec<f32>>],
        k: usize,
        conc: Concurrency,
    ) -> Vec<(QueryResponse, SpStats)> {
        par_map(conc, queries, |_, features| self.query(features, k))
    }
}

/// The service provider hosting a sharded deployment: one monolith-style
/// engine per shard, answered through an authenticated cross-shard merge
/// (`shard.rs`).
pub struct ShardedSp {
    shards: Vec<ServiceProvider>,
}

/// SP-side cost breakdown for one sharded query. Timings are span views,
/// like [`SpStats`] (0 when observability recording is disabled).
#[derive(Clone, Debug, Default)]
pub struct ShardedSpStats {
    /// Stats of the full-k fan-out, indexed by shard id.
    pub per_shard: Vec<SpStats>,
    /// Number of k=1 bound queries issued for excluded shards.
    pub bound_queries: usize,
    /// Wall-clock seconds spent merging and assembling the sharded VO.
    pub merge_seconds: f64,
    /// Wall-clock seconds of the whole sharded query: fan-out, merge,
    /// bound proofs, and VO assembly.
    pub wall_seconds: f64,
}

impl ShardedSpStats {
    /// Query-time Keccak runs summed over the full-k fan-out.
    pub fn total_hashes_computed(&self) -> usize {
        self.per_shard.iter().map(|s| s.hashes_computed).sum()
    }

    /// Build-time digest memo hits summed over the full-k fan-out.
    pub fn total_hashes_cached(&self) -> usize {
        self.per_shard.iter().map(|s| s.hashes_cached).sum()
    }

    /// Postings popped summed over the full-k fan-out.
    pub fn total_popped(&self) -> usize {
        self.per_shard.iter().map(|s| s.popped).sum()
    }

    /// Total postings in relevant lists summed over the full-k fan-out.
    pub fn total_postings(&self) -> usize {
        self.per_shard.iter().map(|s| s.total_postings).sum()
    }

    /// Deployment-wide digest cache hit ratio (guarded against empty VOs,
    /// like [`SpStats::cache_hit_ratio`]).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.total_hashes_computed() + self.total_hashes_cached();
        if total == 0 {
            0.0
        } else {
            self.total_hashes_cached() as f64 / total as f64
        }
    }

    /// Seconds of the slowest shard's full-k query (BoVW + inverted step)
    /// — the fan-out's critical path when every shard gets its own worker.
    pub fn slowest_shard_seconds(&self) -> f64 {
        self.per_shard
            .iter()
            .map(|s| s.bovw_seconds + s.inv_seconds)
            .fold(0.0, f64::max)
    }

    /// Fraction of the query's wall time spent in merge + VO assembly
    /// (0 when no wall time was recorded).
    pub fn merge_share(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.merge_seconds / self.wall_seconds
        }
    }
}

impl ShardedSp {
    /// Hosts the owner's per-shard databases (`shards[i]` serves shard `i`).
    pub fn new(shards: Vec<Database>) -> ShardedSp {
        ShardedSp {
            shards: shards.into_iter().map(ServiceProvider::new).collect(),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard engines (used by adversarial tests and ablations).
    pub fn shards(&self) -> &[ServiceProvider] {
        &self.shards
    }

    /// Answers a sharded top-k query serially.
    pub fn query(&self, features: &[Vec<f32>], k: usize) -> (ShardedResponse, ShardedSpStats) {
        self.query_with(features, k, Concurrency::serial())
    }

    /// [`ShardedSp::query`] with the per-shard full-k queries (and the
    /// excluded shards' k=1 bound queries) fanned out across workers.
    /// Fan-out preserves shard order and each shard runs the serial engine,
    /// so the response is bit-identical for every thread count.
    pub fn query_with(
        &self,
        features: &[Vec<f32>],
        k: usize,
        conc: Concurrency,
    ) -> (ShardedResponse, ShardedSpStats) {
        let (response, stats, _) = self.query_profiled(features, k, conc);
        (response, stats)
    }

    /// [`ShardedSp::query_with`] that additionally returns the structured
    /// span profile: phases `fanout`, `merge`, `bounds`, `assemble`, with
    /// each shard's own `sp.query` sub-profile grafted under the phase
    /// that issued it (tagged with a `shard` counter).
    pub fn query_profiled(
        &self,
        features: &[Vec<f32>],
        k: usize,
        conc: Concurrency,
    ) -> (ShardedResponse, ShardedSpStats, QueryProfile) {
        let mut prof = Profiler::new("sharded.query");

        // Phase 1: full-k query on every shard.
        prof.enter("fanout");
        let fanned: Vec<(QueryResponse, SpStats, QueryProfile)> =
            par_map(conc, &self.shards, |_, sp| {
                sp.query_profiled(features, k, Concurrency::serial())
            });
        let mut full: Vec<(QueryResponse, SpStats)> = Vec::with_capacity(fanned.len());
        for (shard, (resp, stats, sub)) in fanned.into_iter().enumerate() {
            prof.attach(sub, "shard", shard as u64);
            full.push((resp, stats));
        }
        let fanout_seconds = prof.exit();

        // Phase 2: merge the local top-ks under (score desc, id asc) — the
        // same order the per-shard engines use — and keep the k global
        // winners. Scores are shard-invariant (global impact model), so
        // this merge reproduces the monolith top-k exactly.
        prof.enter("merge");
        let mut candidates: Vec<(usize, ImageId, f32)> = Vec::new();
        for (shard, (resp, _)) in full.iter().enumerate() {
            for r in &resp.results {
                candidates.push((shard, r.id, r.score));
            }
        }
        candidates.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.1.cmp(&b.1)));
        candidates.truncate(k);
        let mut contributes = vec![false; self.shards.len()];
        for &(shard, _, _) in &candidates {
            contributes[shard] = true;
        }
        // k = 0 asks for nothing: no winners, and no bound proofs needed —
        // every shard stays "contributing" with an empty (exhausted) claim.
        if k == 0 {
            for c in contributes.iter_mut() {
                *c = true;
            }
        }
        prof.add("candidates", candidates.len() as u64);
        let mut merge_seconds = prof.exit();

        // Phase 3: k=1 bound proofs for shards without a global winner.
        prof.enter("bounds");
        let losers: Vec<usize> = (0..self.shards.len())
            .filter(|&s| !contributes[s])
            .collect();
        prof.add("bound_queries", losers.len() as u64);
        let bound_fanned: Vec<(QueryResponse, SpStats, QueryProfile)> =
            par_map(conc, &losers, |_, &s| {
                self.shards[s].query_profiled(features, 1, Concurrency::serial())
            });
        let mut bound: Vec<QueryResponse> = Vec::with_capacity(bound_fanned.len());
        for (&shard, (resp, _, sub)) in losers.iter().zip(bound_fanned) {
            prof.attach(sub, "shard", shard as u64);
            bound.push(resp);
        }
        let bounds_seconds = prof.exit();

        // Phase 4: assemble the global results and the sharded VO, both in
        // ascending shard order within each section.
        prof.enter("assemble");
        let mut results = Vec::with_capacity(candidates.len());
        for &(shard, id, score) in &candidates {
            if let Some(r) = full[shard].0.results.iter().find(|r| r.id == id) {
                results.push(ImageResult {
                    id,
                    data: r.data.clone(),
                    score,
                });
            }
        }
        let mut per_shard = Vec::with_capacity(full.len());
        let mut contributing = Vec::new();
        for (shard, (resp, stats)) in full.iter().enumerate() {
            per_shard.push(*stats);
            if contributes[shard] {
                contributing.push(ShardVo {
                    shard_id: shard as u32,
                    claimed: resp.results.iter().map(|r| r.id).collect(),
                    vo: resp.vo.clone(),
                });
            }
        }
        let mut excluded = Vec::with_capacity(losers.len());
        for (&shard, resp) in losers.iter().zip(&bound) {
            excluded.push(ShardVo {
                shard_id: shard as u32,
                claimed: resp.results.iter().map(|r| r.id).collect(),
                vo: resp.vo.clone(),
            });
        }
        merge_seconds += prof.exit();

        let stats = ShardedSpStats {
            per_shard,
            bound_queries: losers.len(),
            merge_seconds,
            wall_seconds: fanout_seconds + merge_seconds + bounds_seconds,
        };
        if prof.is_recording() {
            self.record_sharded_query(&stats, fanout_seconds, bounds_seconds);
        }

        let vo = ShardedVo {
            shard_count: self.shards.len() as u32,
            contributing,
            excluded,
        };
        (ShardedResponse { results, vo }, stats, prof.finish())
    }

    /// Records one finished sharded query into the global registry.
    fn record_sharded_query(
        &self,
        stats: &ShardedSpStats,
        fanout_seconds: f64,
        bounds_seconds: f64,
    ) {
        let Some(slug) = self.shards.first().map(|sp| sp.db.scheme.slug()) else {
            return;
        };
        let reg = imageproof_obs::global();
        reg.counter("imageproof_sharded_queries_total", &[("scheme", slug)])
            .inc();
        reg.counter(
            "imageproof_sharded_bound_queries_total",
            &[("scheme", slug)],
        )
        .add(stats.bound_queries as u64);
        for (phase, seconds) in [
            ("fanout", fanout_seconds),
            ("merge", stats.merge_seconds),
            ("bounds", bounds_seconds),
        ] {
            reg.histogram(
                "imageproof_sharded_phase_micros",
                &[("scheme", slug), ("phase", phase)],
            )
            .record(micros(seconds));
        }
    }
}
