//! The service provider: authenticated query processing (paper §V-B,
//! Alg. 5).

use crate::fanout;
use crate::owner::{Database, IndexVariant};
use crate::scheme::{BovwVoVariant, InvVoVariant, QueryVo, Scheme};
use crate::shard::ShardedResponse;
use imageproof_akm::SparseBovw;
use imageproof_crypto::Signature;
use imageproof_invindex::grouped::grouped_search;
use imageproof_invindex::{inv_search, BoundsMode, InvSearchStats};
use imageproof_mrkd::{mrkd_search_baseline_with, mrkd_search_with};
use imageproof_obs::{micros, Profiler, QueryProfile};
use imageproof_parallel::{par_map, par_map_chunked, Concurrency};
use imageproof_vision::ImageId;
use std::collections::BTreeMap;

/// One returned image with its raw payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ImageResult {
    pub id: ImageId,
    pub data: Vec<u8>,
    /// The SP's claimed similarity score (the client re-derives its own).
    pub score: f32,
}

/// The SP's answer to a top-k query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    pub results: Vec<ImageResult>,
    pub vo: QueryVo,
}

/// SP-side cost breakdown for one query.
///
/// Timings are views over the query's observability spans
/// (`imageproof-obs`): with recording disabled via
/// [`imageproof_obs::set_enabled`]`(false)` the `*_seconds` fields read 0
/// while every counter field — and every VO byte — stays identical.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpStats {
    /// Wall-clock seconds spent on BoVW encoding + MRKD VO generation.
    pub bovw_seconds: f64,
    /// Wall-clock seconds spent on inverted-index search + VO generation.
    pub inv_seconds: f64,
    /// Shared-node ratio of the MRKD traversal (Figs. 7–8).
    pub shared_ratio: f64,
    /// Postings popped / total postings in relevant lists (Figs. 9–11).
    pub popped: usize,
    pub total_postings: usize,
    /// VO digests that required running Keccak at query time.
    pub hashes_computed: usize,
    /// VO digests copied from build-time memos (MRKD pruned stubs and
    /// leaf-embedded list digests, block-summary digests, filter
    /// commitments).
    pub hashes_cached: usize,
    /// Posting blocks the block-max search left unscanned (each proven by
    /// one fence digest in the VO).
    pub blocks_skipped: usize,
    /// Posting blocks the search actually popped.
    pub blocks_scanned: usize,
}

impl SpStats {
    pub fn popped_ratio(&self) -> f64 {
        if self.total_postings == 0 {
            0.0
        } else {
            self.popped as f64 / self.total_postings as f64
        }
    }

    /// Fraction of VO digests served from build-time memos (guarded like
    /// [`SpStats::popped_ratio`] against empty VOs).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.hashes_computed + self.hashes_cached;
        if total == 0 {
            0.0
        } else {
            self.hashes_cached as f64 / total as f64
        }
    }
}

/// Records one finished SP query into the global metrics registry.
fn record_sp_query(scheme: Scheme, stats: &SpStats) {
    let reg = imageproof_obs::global();
    let slug = scheme.slug();
    reg.counter("imageproof_sp_queries_total", &[("scheme", slug)])
        .inc();
    for (phase, seconds) in [("bovw", stats.bovw_seconds), ("inv", stats.inv_seconds)] {
        reg.histogram(
            "imageproof_sp_phase_micros",
            &[("scheme", slug), ("phase", phase)],
        )
        .record(micros(seconds));
    }
    for (kind, n) in [
        ("computed", stats.hashes_computed),
        ("cached", stats.hashes_cached),
    ] {
        reg.counter(
            "imageproof_sp_hashes_total",
            &[("scheme", slug), ("kind", kind)],
        )
        .add(n as u64);
    }
    reg.counter("imageproof_sp_postings_popped_total", &[("scheme", slug)])
        .add(stats.popped as u64);
    for (kind, n) in [
        ("skipped", stats.blocks_skipped),
        ("scanned", stats.blocks_scanned),
    ] {
        reg.counter(
            "imageproof_sp_blocks_total",
            &[("scheme", slug), ("kind", kind)],
        )
        .add(n as u64);
    }
}

/// The service provider hosting one outsourced database.
pub struct ServiceProvider {
    db: Database,
}

impl ServiceProvider {
    pub fn new(db: Database) -> ServiceProvider {
        ServiceProvider { db }
    }

    /// Read access to the hosted database (used by adversarial tests and
    /// ablation benchmarks).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Reclaims the hosted database (e.g. to hand back to the owner for
    /// maintenance).
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Processes a top-k query (Alg. 5): BoVW-encodes the query features
    /// with threshold computation, runs `MRKDSearch` per tree, searches the
    /// inverted index, and assembles the VO.
    pub fn query(&self, features: &[Vec<f32>], k: usize) -> (QueryResponse, SpStats) {
        self.query_with(features, k, Concurrency::serial())
    }

    /// [`ServiceProvider::query`] with the per-feature work fanned out
    /// across workers: nearest-cluster assignment chunks `features`, and
    /// `MRKDSearch` parallelizes per tree (shared schemes) or per query
    /// vector (Baseline). Per-feature outputs merge in feature index order,
    /// so shared-node VO compression, [`SpStats`] counters, and the final
    /// VO bytes are identical to the serial path for every thread count.
    pub fn query_with(
        &self,
        features: &[Vec<f32>],
        k: usize,
        conc: Concurrency,
    ) -> (QueryResponse, SpStats) {
        let (response, stats, _) = self.query_profiled(features, k, conc);
        (response, stats)
    }

    /// [`ServiceProvider::query_with`] that additionally returns the
    /// query's structured span profile (phases `bovw`, `inv`, `assemble`
    /// with their counters). The profile is pure observation: the response
    /// and VO bytes are byte-identical whether or not recording is enabled
    /// (proven by the `obs_equivalence` suite).
    pub fn query_profiled(
        &self,
        features: &[Vec<f32>],
        k: usize,
        conc: Concurrency,
    ) -> (QueryResponse, SpStats, QueryProfile) {
        let mut prof = Profiler::new("sp.query");
        let (response, stats) = self.query_impl(features, k, conc, &mut prof);
        if prof.is_recording() {
            record_sp_query(self.db.scheme, &stats);
        }
        (response, stats, prof.finish())
    }

    fn query_impl(
        &self,
        features: &[Vec<f32>],
        k: usize,
        conc: Concurrency,
        prof: &mut Profiler,
    ) -> (QueryResponse, SpStats) {
        let mut stats = SpStats::default();
        let scheme = self.db.scheme;

        // --- BoVW step (Alg. 5 lines 1–4) ---
        prof.enter("bovw");
        prof.add("features", features.len() as u64);
        let assigned: Vec<(u32, f32)> = par_map_chunked(conc, features, 8, |_, f| {
            self.db.codebook.assign_with_threshold(f)
        });
        let mut assignments = Vec::with_capacity(features.len());
        let mut thresholds = Vec::with_capacity(features.len());
        for (cluster, dist_sq) in assigned {
            assignments.push(cluster);
            thresholds.push(dist_sq);
        }
        let (bovw_vo, mrkd_stats) = if scheme.shares_nodes() {
            let out = mrkd_search_with(&self.db.mrkd, features, &thresholds, conc);
            (BovwVoVariant::Shared(out.vo), out.stats)
        } else {
            let (vo, _, s) = mrkd_search_baseline_with(&self.db.mrkd, features, &thresholds, conc);
            (BovwVoVariant::PerQuery(vo), s)
        };
        let query_bovw = SparseBovw::from_counts(assignments.iter().map(|&c| (c, 1)));
        stats.shared_ratio = mrkd_stats.shared_ratio();
        stats.hashes_cached = mrkd_stats.digests_cached;
        prof.add("hashes_cached", mrkd_stats.digests_cached as u64);
        stats.bovw_seconds = prof.exit();

        // --- Inverted-index step (Alg. 5 line 5) ---
        prof.enter("inv");
        let (topk, inv_vo, inv_stats) = self.inv_step(&query_bovw, k);
        stats.popped = inv_stats.popped;
        stats.total_postings = inv_stats.total_postings;
        stats.hashes_computed += inv_stats.hashes_computed;
        stats.hashes_cached += inv_stats.hashes_cached;
        stats.blocks_skipped = inv_stats.blocks_skipped;
        stats.blocks_scanned = inv_stats.blocks_scanned;
        prof.add("popped", stats.popped as u64);
        prof.add("postings", stats.total_postings as u64);
        prof.add("hashes_computed", stats.hashes_computed as u64);
        prof.add("blocks_skipped", stats.blocks_skipped as u64);
        prof.add("blocks_scanned", stats.blocks_scanned as u64);
        stats.inv_seconds = prof.exit();

        // --- Results + signatures (Alg. 5 lines 6–7) ---
        prof.enter("assemble");
        prof.add("results", topk.len() as u64);
        let mut results = Vec::with_capacity(topk.len());
        let mut signatures = Vec::with_capacity(topk.len());
        for &(id, score) in &topk {
            let stored = &self.db.images[&id];
            results.push(ImageResult {
                id,
                data: stored.data.clone(),
                score,
            });
            signatures.push(stored.signature);
        }
        prof.exit();

        (
            QueryResponse {
                results,
                vo: QueryVo {
                    bovw: bovw_vo,
                    inv: inv_vo,
                    signatures,
                },
            },
            stats,
        )
    }

    /// The inverted-index step alone, at an explicit `k`, over an already
    /// BoVW-encoded query. The BoVW step is k-independent, so the sharded
    /// trim pass re-runs only this step to produce a shard's top-`k'`
    /// claim while reusing the full-k fan-out's BoVW VO verbatim.
    fn inv_step(
        &self,
        query_bovw: &SparseBovw,
        k: usize,
    ) -> (Vec<(ImageId, f32)>, InvVoVariant, InvSearchStats) {
        match (&self.db.inv, self.db.scheme.uses_filters()) {
            (IndexVariant::Plain(index), true) => {
                let out = inv_search(index, query_bovw, k, BoundsMode::CuckooFiltered);
                (out.topk, InvVoVariant::Plain(out.vo), out.stats)
            }
            (IndexVariant::Plain(index), false) => {
                let out = inv_search(index, query_bovw, k, BoundsMode::MaxBound);
                (out.topk, InvVoVariant::Plain(out.vo), out.stats)
            }
            (IndexVariant::Grouped(index), _) => {
                let out = grouped_search(index, query_bovw, k);
                (out.topk, InvVoVariant::Grouped(out.vo), out.stats)
            }
        }
    }

    /// The sharded trim re-query: BoVW-encodes `features` (k-independent,
    /// so the encoding matches the full-k fan-out's bit-for-bit) and runs
    /// the inverted step at `k_trim`, returning the local top-k', its
    /// proof, and the claimed images' owner signatures in claim order.
    /// This is the request a shard server answers during the coordinator's
    /// trim phase (`crate::rpc`).
    pub fn trim_query(
        &self,
        features: &[Vec<f32>],
        k_trim: usize,
    ) -> (Vec<(ImageId, f32)>, InvVoVariant, Vec<Signature>) {
        let query_bovw = SparseBovw::from_counts(
            features
                .iter()
                .map(|f| (self.db.codebook.assign_with_threshold(f).0, 1)),
        );
        self.trim_query_with_bovw(&query_bovw, k_trim)
    }

    /// [`ServiceProvider::trim_query`] over an already-encoded query BoVW
    /// (the in-process fan-out encodes once and re-queries every trim
    /// target with it; the codebook is shared, so the bytes are identical
    /// either way).
    pub fn trim_query_with_bovw(
        &self,
        query_bovw: &SparseBovw,
        k_trim: usize,
    ) -> (Vec<(ImageId, f32)>, InvVoVariant, Vec<Signature>) {
        let (topk, inv, _) = self.inv_step(query_bovw, k_trim);
        let signatures = topk
            .iter()
            .map(|&(id, _)| self.db.images[&id].signature)
            .collect();
        (topk, inv, signatures)
    }

    /// Serves independent client queries concurrently over the shared
    /// immutable [`Database`] — the millions-of-users serving shape: one
    /// database, many simultaneous top-k queries.
    ///
    /// Each query runs the serial [`ServiceProvider::query`] path on one
    /// worker (inter-query parallelism, not intra-query), and responses are
    /// returned in input order, so `query_batch(qs, k, conc)[i]` is
    /// bit-identical to `query(&qs[i], k)` for every thread count.
    pub fn query_batch(
        &self,
        queries: &[Vec<Vec<f32>>],
        k: usize,
        conc: Concurrency,
    ) -> Vec<(QueryResponse, SpStats)> {
        par_map(conc, queries, |_, features| self.query(features, k))
    }
}

/// The service provider hosting a sharded deployment: one monolith-style
/// engine per shard, answered through an authenticated cross-shard merge
/// (`shard.rs`).
pub struct ShardedSp {
    shards: Vec<ServiceProvider>,
}

/// SP-side cost breakdown for one sharded query. Timings are span views,
/// like [`SpStats`] (0 when observability recording is disabled).
#[derive(Clone, Debug, Default)]
pub struct ShardedSpStats {
    /// Stats of the full-k fan-out, indexed by shard id.
    pub per_shard: Vec<SpStats>,
    /// Number of trimmed (top-k') inverted-index re-queries issued for
    /// shards contributing fewer than k − 1 global winners.
    pub trim_queries: usize,
    /// Entries the merge trim dropped from sub-VO claims, summed over
    /// shards (full-k fan-out length minus trimmed claim length).
    pub trimmed_entries: usize,
    /// Response bytes the shared-section dedup removed (inline BoVW VO
    /// sizes minus patch sizes, net of the template itself).
    pub dedup_bytes_saved: usize,
    /// Wall-clock seconds spent merging and assembling the sharded VO.
    pub merge_seconds: f64,
    /// Wall-clock seconds of the whole sharded query: fan-out, merge,
    /// trim re-queries, and VO assembly.
    pub wall_seconds: f64,
}

impl ShardedSpStats {
    /// Query-time Keccak runs summed over the full-k fan-out.
    pub fn total_hashes_computed(&self) -> usize {
        self.per_shard.iter().map(|s| s.hashes_computed).sum()
    }

    /// Build-time digest memo hits summed over the full-k fan-out.
    pub fn total_hashes_cached(&self) -> usize {
        self.per_shard.iter().map(|s| s.hashes_cached).sum()
    }

    /// Postings popped summed over the full-k fan-out.
    pub fn total_popped(&self) -> usize {
        self.per_shard.iter().map(|s| s.popped).sum()
    }

    /// Total postings in relevant lists summed over the full-k fan-out.
    pub fn total_postings(&self) -> usize {
        self.per_shard.iter().map(|s| s.total_postings).sum()
    }

    /// Deployment-wide digest cache hit ratio (guarded against empty VOs,
    /// like [`SpStats::cache_hit_ratio`]).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.total_hashes_computed() + self.total_hashes_cached();
        if total == 0 {
            0.0
        } else {
            self.total_hashes_cached() as f64 / total as f64
        }
    }

    /// Seconds of the slowest shard's full-k query (BoVW + inverted step)
    /// — the fan-out's critical path when every shard gets its own worker.
    pub fn slowest_shard_seconds(&self) -> f64 {
        self.per_shard
            .iter()
            .map(|s| s.bovw_seconds + s.inv_seconds)
            .fold(0.0, f64::max)
    }

    /// Fraction of the query's wall time spent in merge + VO assembly
    /// (0 when no wall time was recorded).
    pub fn merge_share(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.merge_seconds / self.wall_seconds
        }
    }
}

impl ShardedSp {
    /// Hosts the owner's per-shard databases (`shards[i]` serves shard `i`).
    pub fn new(shards: Vec<Database>) -> ShardedSp {
        ShardedSp {
            shards: shards.into_iter().map(ServiceProvider::new).collect(),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard engines (used by adversarial tests and ablations).
    pub fn shards(&self) -> &[ServiceProvider] {
        &self.shards
    }

    /// Dissolves the in-process fan-out into its per-shard engines — the
    /// handoff point to socket serving: each engine moves into its own
    /// [`crate::rpc::ShardServer`] process/thread.
    pub fn into_shards(self) -> Vec<ServiceProvider> {
        self.shards
    }

    /// Answers a sharded top-k query serially.
    pub fn query(&self, features: &[Vec<f32>], k: usize) -> (ShardedResponse, ShardedSpStats) {
        self.query_with(features, k, Concurrency::serial())
    }

    /// [`ShardedSp::query`] with the per-shard full-k queries (and the
    /// trimmed top-k' re-queries) fanned out across workers. Fan-out
    /// preserves shard order and each shard runs the serial engine, so the
    /// response is bit-identical for every thread count.
    pub fn query_with(
        &self,
        features: &[Vec<f32>],
        k: usize,
        conc: Concurrency,
    ) -> (ShardedResponse, ShardedSpStats) {
        let (response, stats, _) = self.query_profiled(features, k, conc);
        (response, stats)
    }

    /// [`ShardedSp::query_with`] that additionally returns the structured
    /// span profile: phases `fanout`, `merge`, `trim`, `assemble`, with
    /// each shard's own `sp.query` sub-profile grafted under the phase
    /// that issued it (tagged with a `shard` counter).
    pub fn query_profiled(
        &self,
        features: &[Vec<f32>],
        k: usize,
        conc: Concurrency,
    ) -> (ShardedResponse, ShardedSpStats, QueryProfile) {
        let mut prof = Profiler::new("sharded.query");

        // Phase 1: full-k query on every shard.
        prof.enter("fanout");
        let fanned: Vec<(QueryResponse, SpStats, QueryProfile)> =
            par_map(conc, &self.shards, |_, sp| {
                sp.query_profiled(features, k, Concurrency::serial())
            });
        let mut full: Vec<QueryResponse> = Vec::with_capacity(fanned.len());
        let mut per_shard: Vec<SpStats> = Vec::with_capacity(fanned.len());
        for (shard, (resp, stats, sub)) in fanned.into_iter().enumerate() {
            prof.attach(sub, "shard", shard as u64);
            full.push(resp);
            per_shard.push(stats);
        }
        let fanout_seconds = prof.exit();

        // Phase 2: merge the local top-ks and keep the k global winners
        // (`fanout::merge_candidates`, shared with the socket
        // coordinator). Each shard's winner count becomes its sub-VO's
        // `contributed` claim.
        prof.enter("merge");
        let merge = fanout::merge_candidates(&full, k);
        prof.add("candidates", merge.candidates.len() as u64);
        let mut merge_seconds = prof.exit();

        // Phase 3: trim. A shard contributing j entries must prove its
        // local top-k' for k' = min(j + 1, k); shards with j ≥ k − 1 reuse
        // the fan-out response verbatim, the rest get an inverted-index
        // re-query at k' (BoVW encoding is k-independent, so the fan-out's
        // BoVW VO is reused and only the inverted step re-runs).
        prof.enter("trim");
        let trim_targets = fanout::trim_targets(&merge.contributed, k);
        prof.add("trim_queries", trim_targets.len() as u64);
        let mut trimmed: BTreeMap<usize, fanout::TrimOutcome> = BTreeMap::new();
        if let Some(sp0) = self.shards.first() {
            if !trim_targets.is_empty() {
                // The BoVW encoding is shard-invariant (shared codebook):
                // compute it once and re-query each target shard's index.
                let query_bovw = SparseBovw::from_counts(
                    features
                        .iter()
                        .map(|f| (sp0.db.codebook.assign_with_threshold(f).0, 1)),
                );
                trimmed = par_map(conc, &trim_targets, |_, &(s, k_trim)| {
                    (s, self.shards[s].trim_query_with_bovw(&query_bovw, k_trim))
                })
                .into_iter()
                .collect();
            }
        }
        let trim_seconds = prof.exit();

        // Phase 4: assemble the global results and the sharded VO
        // (`fanout::assemble_response`, shared with the socket
        // coordinator): sub-VOs in ascending shard order, then the common
        // BoVW geometry deduplicated into the response's shared section.
        prof.enter("assemble");
        let assembled = fanout::assemble_response(&full, &merge, &trimmed);
        prof.add("dedup_bytes_saved", assembled.dedup_bytes_saved as u64);
        merge_seconds += prof.exit();

        let stats = ShardedSpStats {
            per_shard,
            trim_queries: trim_targets.len(),
            trimmed_entries: assembled.trimmed_entries,
            dedup_bytes_saved: assembled.dedup_bytes_saved,
            merge_seconds,
            wall_seconds: fanout_seconds + merge_seconds + trim_seconds,
        };
        if prof.is_recording() {
            self.record_sharded_query(&stats, fanout_seconds, trim_seconds);
        }

        (
            ShardedResponse {
                results: assembled.results,
                vo: assembled.vo,
            },
            stats,
            prof.finish(),
        )
    }

    /// Records one finished sharded query into the global registry.
    fn record_sharded_query(&self, stats: &ShardedSpStats, fanout_seconds: f64, trim_seconds: f64) {
        let Some(slug) = self.shards.first().map(|sp| sp.db.scheme.slug()) else {
            return;
        };
        let reg = imageproof_obs::global();
        reg.counter("imageproof_sharded_queries_total", &[("scheme", slug)])
            .inc();
        reg.counter("imageproof_sharded_trim_queries_total", &[("scheme", slug)])
            .add(stats.trim_queries as u64);
        reg.counter(
            "imageproof_sharded_trimmed_entries_total",
            &[("scheme", slug)],
        )
        .add(stats.trimmed_entries as u64);
        reg.counter(
            "imageproof_sharded_dedup_bytes_saved_total",
            &[("scheme", slug)],
        )
        .add(stats.dedup_bytes_saved as u64);
        for (phase, seconds) in [
            ("fanout", fanout_seconds),
            ("merge", stats.merge_seconds),
            ("trim", trim_seconds),
        ] {
            reg.histogram(
                "imageproof_sharded_phase_micros",
                &[("scheme", slug), ("phase", phase)],
            )
            .record(micros(seconds));
        }
    }
}
