//! The §V-D attack matrix under the parallel SP path.
//!
//! The in-crate adversary tests exercise every tamper case against
//! serially-produced responses; this suite re-runs all of them against
//! responses produced by `query_with` at 2/4/8 workers, on databases built
//! in parallel. Soundness must not depend on how many threads the honest
//! SP used before the adversary struck.

use imageproof_akm::AkmParams;
use imageproof_core::{
    adversary, Client, ClientError, Concurrency, Owner, Scheme, ServiceProvider, SystemConfig,
};
use imageproof_vision::{Corpus, CorpusConfig, DescriptorKind};

const THREADS: [usize; 3] = [2, 4, 8];

fn setup(scheme: Scheme, threads: usize) -> (Corpus, ServiceProvider, Client) {
    let corpus = Corpus::generate(&CorpusConfig {
        n_latent_words: 100,
        ..CorpusConfig::small(DescriptorKind::Surf)
    });
    let owner = Owner::new(&[9u8; 32]);
    let akm = AkmParams {
        n_clusters: 128,
        n_trees: 4,
        max_leaf_size: 2,
        max_checks: 16,
        iterations: 2,
        seed: 11,
    };
    let (db, published) = owner.build_system_config(
        &corpus,
        &akm,
        SystemConfig::new(scheme).with_threads(threads),
    );
    (corpus, ServiceProvider::new(db), Client::new(published))
}

fn parallel_response(
    sp: &ServiceProvider,
    corpus: &Corpus,
    threads: usize,
    k: usize,
    seed: u64,
) -> (Vec<Vec<f32>>, imageproof_core::QueryResponse) {
    let query = corpus.query_from_image(1, 20, seed);
    let (response, _) = sp.query_with(&query, k, Concurrency::new(threads));
    (query, response)
}

/// Case 3 (fake image data): flipped payload bytes are rejected.
#[test]
fn tampered_image_data_is_rejected_under_parallel_sp() {
    for threads in THREADS {
        let (corpus, sp, client) = setup(Scheme::ImageProof, threads);
        let (query, mut response) = parallel_response(&sp, &corpus, threads, 4, 104);
        adversary::tamper_image_data(&mut response);
        assert!(
            matches!(
                client.verify(&query, 4, &response),
                Err(ClientError::ImageSignatureInvalid { .. })
            ),
            "threads={threads}"
        );
    }
}

/// Case 3 (fake image data): a garbage signature is rejected.
#[test]
fn forged_signature_is_rejected_under_parallel_sp() {
    for threads in THREADS {
        let (corpus, sp, client) = setup(Scheme::ImageProof, threads);
        let (query, mut response) = parallel_response(&sp, &corpus, threads, 4, 105);
        adversary::forge_image_signature(&mut response);
        assert!(
            matches!(
                client.verify(&query, 4, &response),
                Err(ClientError::ImageSignatureInvalid { .. })
            ),
            "threads={threads}"
        );
    }
}

/// Case 2 (forged top-k): swapping in a genuine-but-losing image is
/// rejected.
#[test]
fn substituted_result_is_rejected_under_parallel_sp() {
    for threads in THREADS {
        let (corpus, sp, client) = setup(Scheme::ImageProof, threads);
        let (query, mut response) = parallel_response(&sp, &corpus, threads, 4, 106);
        let winner_ids: Vec<u64> = response.results.iter().map(|r| r.id).collect();
        let substitute = corpus
            .images
            .iter()
            .find(|img| !winner_ids.contains(&img.id))
            .expect("non-winner exists");
        let stored = sp.database().images[&substitute.id].clone();
        adversary::substitute_result(&mut response, substitute.id, stored.data, stored.signature);
        assert!(
            client.verify(&query, 4, &response).is_err(),
            "threads={threads}"
        );
    }
}

/// Case 2 (forged top-k): tampering a popped posting breaks the hash chain.
#[test]
fn tampered_posting_is_rejected_under_parallel_sp() {
    for scheme in [Scheme::ImageProof, Scheme::OptimizedBoth] {
        for threads in THREADS {
            let (corpus, sp, client) = setup(scheme, threads);
            let (query, mut response) = parallel_response(&sp, &corpus, threads, 4, 107);
            assert!(adversary::tamper_posting(&mut response), "{scheme:?}");
            assert!(
                matches!(
                    client.verify(&query, 4, &response),
                    Err(ClientError::Inv(_))
                ),
                "{scheme:?} threads={threads}"
            );
        }
    }
}

/// Case 1 (forged BoVW): a tampered revealed centroid coordinate is
/// rejected.
#[test]
fn tampered_bovw_centroid_is_rejected_under_parallel_sp() {
    for scheme in [Scheme::Baseline, Scheme::ImageProof, Scheme::OptimizedBovw] {
        for threads in THREADS {
            let (corpus, sp, client) = setup(scheme, threads);
            let (query, mut response) = parallel_response(&sp, &corpus, threads, 4, 108);
            assert!(
                adversary::tamper_bovw_centroid(&mut response),
                "{scheme:?} threads={threads}"
            );
            assert!(
                client.verify(&query, 4, &response).is_err(),
                "{scheme:?} threads={threads}"
            );
        }
    }
}

/// Case 1 (forged BoVW): a tampered splitting hyperplane changes the
/// reconstructed root.
#[test]
fn tampered_bovw_split_is_rejected_under_parallel_sp() {
    for threads in THREADS {
        let (corpus, sp, client) = setup(Scheme::ImageProof, threads);
        let (query, mut response) = parallel_response(&sp, &corpus, threads, 4, 109);
        assert!(adversary::tamper_bovw_split(&mut response));
        assert!(
            matches!(
                client.verify(&query, 4, &response),
                Err(ClientError::RootSignatureInvalid) | Err(ClientError::Bovw(_))
            ),
            "threads={threads}"
        );
    }
}

/// Every tamper case also fails against a batch-served response — the
/// batch path returns exactly the per-query responses.
#[test]
fn tampered_batch_responses_are_rejected_under_parallel_sp() {
    for threads in THREADS {
        let (corpus, sp, client) = setup(Scheme::OptimizedBoth, threads);
        let queries: Vec<Vec<Vec<f32>>> = (0..4)
            .map(|i| corpus.query_from_image(i, 20, 110 + i))
            .collect();
        let mut batch = sp.query_batch(&queries, 4, Concurrency::new(threads));
        for (i, (response, _)) in batch.iter_mut().enumerate() {
            adversary::tamper_image_data(response);
            assert!(
                client.verify(&queries[i], 4, response).is_err(),
                "batch[{i}] threads={threads}"
            );
        }
    }
}
