//! Property-based tests for the cryptographic substrate.

use imageproof_crypto::merkle::MerkleTree;
use imageproof_crypto::sha3::Sha3_256;
use imageproof_crypto::sha512::Sha512;
use imageproof_crypto::wire::{Reader, Writer};
use imageproof_crypto::SigningKey;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hashing is invariant under arbitrary chunk boundaries.
    #[test]
    fn sha3_chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..600),
                                splits in proptest::collection::vec(1usize..64, 0..8)) {
        let oneshot = Sha3_256::digest(&data);
        let mut h = Sha3_256::new();
        let mut rest: &[u8] = &data;
        for s in splits {
            if rest.is_empty() { break; }
            let take = s.min(rest.len());
            h.update(&rest[..take]);
            rest = &rest[take..];
        }
        h.update(rest);
        prop_assert_eq!(oneshot, h.finalize());
    }

    #[test]
    fn sha512_chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..600),
                                  split in 0usize..600) {
        let oneshot = Sha512::digest(&data);
        let mut h = Sha512::new();
        let cut = split.min(data.len());
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(oneshot.to_vec(), h.finalize().to_vec());
    }

    /// Signatures round-trip and bind the message.
    #[test]
    fn ed25519_sign_verify_roundtrip(seed in any::<[u8; 32]>(),
                                     msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        let sk = SigningKey::from_seed(&seed);
        let sig = sk.sign(&msg);
        prop_assert!(sk.public_key().verify(&msg, &sig));
        // Any single-byte change to the message invalidates the signature.
        if !msg.is_empty() {
            let mut forged = msg.clone();
            forged[0] ^= 1;
            prop_assert!(!sk.public_key().verify(&forged, &sig));
        }
    }

    /// Merkle membership proofs verify for every leaf of arbitrary trees
    /// and reject cross-leaf substitution.
    #[test]
    fn merkle_proofs_sound(leaves in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..16), 1..40)) {
        let tree = MerkleTree::from_leaf_data(&leaves);
        let root = tree.root();
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i);
            prop_assert!(proof.verify_data(leaf, &root));
            let other = (i + 1) % leaves.len();
            if leaves[other] != *leaf {
                prop_assert!(!proof.verify_data(&leaves[other], &root));
            }
        }
    }

    /// Subset proofs verify for arbitrary index subsets.
    #[test]
    fn merkle_subset_proofs_sound(n in 1usize..40, picks in proptest::collection::vec(any::<usize>(), 1..10)) {
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| format!("L{i}").into_bytes()).collect();
        let tree = MerkleTree::from_leaf_data(&leaves);
        let mut indices: Vec<usize> = picks.into_iter().map(|p| p % n).collect();
        indices.sort_unstable();
        indices.dedup();
        let proof = tree.prove_subset(&indices);
        let revealed: Vec<(usize, &[u8])> =
            indices.iter().map(|&i| (i, leaves[i].as_slice())).collect();
        prop_assert!(proof.verify_data(&revealed, &tree.root()));
    }

    /// Wire primitives round-trip for arbitrary values.
    #[test]
    fn wire_roundtrip(vals in proptest::collection::vec(any::<u64>(), 0..50),
                      floats in proptest::collection::vec(any::<f32>(), 0..50)) {
        let mut w = Writer::new();
        w.seq_len(vals.len());
        for &v in &vals { w.varint(v); }
        w.seq_len(floats.len());
        for &f in &floats { w.f32(f); }
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        let n = r.seq_len().unwrap();
        for &v in vals.iter().take(n) {
            prop_assert_eq!(r.varint().unwrap(), v);
        }
        let m = r.seq_len().unwrap();
        for &f in floats.iter().take(m) {
            prop_assert_eq!(r.f32().unwrap().to_bits(), f.to_bits());
        }
        prop_assert!(r.finish().is_ok());
    }
}
