//! A generic binary Merkle hash tree (Merkle, CRYPTO '89; paper §II-B,
//! Fig. 1) with membership proofs.
//!
//! ImageProof embeds an MH-tree over the *dimensions* of each cluster
//! centroid for the §VI-A candidate-compression optimization: the SP reveals
//! only enough dimensions to prove a distance bound, and the client checks
//! the revealed dimensions against the per-cluster MH-tree root that the
//! MRKD-tree leaf digest commits to.

use crate::digest::Digest;
use imageproof_parallel::{par_map_chunked, Concurrency};

/// Domain-separation tags so a leaf digest can never be confused with an
/// internal-node digest (a classic second-preimage pitfall in Merkle trees).
const LEAF_TAG: u8 = 0x00;
const NODE_TAG: u8 = 0x01;

/// Minimum nodes per scheduled chunk when hashing a level in parallel: one
/// SHA3 of 65 bytes is far cheaper than claiming a work item, so small
/// levels (and small trees) stay on the calling thread.
const PAR_MIN_NODES: usize = 256;

fn leaf_digest(data: &[u8]) -> Digest {
    Digest::builder().bytes(&[LEAF_TAG]).bytes(data).finish()
}

fn node_digest(left: &Digest, right: &Digest) -> Digest {
    Digest::builder()
        .bytes(&[NODE_TAG])
        .digest(left)
        .digest(right)
        .finish()
}

/// A complete binary Merkle tree over an ordered sequence of leaves.
///
/// Odd nodes at each level are promoted unchanged (no duplication), so the
/// tree is uniquely determined by the leaf sequence.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// `levels[0]` = leaf digests, last level = `[root]`.
    levels: Vec<Vec<Digest>>,
}

/// One step of a Merkle authentication path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PathStep {
    /// The sibling digest to combine with.
    pub sibling: Digest,
    /// True if the sibling sits to the left of the running digest.
    pub sibling_is_left: bool,
}

/// A membership proof for one leaf.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MerkleProof {
    pub leaf_index: usize,
    pub path: Vec<PathStep>,
}

impl MerkleTree {
    /// Builds a tree over pre-hashed leaf values.
    ///
    /// # Panics
    /// Panics if `leaves` is empty: an empty authenticated set has no root.
    pub fn from_leaf_data<D: AsRef<[u8]> + Sync>(leaves: &[D]) -> Self {
        Self::from_leaf_data_with(leaves, Concurrency::serial())
    }

    /// [`MerkleTree::from_leaf_data`] with parallel leaf and level hashing.
    ///
    /// The levels of the resulting tree are a pure function of the leaf
    /// sequence, so the root (and every proof) is identical for every
    /// thread count.
    pub fn from_leaf_data_with<D: AsRef<[u8]> + Sync>(leaves: &[D], conc: Concurrency) -> Self {
        let digests = par_map_chunked(conc, leaves, PAR_MIN_NODES, |_, d| leaf_digest(d.as_ref()));
        Self::from_leaf_digests_with(digests, conc)
    }

    /// Builds a tree when leaf digests are computed externally.
    pub fn from_leaf_digests(leaves: Vec<Digest>) -> Self {
        Self::from_leaf_digests_with(leaves, Concurrency::serial())
    }

    /// [`MerkleTree::from_leaf_digests`] with the bottom-up level hashing
    /// fanned out across workers. Each level's nodes depend only on the
    /// previous level, so nodes within a level hash independently and are
    /// merged back in index order — levels (and the root) are bit-identical
    /// to the serial build.
    // audit:allow(panic) levels is seeded with the leaf level and only grows; chunks(2) yields 1- or 2-element slices
    pub fn from_leaf_digests_with(leaves: Vec<Digest>, conc: Concurrency) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let mut levels = vec![leaves];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let pairs: Vec<&[Digest]> = prev.chunks(2).collect();
            let next = par_map_chunked(conc, &pairs, PAR_MIN_NODES, |_, pair| {
                let pair: &[Digest] = pair;
                match pair {
                    [l, r] => node_digest(l, r),
                    [only] => *only,
                    _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
                }
            });
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root digest.
    // audit:allow(panic) construction guarantees a non-empty top level of exactly one digest
    pub fn root(&self) -> Digest {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    // audit:allow(panic) construction always stores the leaf level at index 0
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// Total digests stored across every level (footprint accounting).
    pub fn n_digests(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// True when the tree has exactly one leaf.
    pub fn is_empty(&self) -> bool {
        false // construction rejects empty leaf sets
    }

    /// Produces the authentication path for `leaf_index`.
    ///
    /// # Panics
    /// Panics when `leaf_index` is out of range.
    pub fn prove(&self, leaf_index: usize) -> MerkleProof {
        assert!(leaf_index < self.len(), "leaf index out of range");
        let mut path = Vec::new();
        let mut idx = leaf_index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            if sibling_idx < level.len() {
                path.push(PathStep {
                    sibling: level[sibling_idx],
                    sibling_is_left: sibling_idx < idx,
                });
            }
            // When the sibling does not exist the node was promoted: no step.
            idx /= 2;
        }
        MerkleProof { leaf_index, path }
    }
}

impl MerkleProof {
    /// Recomputes the root from raw leaf data and compares with `root`.
    pub fn verify_data(&self, leaf_data: &[u8], root: &Digest) -> bool {
        self.verify_digest(leaf_digest(leaf_data), root)
    }

    /// Recomputes the root from a pre-computed leaf digest.
    pub fn verify_digest(&self, leaf: Digest, root: &Digest) -> bool {
        let mut acc = leaf;
        for step in &self.path {
            acc = if step.sibling_is_left {
                node_digest(&step.sibling, &acc)
            } else {
                node_digest(&acc, &step.sibling)
            };
        }
        acc == *root
    }
}

/// Hashes raw leaf data exactly as the tree does; exposed so other crates can
/// build leaf digests without constructing a tree.
pub fn hash_leaf(data: &[u8]) -> Digest {
    leaf_digest(data)
}

/// A batched membership proof for a *subset* of leaves.
///
/// Sibling digests shared between the individual authentication paths are
/// included once, so proving `k` of `n` leaves costs about
/// `k log2(n/k)` digests instead of `k log2(n)`. ImageProof's §VI-A
/// optimization reveals a handful of a cluster centroid's dimensions and
/// proves them jointly against the per-cluster dimension tree.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SubsetProof {
    /// Total number of leaves in the tree (fixes the tree shape).
    pub n_leaves: u32,
    /// Digests of the maximal subtrees containing no revealed leaf, in
    /// deterministic post-order traversal order.
    pub fill: Vec<Digest>,
}

impl MerkleTree {
    /// Produces a batched proof for the (sorted, deduplicated) leaf indices.
    ///
    /// # Panics
    /// Panics when `indices` is empty, unsorted, or out of range.
    // audit:allow(panic) owner-side prover: inputs are asserted on entry; loop indices are guarded by covered.len() and level.len()
    pub fn prove_subset(&self, indices: &[usize]) -> SubsetProof {
        assert!(!indices.is_empty(), "subset proof needs at least one leaf");
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        assert!(*indices.last().expect("non-empty") < self.len());

        let mut fill = Vec::new();
        // Walk levels bottom-up. At each level, a node is "covered" when its
        // subtree contains a revealed leaf. Uncovered siblings of covered
        // nodes contribute their digest to the fill, in (level, index) order.
        let mut covered: Vec<usize> = indices.to_vec();
        for level in &self.levels[..self.levels.len() - 1] {
            let mut next = Vec::new();
            let mut i = 0;
            while i < covered.len() {
                let idx = covered[i];
                let sib = idx ^ 1;
                let pair_covered = i + 1 < covered.len() && covered[i + 1] == sib;
                if sib < level.len() && !pair_covered {
                    fill.push(level[sib]);
                }
                next.push(idx / 2);
                i += if pair_covered { 2 } else { 1 };
            }
            covered = next;
        }
        SubsetProof {
            n_leaves: self.len() as u32,
            fill,
        }
    }
}

impl SubsetProof {
    /// Recomputes the root from `(leaf_index, leaf_digest)` pairs (strictly
    /// increasing by index) and compares with `root`. Returns `false` on any
    /// structural mismatch.
    // audit:allow(panic) every index on this adversarial path is guarded: windows(2) pairs, i < covered.len(), and covered.len() == 1 before covered[0]
    pub fn verify_digests(&self, revealed: &[(usize, Digest)], root: &Digest) -> bool {
        if revealed.is_empty()
            || !revealed.windows(2).all(|w| w[0].0 < w[1].0)
            || revealed.last().map(|&(i, _)| i >= self.n_leaves as usize) != Some(false)
        {
            return false;
        }
        // Reconstruct level sizes exactly as construction produced them.
        let mut cur = self.n_leaves as usize;
        let mut level_sizes = vec![cur];
        while cur > 1 {
            cur = cur.div_ceil(2);
            level_sizes.push(cur);
        }

        let mut fill_iter = self.fill.iter();
        let mut covered: Vec<(usize, Digest)> = revealed.to_vec();
        for &size in &level_sizes[..level_sizes.len() - 1] {
            let mut next = Vec::with_capacity(covered.len());
            let mut i = 0;
            while i < covered.len() {
                let (idx, digest) = covered[i];
                let sib = idx ^ 1;
                let pair = if i + 1 < covered.len() && covered[i + 1].0 == sib {
                    let (_, sib_digest) = covered[i + 1];
                    i += 2;
                    Some((digest, sib_digest))
                } else if sib < size {
                    let Some(&sib_digest) = fill_iter.next() else {
                        return false;
                    };
                    i += 1;
                    if sib < idx {
                        Some((sib_digest, digest))
                    } else {
                        Some((digest, sib_digest))
                    }
                } else {
                    i += 1;
                    None // promoted odd node
                };
                let parent = match pair {
                    Some((l, r)) => node_digest(&l, &r),
                    None => digest,
                };
                next.push((idx / 2, parent));
            }
            covered = next;
        }
        fill_iter.next().is_none() && covered.len() == 1 && covered[0].1 == *root
    }

    /// Convenience: verify from raw leaf data.
    pub fn verify_data(&self, revealed: &[(usize, &[u8])], root: &Digest) -> bool {
        let digests: Vec<(usize, Digest)> =
            revealed.iter().map(|&(i, d)| (i, leaf_digest(d))).collect();
        self.verify_digests(&digests, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_the_leaf_digest() {
        let tree = MerkleTree::from_leaf_data(&leaves(1));
        assert_eq!(tree.root(), leaf_digest(b"leaf-0"));
    }

    #[test]
    fn every_leaf_proof_verifies_for_many_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            let data = leaves(n);
            let tree = MerkleTree::from_leaf_data(&data);
            let root = tree.root();
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i);
                assert!(proof.verify_data(leaf, &root), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf_data() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaf_data(&data);
        let proof = tree.prove(3);
        assert!(!proof.verify_data(b"tampered", &tree.root()));
    }

    #[test]
    fn proof_fails_against_wrong_root() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaf_data(&data);
        let other = MerkleTree::from_leaf_data(&leaves(9));
        let proof = tree.prove(3);
        assert!(!proof.verify_data(&data[3], &other.root()));
    }

    #[test]
    fn proof_for_one_position_rejects_data_of_another() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaf_data(&data);
        let proof = tree.prove(2);
        assert!(!proof.verify_data(&data[5], &tree.root()));
    }

    #[test]
    fn changing_any_leaf_changes_the_root() {
        let data = leaves(10);
        let base = MerkleTree::from_leaf_data(&data).root();
        for i in 0..10 {
            let mut tampered = data.clone();
            tampered[i].push(b'!');
            assert_ne!(MerkleTree::from_leaf_data(&tampered).root(), base, "i={i}");
        }
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A two-leaf tree's root must differ from hashing the concatenated
        // digests as a leaf.
        let tree = MerkleTree::from_leaf_data(&leaves(2));
        let l0 = leaf_digest(b"leaf-0");
        let l1 = leaf_digest(b"leaf-1");
        let mut concat = Vec::new();
        concat.extend_from_slice(&l0.0);
        concat.extend_from_slice(&l1.0);
        assert_ne!(tree.root(), leaf_digest(&concat));
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_tree_is_rejected() {
        let empty: Vec<Vec<u8>> = Vec::new();
        let _ = MerkleTree::from_leaf_data(&empty);
    }

    #[test]
    fn parallel_level_hashing_matches_serial_for_many_sizes() {
        // Sizes straddling the PAR_MIN_NODES chunking threshold, including
        // odd levels (promoted nodes) at every depth.
        for n in [1usize, 2, 3, 7, 255, 256, 257, 600, 1025] {
            let data = leaves(n);
            let serial = MerkleTree::from_leaf_data(&data);
            for threads in [2usize, 4, 8] {
                let par = MerkleTree::from_leaf_data_with(&data, Concurrency::new(threads));
                assert_eq!(par.levels, serial.levels, "n={n} threads={threads}");
                assert_eq!(par.root(), serial.root());
            }
        }
    }

    #[test]
    fn subset_proofs_verify_for_many_shapes() {
        for n in [1usize, 2, 3, 5, 8, 13, 16, 31] {
            let data = leaves(n);
            let tree = MerkleTree::from_leaf_data(&data);
            let root = tree.root();
            // Try several subset patterns.
            let subsets: Vec<Vec<usize>> = vec![
                vec![0],
                vec![n - 1],
                (0..n).collect(),
                (0..n).step_by(2).collect(),
                (0..n).filter(|i| i % 3 == 1).collect(),
            ];
            for subset in subsets.into_iter().filter(|s| !s.is_empty()) {
                let proof = tree.prove_subset(&subset);
                let revealed: Vec<(usize, &[u8])> =
                    subset.iter().map(|&i| (i, data[i].as_slice())).collect();
                assert!(
                    proof.verify_data(&revealed, &root),
                    "n={n} subset={subset:?}"
                );
            }
        }
    }

    #[test]
    fn subset_proof_rejects_tampered_leaf() {
        let data = leaves(16);
        let tree = MerkleTree::from_leaf_data(&data);
        let proof = tree.prove_subset(&[2, 7, 11]);
        let mut revealed: Vec<(usize, &[u8])> = [2usize, 7, 11]
            .iter()
            .map(|&i| (i, data[i].as_slice()))
            .collect();
        revealed[1].1 = b"forged";
        assert!(!proof.verify_data(&revealed, &tree.root()));
    }

    #[test]
    fn subset_proof_rejects_wrong_indices() {
        let data = leaves(16);
        let tree = MerkleTree::from_leaf_data(&data);
        let proof = tree.prove_subset(&[2, 7]);
        // Same data presented at shifted positions.
        let revealed: Vec<(usize, &[u8])> = vec![(3, data[2].as_slice()), (8, data[7].as_slice())];
        assert!(!proof.verify_data(&revealed, &tree.root()));
        // Out-of-range index.
        let revealed: Vec<(usize, &[u8])> = vec![(2, data[2].as_slice()), (99, data[7].as_slice())];
        assert!(!proof.verify_data(&revealed, &tree.root()));
        // Unsorted.
        let revealed: Vec<(usize, &[u8])> = vec![(7, data[7].as_slice()), (2, data[2].as_slice())];
        assert!(!proof.verify_data(&revealed, &tree.root()));
    }

    #[test]
    fn subset_proof_rejects_missing_or_extra_fill() {
        let data = leaves(16);
        let tree = MerkleTree::from_leaf_data(&data);
        let mut proof = tree.prove_subset(&[4]);
        let revealed: Vec<(usize, &[u8])> = vec![(4, data[4].as_slice())];
        let dropped = proof.fill.pop().expect("non-empty fill");
        assert!(!proof.verify_data(&revealed, &tree.root()));
        proof.fill.push(dropped);
        proof.fill.push(Digest::of(b"extra"));
        assert!(!proof.verify_data(&revealed, &tree.root()));
    }

    #[test]
    fn subset_proof_on_single_leaf_tree() {
        // Degenerate shape: root IS the leaf digest; no fill is needed.
        let data = leaves(1);
        let tree = MerkleTree::from_leaf_data(&data);
        let proof = tree.prove_subset(&[0]);
        assert!(proof.fill.is_empty());
        assert!(proof.verify_data(&[(0, data[0].as_slice())], &tree.root()));
        assert!(!proof.verify_data(&[(0, b"other")], &tree.root()));
    }

    #[test]
    fn subset_proof_rejects_empty_and_duplicate_reveals() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaf_data(&data);
        let proof = tree.prove_subset(&[3, 5]);
        // Nothing revealed can never authenticate.
        assert!(!proof.verify_data(&[], &tree.root()));
        // Duplicate indices violate the strictly-increasing contract.
        let dup: Vec<(usize, &[u8])> = vec![(3, data[3].as_slice()), (3, data[3].as_slice())];
        assert!(!proof.verify_data(&dup, &tree.root()));
    }

    #[test]
    fn duplicate_leaf_content_still_binds_positions() {
        // Leaves 1 and 6 share the same bytes; proofs must still be tied to
        // the exact positions they were generated for, not just the content.
        let mut data = leaves(8);
        data[1] = b"same".to_vec();
        data[6] = b"same".to_vec();
        let tree = MerkleTree::from_leaf_data(&data);
        let root = tree.root();
        for i in [1usize, 6] {
            let proof = tree.prove(i);
            assert!(proof.verify_data(b"same", &root), "leaf {i}");
            assert!(!proof.verify_data(b"diff", &root), "leaf {i}");
        }
        // A proof for position 1 does not authenticate the identical bytes
        // at position 6 (the sibling path differs), and vice versa.
        let p1 = tree.prove(1);
        let p6 = tree.prove(6);
        assert_ne!(p1.path, p6.path);
        // Subset proofs over duplicate content verify at their own indices…
        let proof = tree.prove_subset(&[1, 6]);
        let ok: Vec<(usize, &[u8])> = vec![(1, b"same"), (6, b"same")];
        assert!(proof.verify_data(&ok, &root));
        // …but not when the same content is claimed at other positions.
        let moved: Vec<(usize, &[u8])> = vec![(2, b"same"), (5, b"same")];
        assert!(!proof.verify_data(&moved, &root));
    }

    #[test]
    fn subset_proof_fails_against_wrong_root() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaf_data(&data);
        let proof = tree.prove_subset(&[0, 4]);
        let revealed: Vec<(usize, &[u8])> = vec![(0, data[0].as_slice()), (4, data[4].as_slice())];
        assert!(proof.verify_data(&revealed, &tree.root()));
        assert!(!proof.verify_data(&revealed, &Digest::of(b"wrong root")));
    }

    #[test]
    fn subset_proof_is_smaller_than_individual_proofs() {
        let data = leaves(64);
        let tree = MerkleTree::from_leaf_data(&data);
        let subset: Vec<usize> = (0..16).collect();
        let batched = tree.prove_subset(&subset);
        let individual: usize = subset.iter().map(|&i| tree.prove(i).path.len()).sum();
        assert!(
            batched.fill.len() < individual,
            "batched {} >= individual {individual}",
            batched.fill.len()
        );
    }
}
