//! SHA3-256 as specified by FIPS-202, built on the Keccak-f\[1600\] permutation.
//!
//! ImageProof uses SHA3-256 as the cryptographic hash function `h(.)` for all
//! authenticated-data-structure digests (the paper fixes SHA3-256 in §VII-A).
//! The implementation is a straightforward sponge construction with rate
//! 1088 bits (136 bytes) and the `01` SHA-3 domain-separation suffix.

/// Keccak round constants for the 24 rounds of Keccak-f[1600].
const ROUND_CONSTANTS: [u64; 24] = [
    0x0000_0000_0000_0001,
    0x0000_0000_0000_8082,
    0x8000_0000_0000_808a,
    0x8000_0000_8000_8000,
    0x0000_0000_0000_808b,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8009,
    0x0000_0000_0000_008a,
    0x0000_0000_0000_0088,
    0x0000_0000_8000_8009,
    0x0000_0000_8000_000a,
    0x0000_0000_8000_808b,
    0x8000_0000_0000_008b,
    0x8000_0000_0000_8089,
    0x8000_0000_0000_8003,
    0x8000_0000_0000_8002,
    0x8000_0000_0000_0080,
    0x0000_0000_0000_800a,
    0x8000_0000_8000_000a,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8080,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8008,
];

/// Rotation offsets for the rho step, indexed as `[x + 5*y]`.
const RHO_OFFSETS: [u32; 25] = [
    0, 1, 62, 28, 27, // y = 0
    36, 44, 6, 55, 20, // y = 1
    3, 10, 43, 25, 39, // y = 2
    41, 45, 15, 21, 8, // y = 3
    18, 2, 61, 56, 14, // y = 4
];

/// The Keccak-f\[1600\] permutation applied in place to a 25-lane state.
///
/// Exposed for property tests; library users should go through [`Sha3_256`].
// audit:allow(panic) lane indices are x + 5y with x, y in 0..5, always inside [u64; 25]
pub fn keccak_f1600(state: &mut [u64; 25]) {
    for &rc in &ROUND_CONSTANTS {
        // Theta.
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for x in 0..5 {
            for y in 0..5 {
                state[x + 5 * y] ^= d[x];
            }
        }

        // Rho and Pi combined: b[y, 2x+3y] = rotl(a[x, y], r[x, y]).
        let mut b = [0u64; 25];
        for x in 0..5 {
            for y in 0..5 {
                let idx = x + 5 * y;
                b[y + 5 * ((2 * x + 3 * y) % 5)] = state[idx].rotate_left(RHO_OFFSETS[idx]);
            }
        }

        // Chi.
        for x in 0..5 {
            for y in 0..5 {
                state[x + 5 * y] =
                    b[x + 5 * y] ^ ((!b[(x + 1) % 5 + 5 * y]) & b[(x + 2) % 5 + 5 * y]);
            }
        }

        // Iota.
        state[0] ^= rc;
    }
}

/// Rate of SHA3-256 in bytes (1088 bits).
const RATE: usize = 136;

/// Incremental SHA3-256 hasher.
///
/// ```
/// use imageproof_crypto::sha3::Sha3_256;
/// let mut h = Sha3_256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(
///     digest[..4],
///     [0x3a, 0x98, 0x5d, 0xa7],
/// );
/// ```
#[derive(Clone)]
pub struct Sha3_256 {
    state: [u64; 25],
    /// Bytes absorbed into the current (incomplete) rate block.
    buffer: [u8; RATE],
    buffered: usize,
}

impl Default for Sha3_256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha3_256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: [0u64; 25],
            buffer: [0u8; RATE],
            buffered: 0,
        }
    }

    /// Absorbs `data` into the sponge.
    // audit:allow(panic) slice bounds are capped by take = (RATE - buffered).min(input.len())
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        // Top up a partial block first.
        if self.buffered > 0 {
            let take = (RATE - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == RATE {
                let block = self.buffer;
                self.absorb_block(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= RATE {
            let (block, rest) = input.split_at(RATE);
            let mut tmp = [0u8; RATE];
            tmp.copy_from_slice(block);
            self.absorb_block(&tmp);
            input = rest;
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    // audit:allow(panic) chunks_exact(8) yields exactly 8-byte chunks, so the conversion is infallible
    fn absorb_block(&mut self, block: &[u8; RATE]) {
        for (lane, chunk) in self.state.iter_mut().zip(block.chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        keccak_f1600(&mut self.state);
    }

    /// Applies SHA-3 padding and squeezes the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        self.finalize_reset()
    }

    /// Like [`Sha3_256::finalize`], but leaves the hasher in the
    /// freshly-[`reset`](Sha3_256::reset) state instead of consuming it, so
    /// one scratch hasher can serve a whole stream of digests without
    /// re-zeroing a new state per message.
    // audit:allow(panic) buffered < RATE between absorbs, so padding indices stay inside the block
    pub fn finalize_reset(&mut self) -> [u8; 32] {
        let mut block = [0u8; RATE];
        block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
        // SHA-3 domain suffix `01` followed by pad10*1.
        block[self.buffered] = 0x06;
        block[RATE - 1] |= 0x80;
        self.absorb_block(&block);

        let mut out = [0u8; 32];
        for (chunk, lane) in out.chunks_exact_mut(8).zip(self.state.iter()) {
            chunk.copy_from_slice(&lane.to_le_bytes());
        }
        self.reset();
        out
    }

    /// Returns the hasher to its initial state (equivalent to `*self =
    /// Sha3_256::new()` without touching the buffer bytes beyond the
    /// absorbed prefix).
    pub fn reset(&mut self) {
        self.state = [0u64; 25];
        self.buffered = 0;
    }

    /// One-shot convenience: `Sha3_256::digest(m) == {new; update(m); finalize}`.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_message_matches_fips_vector() {
        assert_eq!(
            hex(&Sha3_256::digest(b"")),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        );
    }

    #[test]
    fn abc_matches_fips_vector() {
        assert_eq!(
            hex(&Sha3_256::digest(b"abc")),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn long_message_matches_known_vector() {
        // 448-bit NIST test message.
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        assert_eq!(
            hex(&Sha3_256::digest(msg)),
            "41c0dba2a9d6240849100376a8235e2c82e1b9998a999e21db32dd97496d3376"
        );
    }

    #[test]
    fn million_a_matches_known_vector() {
        let mut h = Sha3_256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "5c8875ae474a3634ba4fd55ec85bffd661f32aca75c6d699d0cdcb6c115891c1"
        );
    }

    #[test]
    fn rate_boundary_messages_round_trip_incrementally() {
        // Hash messages whose lengths straddle the 136-byte rate both in one
        // shot and byte-by-byte; the results must agree.
        for len in [0usize, 1, 135, 136, 137, 271, 272, 273, 500] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let oneshot = Sha3_256::digest(&msg);
            let mut inc = Sha3_256::new();
            for b in &msg {
                inc.update(std::slice::from_ref(b));
            }
            assert_eq!(oneshot, inc.finalize(), "length {len}");
        }
    }

    #[test]
    fn chunked_updates_are_split_invariant() {
        let msg: Vec<u8> = (0..1024u32).map(|i| (i % 256) as u8).collect();
        let oneshot = Sha3_256::digest(&msg);
        for split in [1usize, 7, 64, 135, 136, 137, 512] {
            let mut h = Sha3_256::new();
            for chunk in msg.chunks(split) {
                h.update(chunk);
            }
            assert_eq!(oneshot, h.finalize(), "split {split}");
        }
    }

    #[test]
    fn keccak_permutation_is_not_identity_and_is_deterministic() {
        // The FIPS vectors above pin down the permutation exactly; this test
        // guards the in-place API contract (deterministic, state-mutating).
        let mut a = [0u64; 25];
        let mut b = [0u64; 25];
        keccak_f1600(&mut a);
        keccak_f1600(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, [0u64; 25]);
    }

    #[test]
    fn finalize_reset_reuses_one_hasher_across_messages() {
        let mut h = Sha3_256::new();
        // Interleave message lengths around the rate boundary so stale
        // buffer bytes would be caught if reset missed them.
        for len in [0usize, 3, 135, 136, 137, 300, 5] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            h.update(&msg);
            assert_eq!(h.finalize_reset(), Sha3_256::digest(&msg), "length {len}");
        }
    }

    #[test]
    fn reset_discards_absorbed_input() {
        let mut h = Sha3_256::new();
        h.update(b"poison that must not leak into the next digest");
        h.reset();
        h.update(b"abc");
        assert_eq!(h.finalize(), Sha3_256::digest(b"abc"));
    }

    #[test]
    fn distinct_messages_produce_distinct_digests() {
        let a = Sha3_256::digest(b"imageproof");
        let b = Sha3_256::digest(b"imageprooF");
        assert_ne!(a, b);
    }
}
