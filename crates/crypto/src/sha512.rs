//! SHA-512 as specified by FIPS-180-4.
//!
//! SHA-512 is a substrate for the Ed25519 signature scheme (RFC 8032 uses it
//! to derive nonces and challenge scalars); it is not used for ADS digests,
//! which are SHA3-256 (see [`crate::sha3`]).

/// SHA-512 round constants: the first 64 bits of the fractional parts of the
/// cube roots of the first 80 primes.
const K: [u64; 80] = [
    0x428a2f98d728ae22,
    0x7137449123ef65cd,
    0xb5c0fbcfec4d3b2f,
    0xe9b5dba58189dbbc,
    0x3956c25bf348b538,
    0x59f111f1b605d019,
    0x923f82a4af194f9b,
    0xab1c5ed5da6d8118,
    0xd807aa98a3030242,
    0x12835b0145706fbe,
    0x243185be4ee4b28c,
    0x550c7dc3d5ffb4e2,
    0x72be5d74f27b896f,
    0x80deb1fe3b1696b1,
    0x9bdc06a725c71235,
    0xc19bf174cf692694,
    0xe49b69c19ef14ad2,
    0xefbe4786384f25e3,
    0x0fc19dc68b8cd5b5,
    0x240ca1cc77ac9c65,
    0x2de92c6f592b0275,
    0x4a7484aa6ea6e483,
    0x5cb0a9dcbd41fbd4,
    0x76f988da831153b5,
    0x983e5152ee66dfab,
    0xa831c66d2db43210,
    0xb00327c898fb213f,
    0xbf597fc7beef0ee4,
    0xc6e00bf33da88fc2,
    0xd5a79147930aa725,
    0x06ca6351e003826f,
    0x142929670a0e6e70,
    0x27b70a8546d22ffc,
    0x2e1b21385c26c926,
    0x4d2c6dfc5ac42aed,
    0x53380d139d95b3df,
    0x650a73548baf63de,
    0x766a0abb3c77b2a8,
    0x81c2c92e47edaee6,
    0x92722c851482353b,
    0xa2bfe8a14cf10364,
    0xa81a664bbc423001,
    0xc24b8b70d0f89791,
    0xc76c51a30654be30,
    0xd192e819d6ef5218,
    0xd69906245565a910,
    0xf40e35855771202a,
    0x106aa07032bbd1b8,
    0x19a4c116b8d2d0c8,
    0x1e376c085141ab53,
    0x2748774cdf8eeb99,
    0x34b0bcb5e19b48a8,
    0x391c0cb3c5c95a63,
    0x4ed8aa4ae3418acb,
    0x5b9cca4f7763e373,
    0x682e6ff3d6b2b8a3,
    0x748f82ee5defb2fc,
    0x78a5636f43172f60,
    0x84c87814a1f0ab72,
    0x8cc702081a6439ec,
    0x90befffa23631e28,
    0xa4506cebde82bde9,
    0xbef9a3f7b2c67915,
    0xc67178f2e372532b,
    0xca273eceea26619c,
    0xd186b8c721c0c207,
    0xeada7dd6cde0eb1e,
    0xf57d4f7fee6ed178,
    0x06f067aa72176fba,
    0x0a637dc5a2c898a6,
    0x113f9804bef90dae,
    0x1b710b35131c471b,
    0x28db77f523047d84,
    0x32caab7b40c72493,
    0x3c9ebe0a15c9bebc,
    0x431d67c49c100d4c,
    0x4cc5d4becb3e42b6,
    0x597f299cfc657e2a,
    0x5fcb6fab3ad6faec,
    0x6c44198c4a475817,
];

const INITIAL_STATE: [u64; 8] = [
    0x6a09e667f3bcc908,
    0xbb67ae8584caa73b,
    0x3c6ef372fe94f82b,
    0xa54ff53a5f1d36f1,
    0x510e527fade682d1,
    0x9b05688c2b3e6c1f,
    0x1f83d9abfb41bd6b,
    0x5be0cd19137e2179,
];

/// Incremental SHA-512 hasher.
#[derive(Clone)]
pub struct Sha512 {
    state: [u64; 8],
    buffer: [u8; 128],
    buffered: usize,
    /// Total message length in bytes (FIPS-180-4 allows 2^128 bits; a u128
    /// byte counter covers every realistic input).
    length: u128,
}

impl Default for Sha512 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha512 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: INITIAL_STATE,
            buffer: [0u8; 128],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorbs `data`.
    // audit:allow(panic) slice bounds are capped by take = (128 - buffered).min(input.len())
    pub fn update(&mut self, data: &[u8]) {
        self.length += data.len() as u128;
        let mut input = data;
        if self.buffered > 0 {
            let take = (128 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 128 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= 128 {
            let (block, rest) = input.split_at(128);
            let mut tmp = [0u8; 128];
            tmp.copy_from_slice(block);
            self.compress(&tmp);
            input = rest;
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    // audit:allow(panic) schedule/state indices are constants or t in 0..80 into [u64; 80]; chunks_exact(8) chunks convert infallibly
    fn compress(&mut self, block: &[u8; 128]) {
        let mut w = [0u64; 80];
        for (i, chunk) in block.chunks_exact(8).enumerate() {
            w[i] = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        for t in 16..80 {
            let s0 = w[t - 15].rotate_right(1) ^ w[t - 15].rotate_right(8) ^ (w[t - 15] >> 7);
            let s1 = w[t - 2].rotate_right(19) ^ w[t - 2].rotate_right(61) ^ (w[t - 2] >> 6);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..80 {
            let big_s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }

    /// Pads and produces the 64-byte digest.
    // audit:allow(panic) zeros <= 127 by the padding arithmetic, within the 128-byte ZERO block
    pub fn finalize(mut self) -> [u8; 64] {
        let bit_len = self.length * 8;
        // Append 0x80, zeros, then the 128-bit big-endian bit length.
        self.update(&[0x80]);
        // After the 0x80 byte, `buffered` is in [1, 128]; pad zeros so that
        // exactly 16 bytes remain in the final block.
        let zeros = if self.buffered <= 112 {
            112 - self.buffered
        } else {
            128 - self.buffered + 112
        };
        const ZERO: [u8; 128] = [0u8; 128];
        // Don't let the zero padding perturb the recorded message length.
        let saved = self.length;
        self.update(&ZERO[..zeros]);
        self.update(&bit_len.to_be_bytes());
        self.length = saved;
        debug_assert_eq!(self.buffered, 0, "padding must complete a block");

        let mut out = [0u8; 64];
        for (chunk, word) in out.chunks_exact_mut(8).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience.
    pub fn digest(data: &[u8]) -> [u8; 64] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_message_matches_fips_vector() {
        assert_eq!(
            hex(&Sha512::digest(b"")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
                .replace(' ', "")
        );
    }

    #[test]
    fn abc_matches_fips_vector() {
        assert_eq!(
            hex(&Sha512::digest(b"abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
                .replace(' ', "")
        );
    }

    #[test]
    fn two_block_message_matches_fips_vector() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex(&Sha512::digest(msg)),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018\
             501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"
                .replace(' ', "")
        );
    }

    #[test]
    fn padding_boundaries_are_split_invariant() {
        for len in [0usize, 1, 110, 111, 112, 113, 127, 128, 129, 240, 256] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            let oneshot = Sha512::digest(&msg);
            let mut inc = Sha512::new();
            for chunk in msg.chunks(13) {
                inc.update(chunk);
            }
            assert_eq!(oneshot, inc.finalize(), "length {len}");
        }
    }

    #[test]
    fn million_a_matches_known_vector() {
        let mut h = Sha512::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb\
             de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b"
                .replace(' ', "")
        );
    }
}
