//! A minimal binary wire format for verification objects.
//!
//! The paper reports *VO size* as a headline metric (Figs. 6–8, 12–14), so
//! VOs must have a concrete, compact byte encoding rather than an in-memory
//! estimate. This module provides an explicit little-endian writer/reader
//! pair; every VO type implements [`Encode`]/[`Decode`] against it, and the
//! encoded length is the reported VO size.
//!
//! The format is deliberately simple: fixed-width integers, IEEE-754 floats
//! by bit pattern, `u32` length prefixes for sequences. Decoding is fully
//! validated — a malformed VO yields [`WireError`], never a panic — because
//! VOs arrive from the untrusted SP.

use crate::digest::Digest;

/// Decoding error: the byte stream did not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than required remained.
    UnexpectedEnd,
    /// A tag byte had no corresponding variant.
    InvalidTag(u8),
    /// A length prefix exceeded sane bounds.
    LengthOverflow,
    /// Trailing bytes remained after a complete decode.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of VO bytes"),
            WireError::InvalidTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            WireError::LengthOverflow => write!(f, "length prefix exceeds stream size"),
            WireError::TrailingBytes => write!(f, "trailing bytes after VO"),
        }
    }
}

impl std::error::Error for WireError {}

/// Byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(&d.0);
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self, data: &[u8]) {
        self.u32(data.len() as u32);
        self.buf.extend_from_slice(data);
    }

    /// Length prefix for a sequence the caller will then encode item-wise.
    pub fn seq_len(&mut self, len: usize) {
        self.u32(len as u32);
    }

    /// LEB128 variable-length unsigned integer — the compact-integer
    /// representation the paper's §VI-B compression techniques call for
    /// (small frequency counts and d-gaps fit in one byte).
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Byte reader over a borrowed slice.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.data.len() {
            return Err(WireError::UnexpectedEnd);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub fn digest(&mut self) -> Result<Digest, WireError> {
        Ok(Digest(self.take(32)?.try_into().expect("32")))
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.seq_len()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a sequence length, bounding it by the remaining stream so a
    /// hostile prefix cannot trigger huge allocations.
    pub fn seq_len(&mut self) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        let remaining = self.data.len() - self.pos;
        // Every sequence element occupies at least one byte, so any honest
        // length fits in the remaining stream.
        if len > remaining {
            return Err(WireError::LengthOverflow);
        }
        Ok(len)
    }

    /// Reads a LEB128 varint (at most ten bytes for a `u64`).
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(WireError::LengthOverflow);
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Asserts the stream is fully consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

/// Types with a canonical wire encoding.
pub trait Encode {
    fn encode(&self, w: &mut Writer);

    /// Serializes to a fresh byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Exact size in bytes of the canonical encoding — the "VO size" metric.
    fn wire_size(&self) -> usize {
        // Simple and always correct; hot paths may override.
        self.to_wire().len()
    }
}

/// Types decodable from the wire encoding.
pub trait Decode: Sized {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Parses a complete byte string (rejecting trailing bytes).
    fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.f32(-1.5);
        w.digest(&Digest::of(b"x"));
        w.bytes(b"hello");
        let buf = w.finish();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f32().unwrap(), -1.5);
        assert_eq!(r.digest().unwrap(), Digest::of(b"x"));
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn truncated_stream_errors_cleanly() {
        let mut w = Writer::new();
        w.u64(1);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..4]);
        assert_eq!(r.u64(), Err(WireError::UnexpectedEnd));
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // claims 4 GiB of payload
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.seq_len(), Err(WireError::LengthOverflow));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let buf = vec![0u8; 3];
        let mut r = Reader::new(&buf);
        let _ = r.u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes));
    }

    #[test]
    fn varint_round_trips_across_widths() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut w = Writer::new();
        for &v in &values {
            w.varint(v);
        }
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        assert!(r.finish().is_ok());
    }

    #[test]
    fn varint_small_values_take_one_byte() {
        let mut w = Writer::new();
        w.varint(5);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn varint_rejects_overlong_encoding() {
        // Eleven continuation bytes exceed a u64.
        let buf = [0xffu8; 11];
        let mut r = Reader::new(&buf);
        assert_eq!(r.varint(), Err(WireError::LengthOverflow));
    }

    #[test]
    fn nan_f32_round_trips_by_bits() {
        let mut w = Writer::new();
        w.f32(f32::NAN);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(r.f32().unwrap().is_nan());
    }
}
