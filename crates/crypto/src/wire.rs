//! A minimal binary wire format for verification objects.
//!
//! The paper reports *VO size* as a headline metric (Figs. 6–8, 12–14), so
//! VOs must have a concrete, compact byte encoding rather than an in-memory
//! estimate. This module provides an explicit little-endian writer/reader
//! pair; every VO type implements [`Encode`]/[`Decode`] against it, and the
//! encoded length is the reported VO size.
//!
//! The format is deliberately simple: fixed-width integers, IEEE-754 floats
//! by bit pattern, `u32` length prefixes for sequences. Decoding is fully
//! validated — a malformed VO yields [`WireError`], never a panic — because
//! VOs arrive from the untrusted SP.

use crate::digest::Digest;

/// Decoding error: the byte stream did not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than required remained.
    UnexpectedEnd,
    /// A tag byte had no corresponding variant.
    InvalidTag(u8),
    /// A length prefix exceeded sane bounds.
    LengthOverflow,
    /// Trailing bytes remained after a complete decode.
    TrailingBytes,
    /// Nesting deeper than the decoder's recursion budget.
    DepthExceeded,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of VO bytes"),
            WireError::InvalidTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            WireError::LengthOverflow => write!(f, "length prefix exceeds stream size"),
            WireError::TrailingBytes => write!(f, "trailing bytes after VO"),
            WireError::DepthExceeded => write!(f, "VO nesting exceeds the decode depth limit"),
        }
    }
}

impl std::error::Error for WireError {}

/// Byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// A writer whose buffer starts with `capacity` bytes pre-allocated —
    /// encoding a VO of at most that size performs no allocation.
    pub fn with_capacity(capacity: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Clears the written bytes but keeps the allocation, so the writer can
    /// be reused across VOs without reallocating.
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// Ensures room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Current allocation size in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// The bytes written so far, without consuming the writer.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(&d.0);
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self, data: &[u8]) {
        self.u32(data.len() as u32);
        self.buf.extend_from_slice(data);
    }

    /// Varint-length-prefixed byte string: one length byte instead of four
    /// for payloads under 128 bytes. VO framing where size is the headline
    /// metric uses this form.
    pub fn vbytes(&mut self, data: &[u8]) {
        self.varint(data.len() as u64);
        self.buf.extend_from_slice(data);
    }

    /// Length prefix for a sequence the caller will then encode item-wise.
    pub fn seq_len(&mut self, len: usize) {
        self.u32(len as u32);
    }

    /// Varint form of [`Writer::seq_len`] — one byte for sequences shorter
    /// than 128 items.
    pub fn vseq_len(&mut self, len: usize) {
        self.varint(len as u64);
    }

    /// LEB128 variable-length unsigned integer — the compact-integer
    /// representation the paper's §VI-B compression techniques call for
    /// (small frequency counts and d-gaps fit in one byte).
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Byte reader over a borrowed slice.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::UnexpectedEnd)?;
        let s = self
            .data
            .get(self.pos..end)
            .ok_or(WireError::UnexpectedEnd)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads exactly `N` bytes into an array; the `try_into` cannot fail
    /// because `take` returned an `N`-byte slice, but the conversion stays
    /// fallible so this path is panic-free by construction.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?
            .try_into()
            .map_err(|_| WireError::UnexpectedEnd)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        self.take(1)?
            .first()
            .copied()
            .ok_or(WireError::UnexpectedEnd)
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub fn digest(&mut self) -> Result<Digest, WireError> {
        Ok(Digest(self.take_array()?))
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.seq_len()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Counterpart of [`Writer::vbytes`].
    pub fn vbytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.vseq_len()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a sequence length, bounding it by the remaining stream so a
    /// hostile prefix cannot trigger huge allocations.
    pub fn seq_len(&mut self) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        self.bound_len(len)
    }

    /// Counterpart of [`Writer::vseq_len`], with the same hostile-length
    /// bounding as [`Reader::seq_len`].
    pub fn vseq_len(&mut self) -> Result<usize, WireError> {
        let len = self.varint()?;
        let len = usize::try_from(len).map_err(|_| WireError::LengthOverflow)?;
        self.bound_len(len)
    }

    fn bound_len(&self, len: usize) -> Result<usize, WireError> {
        let remaining = self.data.len() - self.pos;
        // Every sequence element occupies at least one byte, so any honest
        // length fits in the remaining stream.
        if len > remaining {
            return Err(WireError::LengthOverflow);
        }
        Ok(len)
    }

    /// Reads a LEB128 varint (at most ten bytes for a `u64`).
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(WireError::LengthOverflow);
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Asserts the stream is fully consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

/// Per-thread scratch [`Writer`] for [`Encode::to_wire`]/[`Encode::wire_size`].
///
/// The pool keeps one writer per thread whose capacity grows to the largest
/// VO that thread has encoded, so steady-state query serving (one worker
/// encoding one VO after another, as in `query_batch`) performs zero buffer
/// reallocations: the scratch is sized by the previous query's VO. Bytes are
/// identical to encoding into a fresh `Writer` — only the allocation
/// behaviour differs.
mod scratch {
    use super::Writer;
    use std::cell::RefCell;

    thread_local! {
        static POOL: RefCell<Writer> = RefCell::new(Writer::new());
    }

    /// Runs `f` with this thread's scratch writer (reset before and after
    /// use, capacity retained). Falls back to a fresh writer if the scratch
    /// is already borrowed (an `encode` impl that itself calls `to_wire`).
    pub fn with_writer<R>(f: impl FnOnce(&mut Writer) -> R) -> R {
        POOL.with(|cell| match cell.try_borrow_mut() {
            Ok(mut w) => {
                w.reset();
                let r = f(&mut w);
                w.reset();
                r
            }
            Err(_) => f(&mut Writer::new()),
        })
    }
}

/// Types with a canonical wire encoding.
pub trait Encode {
    fn encode(&self, w: &mut Writer);

    /// Serializes to a byte vector sized exactly to the encoding.
    ///
    /// Encodes through the per-thread scratch writer, so the only
    /// allocation is the exact-size output vector — no realloc chain while
    /// the VO is being assembled.
    fn to_wire(&self) -> Vec<u8> {
        scratch::with_writer(|w| {
            self.encode(w);
            w.as_slice().to_vec()
        })
    }

    /// Exact size in bytes of the canonical encoding — the "VO size" metric.
    ///
    /// Allocation-free in steady state: measures through the per-thread
    /// scratch writer without materializing the bytes.
    fn wire_size(&self) -> usize {
        scratch::with_writer(|w| {
            self.encode(w);
            w.len()
        })
    }
}

/// Types decodable from the wire encoding.
pub trait Decode: Sized {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Parses a complete byte string (rejecting trailing bytes).
    fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.f32(-1.5);
        w.digest(&Digest::of(b"x"));
        w.bytes(b"hello");
        let buf = w.finish();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f32().unwrap(), -1.5);
        assert_eq!(r.digest().unwrap(), Digest::of(b"x"));
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn truncated_stream_errors_cleanly() {
        let mut w = Writer::new();
        w.u64(1);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..4]);
        assert_eq!(r.u64(), Err(WireError::UnexpectedEnd));
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // claims 4 GiB of payload
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.seq_len(), Err(WireError::LengthOverflow));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let buf = vec![0u8; 3];
        let mut r = Reader::new(&buf);
        let _ = r.u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes));
    }

    #[test]
    fn varint_round_trips_across_widths() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut w = Writer::new();
        for &v in &values {
            w.varint(v);
        }
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        assert!(r.finish().is_ok());
    }

    #[test]
    fn varint_small_values_take_one_byte() {
        let mut w = Writer::new();
        w.varint(5);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn varint_rejects_overlong_encoding() {
        // Eleven continuation bytes exceed a u64.
        let buf = [0xffu8; 11];
        let mut r = Reader::new(&buf);
        assert_eq!(r.varint(), Err(WireError::LengthOverflow));
    }

    #[test]
    fn reset_leaves_no_residual_bytes() {
        let mut w = Writer::with_capacity(64);
        w.u64(0xFEED_FACE_CAFE_BEEF);
        w.bytes(b"residue");
        let cap = w.capacity();
        w.reset();
        assert!(w.is_empty(), "reset writer must report empty");
        assert_eq!(w.len(), 0);
        assert_eq!(w.as_slice(), &[] as &[u8]);
        assert_eq!(w.capacity(), cap, "reset must keep the allocation");
        // A post-reset encoding must match a fresh writer's bit-for-bit.
        w.u32(7);
        w.f32(1.25);
        let mut fresh = Writer::new();
        fresh.u32(7);
        fresh.f32(1.25);
        assert_eq!(w.finish(), fresh.finish());
    }

    #[test]
    fn with_capacity_pre_allocates() {
        let mut w = Writer::with_capacity(128);
        assert!(w.capacity() >= 128);
        for i in 0..32u32 {
            w.u32(i);
        }
        assert!(w.capacity() >= 128, "no growth needed within capacity");
        assert_eq!(w.len(), 128);
    }

    #[test]
    fn pooled_to_wire_matches_fresh_writer_encoding() {
        struct Sample(Vec<u64>);
        impl Encode for Sample {
            fn encode(&self, w: &mut Writer) {
                w.seq_len(self.0.len());
                for &v in &self.0 {
                    w.varint(v);
                }
            }
        }
        let s = Sample((0..100).map(|i| i * 31).collect());
        let mut fresh = Writer::new();
        s.encode(&mut fresh);
        let fresh = fresh.finish();
        // Repeated pooled encodes (same thread, shared scratch) all match.
        for _ in 0..3 {
            assert_eq!(s.to_wire(), fresh);
            assert_eq!(s.wire_size(), fresh.len());
        }
        // And the scratch is clean across differently-sized encodings.
        let small = Sample(vec![1]);
        let tiny = small.to_wire();
        assert_eq!(tiny.len(), small.wire_size());
        assert_eq!(s.to_wire(), fresh);
    }

    #[test]
    fn nan_f32_round_trips_by_bits() {
        let mut w = Writer::new();
        w.f32(f32::NAN);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(r.f32().unwrap().is_nan());
    }
}
