//! # imageproof-crypto
//!
//! Cryptographic substrate for the ImageProof reproduction, implemented from
//! scratch (no external crypto crates are available in this environment):
//!
//! * [`sha3`] — SHA3-256 (FIPS-202), the hash `h(.)` used by every
//!   authenticated data structure in the paper (§VII-A fixes SHA3-256).
//! * [`sha512`] — SHA-512 (FIPS-180-4), a substrate for Ed25519.
//! * [`ed25519`] — RFC 8032 Ed25519 signatures, used by the image owner to
//!   sign images (Eq. 15) and the ADS root digest.
//! * [`digest`] — the 32-byte [`digest::Digest`] type and an
//!   unambiguous field-concatenation builder shared by all ADSs.
//! * [`merkle`] — a generic binary Merkle hash tree with membership proofs
//!   (paper §II-B, Fig. 1), reused by the §VI-A optimization.
//!
//! All primitives are validated against official test vectors (FIPS /
//! RFC 8032) in the unit tests.

pub mod digest;
pub mod ed25519;
pub mod merkle;
pub mod sha3;
pub mod sha512;
pub mod wire;

pub use digest::{Digest, DigestBuilder};
pub use ed25519::{verify_batch, PublicKey, Signature, SigningKey};
pub use merkle::{MerkleProof, MerkleTree, SubsetProof};
pub use wire::{Decode, Encode, Reader, WireError, Writer};
