//! Ed25519 digital signatures (RFC 8032), implemented from scratch.
//!
//! ImageProof's image owner signs every outsourced image
//! (`sig_I = sign(sk, h(I | h(img_I)))`, Eq. 15 of the paper) and the root
//! digest of the ADS forest; clients verify these signatures against the
//! owner's published public key. Any EUF-CMA signature scheme works for the
//! protocol — Ed25519 is chosen because it is completely specified, compact
//! (64-byte signatures, 32-byte keys), and fast to verify.
//!
//! The implementation is *variable time*. That is sound for this system:
//! signing happens offline at the trusted owner, and verification operates
//! only on public data.

pub mod edwards;
pub mod field;
pub mod scalar;

use crate::sha512::Sha512;
use edwards::EdwardsPoint;
use scalar::Scalar;

/// A 32-byte Ed25519 public key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey(pub [u8; 32]);

/// A 64-byte Ed25519 signature (`R || S`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature(pub [u8; 64]);

impl Signature {
    /// Builds a signature from raw bytes without validation; invalid bytes
    /// simply fail verification later.
    pub fn from_bytes(bytes: [u8; 64]) -> Self {
        Signature(bytes)
    }
}

impl serde::Serialize for Signature {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serde::Serialize::serialize(self.0.as_slice(), s)
    }
}

impl<'de> serde::Deserialize<'de> for Signature {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v: Vec<u8> = serde::Deserialize::deserialize(d)?;
        let arr: [u8; 64] = v
            .try_into()
            .map_err(|_| serde::de::Error::custom("signature must be 64 bytes"))?;
        Ok(Signature(arr))
    }
}

/// An Ed25519 signing key (the 32-byte seed plus cached expansion).
#[derive(Clone)]
pub struct SigningKey {
    /// Clamped secret scalar bytes (`s` in RFC 8032).
    secret_scalar: [u8; 32],
    /// Nonce-derivation prefix (`prefix` in RFC 8032).
    prefix: [u8; 32],
    public: PublicKey,
}

impl SigningKey {
    /// Expands a 32-byte seed into a signing key (RFC 8032 §5.1.5).
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let h = Sha512::digest(seed);
        let mut secret_scalar = [0u8; 32];
        secret_scalar.copy_from_slice(&h[..32]);
        secret_scalar[0] &= 0b1111_1000;
        secret_scalar[31] &= 0b0111_1111;
        secret_scalar[31] |= 0b0100_0000;
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&h[32..]);

        let a = EdwardsPoint::base_point().mul_clamped(&secret_scalar);
        SigningKey {
            secret_scalar,
            prefix,
            public: PublicKey(a.compress()),
        }
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        self.public
    }

    /// Signs `message` (RFC 8032 §5.1.6).
    pub fn sign(&self, message: &[u8]) -> Signature {
        // r = SHA-512(prefix || M) mod l.
        let mut h = Sha512::new();
        h.update(&self.prefix);
        h.update(message);
        let r = Scalar::from_bytes_wide(&h.finalize());

        let r_point = EdwardsPoint::base_point().mul_scalar(&r);
        let r_bytes = r_point.compress();

        // k = SHA-512(R || A || M) mod l.
        let mut h = Sha512::new();
        h.update(&r_bytes);
        h.update(&self.public.0);
        h.update(message);
        let k = Scalar::from_bytes_wide(&h.finalize());

        // S = (r + k * s) mod l.
        let s_scalar = Scalar::from_bytes_mod_order(&self.secret_scalar);
        let s = r.add(k.mul(s_scalar));

        let mut sig = [0u8; 64];
        sig[..32].copy_from_slice(&r_bytes);
        sig[32..].copy_from_slice(&s.to_bytes());
        Signature(sig)
    }
}

impl PublicKey {
    /// Verifies `signature` over `message` (RFC 8032 §5.1.7, cofactorless
    /// equation `[S]B = R + [k]A`, with strict canonical-`S` checking).
    // audit:allow(panic) halves of the fixed [u8; 64] signature always convert to [u8; 32]
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let r_bytes: [u8; 32] = signature.0[..32].try_into().expect("split");
        let s_bytes: [u8; 32] = signature.0[32..].try_into().expect("split");

        let Some(s) = Scalar::from_canonical_bytes(&s_bytes) else {
            return false;
        };
        let Some(a) = EdwardsPoint::decompress(&self.0) else {
            return false;
        };
        let Some(r_point) = EdwardsPoint::decompress(&r_bytes) else {
            return false;
        };

        let mut h = Sha512::new();
        h.update(&r_bytes);
        h.update(&self.0);
        h.update(message);
        let k = Scalar::from_bytes_wide(&h.finalize());

        let lhs = EdwardsPoint::base_point().mul_scalar(&s);
        let rhs = r_point.add(&a.mul_scalar(&k));
        lhs.equals(&rhs)
    }
}

/// Batch verification of many `(message, public key, signature)` triples —
/// the client checks all `k` returned image signatures in one pass (§V-C
/// step iv), sharing the doubling chain across every term.
///
/// The check is the standard random-linear-combination test:
/// `(Σ zᵢ·Sᵢ)·B  ==  Σ zᵢ·Rᵢ + Σ (zᵢ·kᵢ)·Aᵢ` for 128-bit coefficients `zᵢ`
/// derived by hashing the whole batch (Fiat–Shamir style, so a forger
/// cannot choose signatures after seeing the coefficients). A `true` result
/// is sound with probability `1 - 2^-128`; on `false` callers fall back to
/// individual verification to identify the culprit.
// audit:allow(panic) signature halves and the 16-byte coefficient prefix are constant splits of fixed-size arrays
pub fn verify_batch(items: &[(&[u8], PublicKey, Signature)]) -> bool {
    if items.is_empty() {
        return true;
    }
    // Derive the batch coefficients from every input.
    let mut transcript = Sha512::new();
    for (msg, pk, sig) in items {
        transcript.update(&pk.0);
        transcript.update(&sig.0);
        transcript.update(&(msg.len() as u64).to_le_bytes());
        transcript.update(msg);
    }
    let seed = transcript.finalize();

    let mut s_combined = Scalar::ZERO;
    let mut scalars = Vec::with_capacity(items.len() * 2);
    let mut points = Vec::with_capacity(items.len() * 2);
    for (i, (msg, pk, sig)) in items.iter().enumerate() {
        let r_bytes: [u8; 32] = sig.0[..32].try_into().expect("split");
        let s_bytes: [u8; 32] = sig.0[32..].try_into().expect("split");
        let Some(s) = Scalar::from_canonical_bytes(&s_bytes) else {
            return false;
        };
        let Some(a) = EdwardsPoint::decompress(&pk.0) else {
            return false;
        };
        let Some(r_point) = EdwardsPoint::decompress(&r_bytes) else {
            return false;
        };

        // z_i: 128-bit coefficient from the transcript seed and the index.
        let mut zh = Sha512::new();
        zh.update(&seed);
        zh.update(&(i as u64).to_le_bytes());
        let mut z_bytes = [0u8; 32];
        z_bytes[..16].copy_from_slice(&zh.finalize()[..16]);
        let z = Scalar::from_bytes_mod_order(&z_bytes);

        let mut kh = Sha512::new();
        kh.update(&r_bytes);
        kh.update(&pk.0);
        kh.update(msg);
        let k = Scalar::from_bytes_wide(&kh.finalize());

        s_combined = s_combined.add(z.mul(s));
        scalars.push(z);
        points.push(r_point);
        scalars.push(z.mul(k));
        points.push(a);
    }

    let lhs = EdwardsPoint::base_point().mul_scalar(&s_combined);
    let rhs = EdwardsPoint::multiscalar_mul(&scalars, &points);
    lhs.equals(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
            .collect()
    }

    fn unhex32(s: &str) -> [u8; 32] {
        unhex(s).try_into().expect("32 bytes")
    }

    /// RFC 8032 §7.1 TEST 1 (empty message).
    #[test]
    fn rfc8032_test_1() {
        let sk = SigningKey::from_seed(&unhex32(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        ));
        assert_eq!(
            sk.public_key().0,
            unhex32("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a")
        );
        let sig = sk.sign(b"");
        assert_eq!(
            sig.0.to_vec(),
            unhex(
                "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
                 5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
            )
        );
        assert!(sk.public_key().verify(b"", &sig));
    }

    /// RFC 8032 §7.1 TEST 2 (one-byte message 0x72).
    #[test]
    fn rfc8032_test_2() {
        let sk = SigningKey::from_seed(&unhex32(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        ));
        assert_eq!(
            sk.public_key().0,
            unhex32("3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c")
        );
        let msg = [0x72u8];
        let sig = sk.sign(&msg);
        assert_eq!(
            sig.0.to_vec(),
            unhex(
                "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
                 085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
            )
        );
        assert!(sk.public_key().verify(&msg, &sig));
    }

    /// RFC 8032 §7.1 TEST 3 (two-byte message af82).
    #[test]
    fn rfc8032_test_3() {
        let sk = SigningKey::from_seed(&unhex32(
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        ));
        assert_eq!(
            sk.public_key().0,
            unhex32("fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025")
        );
        let msg = [0xaf, 0x82];
        let sig = sk.sign(&msg);
        assert_eq!(
            sig.0.to_vec(),
            unhex(
                "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
                 18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
            )
        );
        assert!(sk.public_key().verify(&msg, &sig));
    }

    #[test]
    fn verification_rejects_tampering() {
        let sk = SigningKey::from_seed(&[42u8; 32]);
        let pk = sk.public_key();
        let sig = sk.sign(b"genuine image bytes");
        assert!(pk.verify(b"genuine image bytes", &sig));
        assert!(!pk.verify(b"forged image bytes", &sig));

        let mut bad_sig = sig.0;
        bad_sig[0] ^= 1;
        assert!(!pk.verify(b"genuine image bytes", &Signature(bad_sig)));

        let other = SigningKey::from_seed(&[43u8; 32]);
        assert!(!other.public_key().verify(b"genuine image bytes", &sig));
    }

    #[test]
    fn verification_rejects_non_canonical_s() {
        use super::scalar::L;
        let sk = SigningKey::from_seed(&[7u8; 32]);
        let sig = sk.sign(b"msg");
        // Add l to S: same residue, non-canonical encoding. RFC 8032
        // verifiers MUST reject it.
        let mut s = [0u8; 32];
        s.copy_from_slice(&sig.0[32..]);
        let mut carry = 0u16;
        for (i, byte) in s.iter_mut().enumerate() {
            let limb = L[i / 8].to_le_bytes()[i % 8];
            let sum = *byte as u16 + limb as u16 + carry;
            *byte = sum as u8;
            carry = sum >> 8;
        }
        let mut malleated = sig.0;
        malleated[32..].copy_from_slice(&s);
        assert!(!sk.public_key().verify(b"msg", &Signature(malleated)));
    }

    #[test]
    fn distinct_seeds_produce_distinct_keys() {
        let a = SigningKey::from_seed(&[1u8; 32]);
        let b = SigningKey::from_seed(&[2u8; 32]);
        assert_ne!(a.public_key().0, b.public_key().0);
    }

    fn batch_fixture(n: usize) -> Vec<(Vec<u8>, PublicKey, Signature)> {
        (0..n)
            .map(|i| {
                let sk = SigningKey::from_seed(&[i as u8 + 1; 32]);
                let msg = format!("image-{i}").into_bytes();
                let sig = sk.sign(&msg);
                (msg, sk.public_key(), sig)
            })
            .collect()
    }

    fn as_refs(items: &[(Vec<u8>, PublicKey, Signature)]) -> Vec<(&[u8], PublicKey, Signature)> {
        items
            .iter()
            .map(|(m, p, s)| (m.as_slice(), *p, *s))
            .collect()
    }

    #[test]
    fn batch_verification_accepts_honest_batches() {
        for n in [0usize, 1, 2, 7, 16] {
            let items = batch_fixture(n);
            assert!(verify_batch(&as_refs(&items)), "n = {n}");
        }
    }

    #[test]
    fn batch_verification_rejects_any_bad_member() {
        let mut items = batch_fixture(8);
        // Tamper one message.
        items[3].0[0] ^= 1;
        assert!(!verify_batch(&as_refs(&items)));
        let mut items = batch_fixture(8);
        // Tamper one signature byte.
        let mut sig = items[5].2 .0;
        sig[10] ^= 1;
        items[5].2 = Signature(sig);
        assert!(!verify_batch(&as_refs(&items)));
        let mut items = batch_fixture(8);
        // Swap two public keys.
        let pk = items[0].1;
        items[0].1 = items[1].1;
        items[1].1 = pk;
        assert!(!verify_batch(&as_refs(&items)));
    }

    #[test]
    fn batch_matches_individual_verification() {
        let items = batch_fixture(5);
        for (m, p, s) in &items {
            assert!(p.verify(m, s));
        }
        assert!(verify_batch(&as_refs(&items)));
    }

    #[test]
    fn multiscalar_matches_individual_scalar_muls() {
        use super::edwards::EdwardsPoint;
        use super::scalar::Scalar;
        let b = EdwardsPoint::base_point();
        let p2 = b.double();
        let p3 = p2.add(&b);
        let s1 = Scalar::from_bytes_mod_order(&[11u8; 32]);
        let s2 = Scalar::from_bytes_mod_order(&[23u8; 32]);
        let s3 = Scalar::from_bytes_mod_order(&[47u8; 32]);
        let combined = EdwardsPoint::multiscalar_mul(&[s1, s2, s3], &[b, p2, p3]);
        let individual = b
            .mul_scalar(&s1)
            .add(&p2.mul_scalar(&s2))
            .add(&p3.mul_scalar(&s3));
        assert!(combined.equals(&individual));
    }
}
