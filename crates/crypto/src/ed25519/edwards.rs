//! Points on the twisted Edwards curve `-x^2 + y^2 = 1 + d x^2 y^2` over
//! GF(2^255 - 19), in extended homogeneous coordinates `(X : Y : Z : T)` with
//! `x = X/Z`, `y = Y/Z`, `xy = T/Z`.
//!
//! Formulas are the `add-2008-hwcd-3` / `dbl-2008-hwcd` ones from the
//! Explicit Formulas Database, specialized to `a = -1`.

use super::field::FieldElement;
use super::scalar::Scalar;
use std::sync::OnceLock;

/// Curve constants derived once at first use (they are fully determined by
/// the curve equation, so deriving them beats transcribing 5-limb literals).
struct Constants {
    d: FieldElement,
    d2: FieldElement,
    base: EdwardsPoint,
}

// audit:allow(panic) index 31 is within [u8; 32]; the hard-coded base point always decompresses (covered by tests)
fn constants() -> &'static Constants {
    static CACHE: OnceLock<Constants> = OnceLock::new();
    CACHE.get_or_init(|| {
        // d = -121665 / 121666.
        let d = -FieldElement::from_u64(121_665) * FieldElement::from_u64(121_666).invert();
        let d2 = d + d;
        // Base point: y = 4/5 with the even (sign bit 0) x coordinate.
        let y = FieldElement::from_u64(4) * FieldElement::from_u64(5).invert();
        let mut enc = y.to_bytes();
        enc[31] &= 0x7f; // sign(x) = 0
        let base = EdwardsPoint::decompress_with_d(&enc, d).expect("base point decompresses");
        Constants { d, d2, base }
    })
}

/// A curve point in extended coordinates.
#[derive(Clone, Copy, Debug)]
pub struct EdwardsPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
    t: FieldElement,
}

impl EdwardsPoint {
    /// The neutral element (0, 1).
    pub fn identity() -> Self {
        EdwardsPoint {
            x: FieldElement::ZERO,
            y: FieldElement::ONE,
            z: FieldElement::ONE,
            t: FieldElement::ZERO,
        }
    }

    /// The Ed25519 base point `B`.
    pub fn base_point() -> Self {
        constants().base
    }

    /// Decompresses an RFC 8032 encoded point: 255-bit little-endian `y`
    /// plus a sign bit for `x`. Returns `None` for invalid encodings.
    pub fn decompress(bytes: &[u8; 32]) -> Option<Self> {
        Self::decompress_with_d(bytes, constants().d)
    }

    // audit:allow(panic) sign-bit accesses use the constant index 31 into [u8; 32]
    fn decompress_with_d(bytes: &[u8; 32], d: FieldElement) -> Option<Self> {
        let sign = bytes[31] >> 7 == 1;
        let y = FieldElement::from_bytes(bytes);
        // Reject non-canonical y (y >= p): re-encoding must reproduce the
        // input (ignoring the sign bit).
        let mut canonical = y.to_bytes();
        canonical[31] |= (sign as u8) << 7;
        if &canonical != bytes {
            return None;
        }

        // x^2 = (y^2 - 1) / (d y^2 + 1) = u / v.
        let yy = y.square();
        let u = yy - FieldElement::ONE;
        let v = d * yy + FieldElement::ONE;

        // Candidate root: x = u v^3 (u v^7)^((p-5)/8).
        let v3 = v.square() * v;
        let v7 = v3.square() * v;
        let mut x = u * v3 * (u * v7).pow_p58();

        let vxx = v * x.square();
        if vxx == u {
            // x is already a root.
        } else if vxx == -u {
            x = x * FieldElement::sqrt_m1();
        } else {
            return None;
        }

        if x.is_zero() && sign {
            // "Negative zero" is not a valid encoding.
            return None;
        }
        if x.is_negative() != sign {
            x = -x;
        }

        Some(EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x * y,
        })
    }

    /// RFC 8032 point compression.
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x * zinv;
        let y = self.y * zinv;
        let mut out = y.to_bytes();
        out[31] |= (x.is_negative() as u8) << 7;
        out
    }

    /// Point addition (`add-2008-hwcd-3`, a = -1).
    pub fn add(&self, other: &EdwardsPoint) -> EdwardsPoint {
        let k = constants().d2;
        let a = (self.y - self.x) * (other.y - other.x);
        let b = (self.y + self.x) * (other.y + other.x);
        let c = self.t * k * other.t;
        let d = (self.z + self.z) * other.z;
        let e = b - a;
        let f = d - c;
        let g = d + c;
        let h = b + a;
        EdwardsPoint {
            x: e * f,
            y: g * h,
            z: f * g,
            t: e * h,
        }
    }

    /// Point doubling (`dbl-2008-hwcd`, a = -1).
    pub fn double(&self) -> EdwardsPoint {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square() + self.z.square();
        let d = -a;
        let e = (self.x + self.y).square() - a - b;
        let g = d + b;
        let f = g - c;
        let h = d - b;
        EdwardsPoint {
            x: e * f,
            y: g * h,
            z: f * g,
            t: e * h,
        }
    }

    /// Scalar multiplication by double-and-add (variable time; see the module
    /// docs of [`super::field`] for why that is acceptable here).
    pub fn mul_scalar(&self, scalar: &Scalar) -> EdwardsPoint {
        let mut acc = EdwardsPoint::identity();
        for i in (0..256).rev() {
            acc = acc.double();
            if scalar.bit(i) {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Multiplication by a *clamped* 256-bit integer (not reduced mod `l`),
    /// as RFC 8032 key generation requires.
    pub fn mul_clamped(&self, bytes: &[u8; 32]) -> EdwardsPoint {
        let mut acc = EdwardsPoint::identity();
        for i in (0..256).rev() {
            acc = acc.double();
            if (bytes[i / 8] >> (i % 8)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Projective equality: `X1 Z2 == X2 Z1` and `Y1 Z2 == Y2 Z1`.
    pub fn equals(&self, other: &EdwardsPoint) -> bool {
        self.x * other.z == other.x * self.z && self.y * other.z == other.y * self.z
    }

    /// `Σ scalars[i] · points[i]` with one shared doubling chain: 256
    /// doublings total instead of 256 per term, which is what makes batch
    /// signature verification pay off.
    ///
    /// # Panics
    /// Panics when the slices have different lengths.
    pub fn multiscalar_mul(scalars: &[Scalar], points: &[EdwardsPoint]) -> EdwardsPoint {
        assert_eq!(scalars.len(), points.len(), "one scalar per point");
        let mut acc = EdwardsPoint::identity();
        for i in (0..256).rev() {
            acc = acc.double();
            for (s, p) in scalars.iter().zip(points) {
                if s.bit(i) {
                    acc = acc.add(p);
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trips_through_compression() {
        let id = EdwardsPoint::identity();
        let enc = id.compress();
        let mut expected = [0u8; 32];
        expected[0] = 1; // y = 1, sign 0
        assert_eq!(enc, expected);
        assert!(EdwardsPoint::decompress(&enc)
            .expect("identity decompresses")
            .equals(&id));
    }

    #[test]
    fn base_point_round_trips() {
        let b = EdwardsPoint::base_point();
        let enc = b.compress();
        // The canonical base point encoding: 0x58 followed by 31 x 0x66.
        let mut expected = [0x66u8; 32];
        expected[0] = 0x58;
        assert_eq!(enc, expected);
        assert!(EdwardsPoint::decompress(&enc).expect("valid").equals(&b));
    }

    #[test]
    fn addition_is_commutative_and_associative_on_multiples_of_base() {
        let b = EdwardsPoint::base_point();
        let b2 = b.double();
        let b3a = b2.add(&b);
        let b3b = b.add(&b2);
        assert!(b3a.equals(&b3b));
        let b4a = b3a.add(&b);
        let b4b = b2.double();
        assert!(b4a.equals(&b4b));
    }

    #[test]
    fn adding_identity_is_a_no_op() {
        let b = EdwardsPoint::base_point();
        assert!(b.add(&EdwardsPoint::identity()).equals(&b));
    }

    #[test]
    fn scalar_multiplication_matches_repeated_addition() {
        let b = EdwardsPoint::base_point();
        let mut acc = EdwardsPoint::identity();
        for n in 0u64..8 {
            let s = Scalar::from_bytes_mod_order(&{
                let mut bytes = [0u8; 32];
                bytes[0] = n as u8;
                bytes
            });
            assert!(b.mul_scalar(&s).equals(&acc), "n = {n}");
            acc = acc.add(&b);
        }
    }

    #[test]
    fn multiplying_by_group_order_gives_identity() {
        use super::super::scalar::L;
        let mut bytes = [0u8; 32];
        for (chunk, limb) in bytes.chunks_exact_mut(8).zip(L) {
            chunk.copy_from_slice(&limb.to_le_bytes());
        }
        let b = EdwardsPoint::base_point();
        assert!(b.mul_clamped(&bytes).equals(&EdwardsPoint::identity()));
    }

    #[test]
    fn decompress_rejects_invalid_encodings() {
        // y = 2 is not on the curve.
        let mut bad = [0u8; 32];
        bad[0] = 2;
        assert!(EdwardsPoint::decompress(&bad).is_none());
        // Non-canonical y = p.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        assert!(EdwardsPoint::decompress(&p_bytes).is_none());
        // Negative zero: y = 1 (x = 0) with sign bit set.
        let mut neg_zero = [0u8; 32];
        neg_zero[0] = 1;
        neg_zero[31] = 0x80;
        assert!(EdwardsPoint::decompress(&neg_zero).is_none());
    }
}
