//! Arithmetic in GF(2^255 - 19), the base field of Curve25519.
//!
//! Elements are held in five 51-bit limbs (radix 2^51), the classic
//! representation that lets 64-bit products accumulate in `u128` without
//! overflow. Functions here are *not* constant-time; this reproduction uses
//! signatures for integrity only (the signer is the trusted image owner, the
//! verifier checks public data), so side-channel hardening is out of scope
//! and documented as such.

use std::ops::{Add, Mul, Neg, Sub};

const MASK_51: u64 = (1u64 << 51) - 1;

/// 16·p in radix-2^51 limbs, added before subtraction to keep limbs positive.
const SIXTEEN_P: [u64; 5] = [
    36_028_797_018_963_664, // 16 * (2^51 - 19)
    36_028_797_018_963_952, // 16 * (2^51 - 1)
    36_028_797_018_963_952,
    36_028_797_018_963_952,
    36_028_797_018_963_952,
];

/// An element of GF(2^255 - 19).
#[derive(Clone, Copy, Debug)]
pub struct FieldElement(pub(crate) [u64; 5]);

impl FieldElement {
    pub const ZERO: FieldElement = FieldElement([0; 5]);
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0, 0]);

    /// Constructs an element from a small integer.
    // audit:allow(panic) limb indices are the constants 0 and 1 into [u64; 5]
    pub fn from_u64(v: u64) -> Self {
        let mut fe = FieldElement([0; 5]);
        fe.0[0] = v & MASK_51;
        fe.0[1] = v >> 51;
        fe
    }

    /// Decodes 32 little-endian bytes, ignoring the top (sign) bit as
    /// RFC 8032 prescribes for point decompression inputs.
    // audit:allow(panic) byte ranges are compile-time constants within [u8; 32] and an 8-byte buffer
    pub fn from_bytes(bytes: &[u8; 32]) -> Self {
        let load = |range: std::ops::Range<usize>| -> u64 {
            let mut buf = [0u8; 8];
            buf[..range.len()].copy_from_slice(&bytes[range]);
            u64::from_le_bytes(buf)
        };
        FieldElement([
            load(0..8) & MASK_51,
            (load(6..14) >> 3) & MASK_51,
            (load(12..20) >> 6) & MASK_51,
            (load(19..27) >> 1) & MASK_51,
            (load(24..32) >> 12) & ((1u64 << 51) - 1),
        ])
    }

    /// Encodes the fully-reduced canonical 32-byte little-endian form.
    // audit:allow(panic) constant limb indices into the fixed [u64; 5] representation
    pub fn to_bytes(self) -> [u8; 32] {
        let mut h = self.weak_reduce().0;
        // Compute q = 1 iff h >= p, by simulating the addition of 19 and the
        // ripple of carries through the limbs.
        let mut q = (h[0].wrapping_add(19)) >> 51;
        q = (h[1] + q) >> 51;
        q = (h[2] + q) >> 51;
        q = (h[3] + q) >> 51;
        q = (h[4] + q) >> 51;
        // h -= q * p, i.e. h += 19q then drop bit 255.
        h[0] += 19 * q;
        let mut carry = h[0] >> 51;
        h[0] &= MASK_51;
        for limb in h.iter_mut().skip(1) {
            *limb += carry;
            carry = *limb >> 51;
            *limb &= MASK_51;
        }
        // carry (bit 255) is discarded: that's the -2^255 part of -q*p.

        let mut out = [0u8; 32];
        let words = [
            h[0] | (h[1] << 51),
            (h[1] >> 13) | (h[2] << 38),
            (h[2] >> 26) | (h[3] << 25),
            (h[3] >> 39) | (h[4] << 12),
        ];
        for (chunk, w) in out.chunks_exact_mut(8).zip(words) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Carries each limb into the next, leaving limbs below 2^52.
    // audit:allow(panic) limb indices run over 0..4 into [u64; 5], in range by construction
    fn weak_reduce(self) -> Self {
        let mut l = self.0;
        let mut carry = l[4] >> 51;
        l[4] &= MASK_51;
        l[0] += carry * 19;
        for i in 0..4 {
            carry = l[i] >> 51;
            l[i] &= MASK_51;
            l[i + 1] += carry;
        }
        carry = l[4] >> 51;
        l[4] &= MASK_51;
        l[0] += carry * 19;
        FieldElement(l)
    }

    /// Squares the element.
    pub fn square(self) -> Self {
        self * self
    }

    /// Raises to the power encoded little-endian in `exp`.
    pub fn pow(self, exp: &[u8; 32]) -> Self {
        let mut result = FieldElement::ONE;
        // MSB-first square-and-multiply.
        for byte in exp.iter().rev() {
            for bit in (0..8).rev() {
                result = result.square();
                if (byte >> bit) & 1 == 1 {
                    result = result * self;
                }
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat: `self^(p-2)`.
    // audit:allow(panic) exponent bytes 0 and 31 are constant indices into [u8; 32]
    pub fn invert(self) -> Self {
        // p - 2 = 2^255 - 21.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;
        self.pow(&exp)
    }

    /// `self^((p-5)/8)`, the exponent used by the Ed25519 square-root step.
    // audit:allow(panic) exponent bytes 0 and 31 are constant indices into [u8; 32]
    pub fn pow_p58(self) -> Self {
        // (p - 5) / 8 = 2^252 - 3.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfd;
        exp[31] = 0x0f;
        self.pow(&exp)
    }

    /// True iff the canonical encoding is all zero.
    pub fn is_zero(self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// The "sign" of a field element per RFC 8032: the low bit of the
    /// canonical encoding.
    // audit:allow(panic) indexes byte 0 of the fixed 32-byte encoding
    pub fn is_negative(self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// sqrt(-1) = 2^((p-1)/4), computed once on first use.
    // audit:allow(panic) exponent bytes 0 and 31 are constant indices into [u8; 32]
    pub fn sqrt_m1() -> Self {
        use std::sync::OnceLock;
        static CACHE: OnceLock<[u64; 5]> = OnceLock::new();
        FieldElement(*CACHE.get_or_init(|| {
            // (p - 1) / 4 = 2^253 - 5.
            let mut exp = [0xffu8; 32];
            exp[0] = 0xfb;
            exp[31] = 0x1f;
            FieldElement::from_u64(2).pow(&exp).weak_reduce().0
        }))
    }
}

impl PartialEq for FieldElement {
    fn eq(&self, other: &Self) -> bool {
        self.to_bytes() == other.to_bytes()
    }
}

impl Eq for FieldElement {}

impl Add for FieldElement {
    type Output = FieldElement;
    fn add(self, rhs: FieldElement) -> FieldElement {
        let mut l = self.0;
        for (a, b) in l.iter_mut().zip(rhs.0) {
            *a += b;
        }
        FieldElement(l).weak_reduce()
    }
}

impl Sub for FieldElement {
    type Output = FieldElement;
    // audit:allow(panic) limb indices run over 0..5 into [u64; 5]
    fn sub(self, rhs: FieldElement) -> FieldElement {
        let mut l = self.0;
        for i in 0..5 {
            l[i] = l[i] + SIXTEEN_P[i] - rhs.0[i];
        }
        FieldElement(l).weak_reduce()
    }
}

impl Neg for FieldElement {
    type Output = FieldElement;
    fn neg(self) -> FieldElement {
        FieldElement::ZERO - self
    }
}

impl Mul for FieldElement {
    type Output = FieldElement;
    // audit:allow(panic) schoolbook limb products use constant indices into [u64; 5]
    fn mul(self, rhs: FieldElement) -> FieldElement {
        let a = self.weak_reduce().0;
        let b = rhs.weak_reduce().0;
        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };

        let r0 =
            m(a[0], b[0]) + 19 * (m(a[1], b[4]) + m(a[2], b[3]) + m(a[3], b[2]) + m(a[4], b[1]));
        let mut r1 =
            m(a[0], b[1]) + m(a[1], b[0]) + 19 * (m(a[2], b[4]) + m(a[3], b[3]) + m(a[4], b[2]));
        let mut r2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + 19 * (m(a[3], b[4]) + m(a[4], b[3]));
        let mut r3 =
            m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + 19 * m(a[4], b[4]);
        let mut r4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        // Carry chain; r4 overflow wraps into r0 with weight 19.
        let mut out = [0u64; 5];
        r1 += r0 >> 51;
        out[0] = (r0 as u64) & MASK_51;
        r2 += r1 >> 51;
        out[1] = (r1 as u64) & MASK_51;
        r3 += r2 >> 51;
        out[2] = (r2 as u64) & MASK_51;
        r4 += r3 >> 51;
        out[3] = (r3 as u64) & MASK_51;
        let carry = (r4 >> 51) as u64;
        out[4] = (r4 as u64) & MASK_51;
        out[0] += carry * 19;
        let carry = out[0] >> 51;
        out[0] &= MASK_51;
        out[1] += carry;

        FieldElement(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(v: u64) -> FieldElement {
        FieldElement::from_u64(v)
    }

    #[test]
    fn small_integer_round_trip() {
        for v in [0u64, 1, 2, 19, 255, 1 << 40, u64::MAX] {
            let e = fe(v);
            let b = e.to_bytes();
            assert_eq!(FieldElement::from_bytes(&b), e);
        }
    }

    #[test]
    fn p_encodes_as_zero() {
        // p = 2^255 - 19 is congruent to 0.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        // from_bytes masks the high bit but 0x7f has it clear already.
        let p = FieldElement::from_bytes(&p_bytes);
        assert!(p.is_zero());
    }

    #[test]
    fn addition_and_subtraction_are_inverse() {
        let a = fe(123_456_789);
        let b = fe(987_654_321);
        assert_eq!(a + b - b, a);
        assert_eq!(a - a, FieldElement::ZERO);
    }

    #[test]
    fn multiplication_matches_small_cases() {
        assert_eq!(fe(7) * fe(6), fe(42));
        assert_eq!(fe(1 << 30) * fe(1 << 30), fe(1 << 60));
    }

    #[test]
    fn negative_nineteen_wraps() {
        // -19 == 2^255 - 38 == 2 * (2^254 - 19) ... check via -19 + 19 == 0.
        let m19 = -fe(19);
        assert_eq!(m19 + fe(19), FieldElement::ZERO);
    }

    #[test]
    fn inversion_is_correct() {
        for v in [1u64, 2, 3, 19, 123_456_789] {
            let a = fe(v);
            assert_eq!(a * a.invert(), FieldElement::ONE, "v = {v}");
        }
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = FieldElement::sqrt_m1();
        assert_eq!(i.square(), -FieldElement::ONE);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = fe(3);
        let mut exp = [0u8; 32];
        exp[0] = 13;
        assert_eq!(a.pow(&exp), fe(1_594_323)); // 3^13
    }

    #[test]
    fn sign_bit_follows_low_bit_of_encoding() {
        assert!(!fe(2).is_negative());
        assert!(fe(3).is_negative());
        assert!(!FieldElement::ZERO.is_negative());
    }
}
