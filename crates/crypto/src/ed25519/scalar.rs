//! Arithmetic modulo the Ed25519 group order
//! `l = 2^252 + 27742317777372353535851937790883648493`.
//!
//! Scalars are four little-endian 64-bit limbs. Reduction uses simple
//! shift-and-subtract long division, which is ample for signature workloads
//! (a few thousand reductions per experiment).

/// The group order `l` as little-endian 64-bit limbs.
pub const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
];

/// A scalar in the range `[0, l)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scalar(pub(crate) [u64; 4]);

// audit:allow(panic) limb indices run over 0..4 into [u64; 4]
fn geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

// audit:allow(panic) limb indices run over 0..4 into [u64; 4]
fn sub_in_place(a: &mut [u64; 4], b: &[u64; 4]) {
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0, "subtraction must not underflow");
}

impl Scalar {
    pub const ZERO: Scalar = Scalar([0; 4]);
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Reduces a 512-bit little-endian integer modulo `l`.
    ///
    /// This is how RFC 8032 turns SHA-512 outputs into scalars.
    // audit:allow(panic) chunks_exact(8) yields exactly 8-byte chunks, so the conversion is infallible
    pub fn from_bytes_wide(bytes: &[u8; 64]) -> Self {
        let mut limbs = [0u64; 8];
        for (limb, chunk) in limbs.iter_mut().zip(bytes.chunks_exact(8)) {
            *limb = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Self::reduce_wide(limbs)
    }

    /// Interprets 32 little-endian bytes, reducing modulo `l`.
    // audit:allow(panic) the ..32 range always fits the 64-byte widening buffer
    pub fn from_bytes_mod_order(bytes: &[u8; 32]) -> Self {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(bytes);
        Self::from_bytes_wide(&wide)
    }

    /// Parses a *canonical* scalar: returns `None` when `bytes >= l`.
    ///
    /// Verification uses this to reject signature malleability (RFC 8032
    /// requires `0 <= S < l`).
    // audit:allow(panic) chunks_exact(8) yields exactly 8-byte chunks, so the conversion is infallible
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Self> {
        let mut limbs = [0u64; 4];
        for (limb, chunk) in limbs.iter_mut().zip(bytes.chunks_exact(8)) {
            *limb = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if geq(&limbs, &L) {
            None
        } else {
            Some(Scalar(limbs))
        }
    }

    /// Canonical little-endian encoding.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (chunk, limb) in out.chunks_exact_mut(8).zip(self.0) {
            chunk.copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// `(self + rhs) mod l`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Scalar) -> Scalar {
        let mut limbs = [0u64; 4];
        let mut carry = 0u64;
        for (limb, (a, b)) in limbs.iter_mut().zip(self.0.iter().zip(&rhs.0)) {
            let (s1, c1) = a.overflowing_add(*b);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        debug_assert_eq!(carry, 0, "both inputs < l < 2^253, no overflow");
        if geq(&limbs, &L) {
            sub_in_place(&mut limbs, &L);
        }
        Scalar(limbs)
    }

    /// `(self * rhs) mod l`.
    #[allow(clippy::should_implement_trait)]
    // audit:allow(panic) product indices i + j stay below 8 for i, j in 0..4
    pub fn mul(self, rhs: Scalar) -> Scalar {
        let mut wide = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let acc = wide[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                wide[i + j] = acc as u64;
                carry = acc >> 64;
            }
            wide[i + 4] = carry as u64;
        }
        Self::reduce_wide(wide)
    }

    /// Reduces eight little-endian limbs (512 bits) modulo `l` by binary long
    /// division: fold one bit at a time from the most significant end.
    // audit:allow(panic) limb index runs over 0..8 into [u64; 8]
    fn reduce_wide(limbs: [u64; 8]) -> Scalar {
        let mut r = [0u64; 4];
        for i in (0..8).rev() {
            for bit in (0..64).rev() {
                // r = 2r + bit.
                let mut carry = (limbs[i] >> bit) & 1;
                for limb in r.iter_mut() {
                    let shifted = (*limb << 1) | carry;
                    carry = *limb >> 63;
                    *limb = shifted;
                }
                debug_assert_eq!(carry, 0, "r < l keeps bit 255 clear");
                if geq(&r, &L) {
                    sub_in_place(&mut r, &L);
                }
            }
        }
        Scalar(r)
    }

    /// True for the zero scalar.
    pub fn is_zero(self) -> bool {
        self.0 == [0u64; 4]
    }

    /// Returns the `i`-th bit (little-endian) of the scalar; bits at or
    /// beyond 256 read as zero.
    pub fn bit(&self, i: usize) -> bool {
        let limb = self.0.get(i / 64).copied().unwrap_or(0);
        (limb >> (i % 64)) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_u64(v: u64) -> Scalar {
        Scalar([v, 0, 0, 0])
    }

    #[test]
    fn l_reduces_to_zero() {
        let mut bytes = [0u8; 32];
        for (chunk, limb) in bytes.chunks_exact_mut(8).zip(L) {
            chunk.copy_from_slice(&limb.to_le_bytes());
        }
        assert!(Scalar::from_bytes_mod_order(&bytes).is_zero());
        assert!(Scalar::from_canonical_bytes(&bytes).is_none());
    }

    #[test]
    fn l_minus_one_is_canonical() {
        let mut limbs = L;
        limbs[0] -= 1;
        let mut bytes = [0u8; 32];
        for (chunk, limb) in bytes.chunks_exact_mut(8).zip(limbs) {
            chunk.copy_from_slice(&limb.to_le_bytes());
        }
        let s = Scalar::from_canonical_bytes(&bytes).expect("l-1 is canonical");
        assert_eq!(s.add(Scalar::ONE), Scalar::ZERO);
    }

    #[test]
    fn small_multiplication() {
        assert_eq!(from_u64(6).mul(from_u64(7)), from_u64(42));
    }

    #[test]
    fn wide_reduction_matches_modular_identity() {
        // (2^256) mod l computed two ways: via from_bytes_wide and via
        // repeated doubling of 1.
        let mut wide = [0u8; 64];
        wide[32] = 1; // 2^256
        let direct = Scalar::from_bytes_wide(&wide);
        let mut doubled = Scalar::ONE;
        for _ in 0..256 {
            doubled = doubled.add(doubled);
        }
        assert_eq!(direct, doubled);
    }

    #[test]
    fn addition_wraps_mod_l() {
        let mut l_minus_2 = L;
        l_minus_2[0] -= 2;
        let a = Scalar(l_minus_2);
        assert_eq!(a.add(from_u64(5)), from_u64(3));
    }

    #[test]
    fn mul_distributes_over_add() {
        let a = Scalar::from_bytes_mod_order(&[7u8; 32]);
        let b = Scalar::from_bytes_mod_order(&[13u8; 32]);
        let c = Scalar::from_bytes_mod_order(&[42u8; 32]);
        assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    }

    #[test]
    fn bit_accessor_matches_encoding() {
        let s = from_u64(0b1011);
        assert!(s.bit(0));
        assert!(s.bit(1));
        assert!(!s.bit(2));
        assert!(s.bit(3));
        assert!(!s.bit(200));
    }
}
