//! The 32-byte digest type shared by every authenticated data structure, plus
//! helpers for hashing heterogeneous field concatenations.
//!
//! The paper defines all ADS digests as SHA3-256 over `|`-concatenated
//! fields, e.g. `h_N = h(l_N | h_left | h_right)` (Def. 2). Concatenating
//! variable-length fields naively is ambiguous (`"ab"|"c"` vs `"a"|"bc"`), so
//! [`DigestBuilder`] length-prefixes every variable-length field. Both the SP
//! and the client build digests through the same API, so the encoding is an
//! internal detail that never leaks into the protocol.

use crate::sha3::Sha3_256;
use std::fmt;

/// A SHA3-256 digest.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as the chain terminator for the last posting
    /// of a Merkle inverted list (Def. 4 leaves `h_{pos_{c_i, n+1}}`
    /// unspecified; a fixed terminator makes list length non-malleable).
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Hashes a single byte string.
    pub fn of(data: &[u8]) -> Self {
        Digest(Sha3_256::digest(data))
    }

    /// Shorthand for a builder.
    pub fn builder() -> DigestBuilder {
        DigestBuilder::new()
    }

    /// Hex rendering for logs and examples.
    pub fn to_hex(self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", &self.to_hex()[..12])
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Builds a digest over a sequence of typed fields with unambiguous framing.
pub struct DigestBuilder {
    hasher: Sha3_256,
}

impl Default for DigestBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DigestBuilder {
    pub fn new() -> Self {
        DigestBuilder {
            hasher: Sha3_256::new(),
        }
    }

    /// Appends a variable-length byte field, length-prefixed.
    pub fn bytes(mut self, data: &[u8]) -> Self {
        self.hasher.update(&(data.len() as u64).to_le_bytes());
        self.hasher.update(data);
        self
    }

    /// Appends a fixed-width digest field.
    pub fn digest(mut self, d: &Digest) -> Self {
        self.hasher.update(&d.0);
        self
    }

    /// Appends a `u64` field.
    pub fn u64(mut self, v: u64) -> Self {
        self.hasher.update(&v.to_le_bytes());
        self
    }

    /// Appends a `u32` field.
    pub fn u32(mut self, v: u32) -> Self {
        self.hasher.update(&v.to_le_bytes());
        self
    }

    /// Appends an `f32` field by its IEEE-754 bit pattern.
    ///
    /// Impact values and cluster weights are `f32`s computed identically by
    /// owner and client, so bit-pattern hashing is deterministic.
    pub fn f32(mut self, v: f32) -> Self {
        self.hasher.update(&v.to_bits().to_le_bytes());
        self
    }

    /// Appends an `f64` field by its bit pattern.
    pub fn f64(mut self, v: f64) -> Self {
        self.hasher.update(&v.to_bits().to_le_bytes());
        self
    }

    /// Appends a slice of `f32`s (e.g. a splitting hyperplane or cluster
    /// centroid), length-prefixed.
    pub fn f32_slice(mut self, vs: &[f32]) -> Self {
        self.hasher.update(&(vs.len() as u64).to_le_bytes());
        for v in vs {
            self.hasher.update(&v.to_bits().to_le_bytes());
        }
        self
    }

    /// Finishes and returns the digest.
    pub fn finish(self) -> Digest {
        Digest(self.hasher.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_is_deterministic() {
        let a = Digest::builder().u64(7).bytes(b"abc").finish();
        let b = Digest::builder().u64(7).bytes(b"abc").finish();
        assert_eq!(a, b);
    }

    #[test]
    fn field_framing_disambiguates_concatenation() {
        let a = Digest::builder().bytes(b"ab").bytes(b"c").finish();
        let b = Digest::builder().bytes(b"a").bytes(b"bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn field_order_matters() {
        let a = Digest::builder().u64(1).u64(2).finish();
        let b = Digest::builder().u64(2).u64(1).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn f32_hashing_uses_bit_patterns() {
        // 0.0 and -0.0 compare equal as floats but have distinct encodings;
        // the digest must distinguish them to be collision-free.
        let a = Digest::builder().f32(0.0).finish();
        let b = Digest::builder().f32(-0.0).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn of_matches_plain_sha3() {
        assert_eq!(Digest::of(b"abc").0, crate::sha3::Sha3_256::digest(b"abc"));
    }

    #[test]
    fn hex_rendering_is_64_chars() {
        assert_eq!(Digest::of(b"x").to_hex().len(), 64);
    }
}
