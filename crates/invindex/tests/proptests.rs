//! Property-based tests for authenticated top-k search: for arbitrary small
//! corpora and queries, (i) the authenticated search returns exactly the
//! exhaustive top-k, (ii) the honest VO verifies, and (iii) the grouped
//! variant agrees with the plain one.

use imageproof_akm::bovw::{impacts_with_weights, ImpactModel, SparseBovw};
use imageproof_crypto::Digest;
use imageproof_invindex::grouped::{grouped_search, verify_grouped_topk, GroupedInvertedIndex};
use imageproof_invindex::{
    exhaustive_topk, inv_search, verify_topk, BoundsMode, MerkleInvertedIndex,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

const N_CLUSTERS: usize = 12;

/// An arbitrary tiny corpus: each image gets 1..5 (cluster, frequency)
/// pairs.
fn corpus_strategy() -> impl Strategy<Value = Vec<(u64, SparseBovw)>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..N_CLUSTERS as u32, 1u32..4), 1..5),
        1..40,
    )
    .prop_map(|images| {
        images
            .into_iter()
            .enumerate()
            .map(|(id, pairs)| (id as u64, SparseBovw::from_counts(pairs)))
            .collect()
    })
}

fn query_strategy() -> impl Strategy<Value = SparseBovw> {
    proptest::collection::vec((0u32..N_CLUSTERS as u32, 1u32..3), 1..5)
        .prop_map(SparseBovw::from_counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn authenticated_search_is_exact_and_verifiable(
        images in corpus_strategy(),
        query in query_strategy(),
        k in 1usize..8,
    ) {
        let encodings: Vec<SparseBovw> = images.iter().map(|(_, b)| b.clone()).collect();
        let model = ImpactModel::build(N_CLUSTERS, &encodings);
        let index = MerkleInvertedIndex::build(N_CLUSTERS, &images, &model);
        let digests: BTreeMap<u32, Digest> =
            index.lists().iter().map(|l| (l.cluster, l.digest)).collect();

        let impacts = impacts_with_weights(&query, |c| index.list(c).weight);
        let oracle = exhaustive_topk(&index, &impacts, k);

        for mode in [BoundsMode::CuckooFiltered, BoundsMode::MaxBound] {
            let out = inv_search(&index, &query, k, mode);
            prop_assert_eq!(&out.topk, &oracle);
            let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
            let verified = verify_topk(&out.vo, &query, &digests, &claimed, k, mode);
            prop_assert!(verified.is_ok(), "mode {:?}: {:?}", mode, verified.err());
        }
    }

    #[test]
    fn grouped_search_agrees_and_verifies(
        images in corpus_strategy(),
        query in query_strategy(),
        k in 1usize..6,
    ) {
        let encodings: Vec<SparseBovw> = images.iter().map(|(_, b)| b.clone()).collect();
        let model = ImpactModel::build(N_CLUSTERS, &encodings);
        let plain = MerkleInvertedIndex::build(N_CLUSTERS, &images, &model);
        let grouped = GroupedInvertedIndex::build(N_CLUSTERS, &images, &model);

        let impacts = impacts_with_weights(&query, |c| plain.list(c).weight);
        let plain_set: std::collections::BTreeSet<u64> =
            exhaustive_topk(&plain, &impacts, k).iter().map(|&(i, _)| i).collect();

        let out = grouped_search(&grouped, &query, k);
        let grouped_set: std::collections::BTreeSet<u64> =
            out.topk.iter().map(|&(i, _)| i).collect();
        // Sets agree except for float-rounding ties; sizes always agree.
        prop_assert_eq!(plain_set.len(), grouped_set.len());

        let digests: BTreeMap<u32, Digest> =
            grouped.lists().iter().map(|l| (l.cluster, l.digest)).collect();
        let claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
        let verified = verify_grouped_topk(&out.vo, &query, &digests, &claimed, k);
        prop_assert!(verified.is_ok(), "{:?}", verified.err());
    }

    /// A forged winner set (swapping in any non-winner) never verifies.
    #[test]
    fn forged_winner_never_verifies(
        images in corpus_strategy(),
        query in query_strategy(),
    ) {
        let encodings: Vec<SparseBovw> = images.iter().map(|(_, b)| b.clone()).collect();
        let model = ImpactModel::build(N_CLUSTERS, &encodings);
        let index = MerkleInvertedIndex::build(N_CLUSTERS, &images, &model);
        let digests: BTreeMap<u32, Digest> =
            index.lists().iter().map(|l| (l.cluster, l.digest)).collect();

        let k = 2;
        let out = inv_search(&index, &query, k, BoundsMode::CuckooFiltered);
        prop_assume!(out.topk.len() == k);
        let mut claimed: Vec<u64> = out.topk.iter().map(|&(i, _)| i).collect();
        // Find a non-winner whose score is strictly below the winner's —
        // swapping it in must be rejected.
        let impacts = impacts_with_weights(&query, |c| index.list(c).weight);
        let all = exhaustive_topk(&index, &impacts, usize::MAX);
        let kth_score = out.topk.last().map(|&(_, s)| s).unwrap_or(0.0);
        let strictly_worse = all.iter().find(|&&(i, s)| !claimed.contains(&i) && s < kth_score);
        prop_assume!(strictly_worse.is_some());
        claimed[0] = strictly_worse.expect("checked").0;
        let verified = verify_topk(&out.vo, &query, &digests, &claimed, k, BoundsMode::CuckooFiltered);
        prop_assert!(verified.is_err(), "forged set verified");
    }
}
