//! Verification-object types for authenticated inverted-index search
//! (`InvSearch`, paper Alg. 4) and their canonical wire encoding.

use imageproof_crypto::wire::{Decode, Encode, Reader, WireError, Writer};
use imageproof_crypto::Digest;

/// The undisclosed remainder of one posting list.
#[derive(Clone, Debug, PartialEq)]
pub enum RemainingVo {
    /// Every posting was popped (or the list was empty): only the filter
    /// digest is needed to rebuild `h_Γ` (Alg. 4 line 8).
    Exhausted { filter_digest: Digest },
    /// A suffix remains: the digest of its first posting re-seals the chain
    /// (Alg. 4 line 10), and — in the cuckoo-filtered scheme — the filter
    /// itself travels so the client can reproduce the bounds
    /// (Alg. 4 line 11). The Baseline scheme sends the digest instead.
    Partial {
        next_digest: Digest,
        filter: FilterVo,
    },
}

/// How the cuckoo filter of a partially-popped list is conveyed.
#[derive(Clone, Debug, PartialEq)]
pub enum FilterVo {
    /// Canonical filter bytes (ImageProof / Optimized schemes).
    Bytes(Vec<u8>),
    /// Digest only (Baseline: bounds don't use the filter, but `h_Γ`
    /// reconstruction still needs `h(Θ)`).
    DigestOnly(Digest),
}

/// One relevant posting list's share of the VO (Alg. 4 lines 2–11).
#[derive(Clone, Debug, PartialEq)]
pub struct ListVo {
    pub cluster: u32,
    /// `w_c`, needed by the client to compute `p_Q` (Alg. 4 line 3).
    pub weight: f32,
    /// The popped prefix, in list order.
    pub popped: Vec<(u64, f32)>,
    pub remaining: RemainingVo,
}

/// The complete inverted-index VO (`VO_inv`): one entry per query-relevant
/// cluster, ascending.
#[derive(Clone, Debug, PartialEq)]
pub struct InvVo {
    pub lists: Vec<ListVo>,
}

impl InvVo {
    /// Total popped postings disclosed (numerator of "% popped postings").
    pub fn popped_postings(&self) -> usize {
        self.lists.iter().map(|l| l.popped.len()).sum()
    }
}

const TAG_EXHAUSTED: u8 = 0;
const TAG_PARTIAL_BYTES: u8 = 1;
const TAG_PARTIAL_DIGEST: u8 = 2;

impl Encode for ListVo {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.cluster);
        w.f32(self.weight);
        w.seq_len(self.popped.len());
        for &(image, impact) in &self.popped {
            w.varint(image);
            w.f32(impact);
        }
        match &self.remaining {
            RemainingVo::Exhausted { filter_digest } => {
                w.u8(TAG_EXHAUSTED);
                w.digest(filter_digest);
            }
            RemainingVo::Partial {
                next_digest,
                filter: FilterVo::Bytes(bytes),
            } => {
                w.u8(TAG_PARTIAL_BYTES);
                w.digest(next_digest);
                w.bytes(bytes);
            }
            RemainingVo::Partial {
                next_digest,
                filter: FilterVo::DigestOnly(d),
            } => {
                w.u8(TAG_PARTIAL_DIGEST);
                w.digest(next_digest);
                w.digest(d);
            }
        }
    }
}

impl Decode for ListVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let cluster = r.u32()?;
        let weight = r.f32()?;
        let n = r.seq_len()?;
        let mut popped = Vec::with_capacity(n);
        for _ in 0..n {
            let image = r.varint()?;
            let impact = r.f32()?;
            popped.push((image, impact));
        }
        let remaining = match r.u8()? {
            TAG_EXHAUSTED => RemainingVo::Exhausted {
                filter_digest: r.digest()?,
            },
            TAG_PARTIAL_BYTES => RemainingVo::Partial {
                next_digest: r.digest()?,
                filter: FilterVo::Bytes(r.bytes()?),
            },
            TAG_PARTIAL_DIGEST => RemainingVo::Partial {
                next_digest: r.digest()?,
                filter: FilterVo::DigestOnly(r.digest()?),
            },
            t => return Err(WireError::InvalidTag(t)),
        };
        Ok(ListVo {
            cluster,
            weight,
            popped,
            remaining,
        })
    }
}

impl Encode for InvVo {
    fn encode(&self, w: &mut Writer) {
        w.seq_len(self.lists.len());
        for l in &self.lists {
            l.encode(w);
        }
    }
}

impl Decode for InvVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len()?;
        let mut lists = Vec::with_capacity(n);
        for _ in 0..n {
            lists.push(ListVo::decode(r)?);
        }
        Ok(InvVo { lists })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inv_vo_round_trips() {
        let vo = InvVo {
            lists: vec![
                ListVo {
                    cluster: 5,
                    weight: 2.5,
                    popped: vec![(1, 0.34), (3, 0.26)],
                    remaining: RemainingVo::Partial {
                        next_digest: Digest::of(b"next"),
                        filter: FilterVo::Bytes(vec![1, 2, 3, 4]),
                    },
                },
                ListVo {
                    cluster: 6,
                    weight: 1.5,
                    popped: vec![],
                    remaining: RemainingVo::Exhausted {
                        filter_digest: Digest::of(b"filter"),
                    },
                },
                ListVo {
                    cluster: 9,
                    weight: 0.5,
                    popped: vec![(42, 0.1)],
                    remaining: RemainingVo::Partial {
                        next_digest: Digest::of(b"next2"),
                        filter: FilterVo::DigestOnly(Digest::of(b"fd")),
                    },
                },
            ],
        };
        let bytes = vo.to_wire();
        assert_eq!(InvVo::from_wire(&bytes).expect("round trip"), vo);
        assert_eq!(vo.popped_postings(), 3);
    }

    #[test]
    fn malformed_tag_is_rejected() {
        let vo = InvVo {
            lists: vec![ListVo {
                cluster: 1,
                weight: 1.0,
                popped: vec![],
                remaining: RemainingVo::Exhausted {
                    filter_digest: Digest::of(b"x"),
                },
            }],
        };
        let mut bytes = vo.to_wire();
        // The remaining-tag byte sits after the seq_len + cluster + weight +
        // empty postings; flip it to an invalid value.
        let tag_pos = 4 + 4 + 4 + 4;
        bytes[tag_pos] = 9;
        assert!(InvVo::from_wire(&bytes).is_err());
    }
}
