//! Verification-object types for authenticated inverted-index search
//! (`InvSearch`, paper Alg. 4) and their canonical wire encoding.
//!
//! With block-max posting lists, a partially-scanned list is proven by a
//! *skip proof*: the fence block's `(max_impact, digest)` pair. One digest
//! covers every unscanned block, and the bound is committed one level up
//! (by the last popped block's digest, or the list head when nothing was
//! popped), so the client both re-seals `h_Γ` and checks no skipped
//! posting could have entered the top-k — for four extra bytes over the
//! old per-posting seal.

use imageproof_crypto::wire::{Decode, Encode, Reader, WireError, Writer};
use imageproof_crypto::Digest;

/// The undisclosed remainder of one posting list.
#[derive(Clone, Debug, PartialEq)]
pub enum RemainingVo {
    /// Every posting was popped (or the list was empty): only the filter
    /// digest is needed to rebuild `h_Γ` (Alg. 4 line 8).
    Exhausted { filter_digest: Digest },
    /// Whole blocks remain unscanned. The fence block (the first unscanned
    /// one) travels as its `(max_impact, digest)` pair: the client folds
    /// the pair under the popped prefix to re-seal `h_Γ` — each popped
    /// block's digest commits its successor's pair, so a forged bound or
    /// digest breaks the fold — and uses `max_impact` as the authenticated
    /// cap on every skipped posting. In the cuckoo-filtered schemes the
    /// filter itself travels so the client can reproduce the bounds
    /// (Alg. 4 line 11); the Baseline scheme sends its digest instead.
    Skipped {
        /// The fence block's bound: no skipped posting exceeds it, and it
        /// is committed by the preceding block digest (or the list head)
        /// so it cannot be forged.
        max_impact: f32,
        /// The fence block's digest — covers every unscanned block.
        fence_digest: Digest,
        filter: FilterVo,
    },
}

/// How the cuckoo filter of a partially-popped list is conveyed.
#[derive(Clone, Debug, PartialEq)]
pub enum FilterVo {
    /// Canonical filter bytes (ImageProof / Optimized schemes).
    Bytes(Vec<u8>),
    /// Digest only (Baseline: bounds don't use the filter, but `h_Γ`
    /// reconstruction still needs `h(Θ)`).
    DigestOnly(Digest),
}

/// One relevant posting list's share of the VO (Alg. 4 lines 2–11).
#[derive(Clone, Debug, PartialEq)]
pub struct ListVo {
    pub cluster: u32,
    /// `w_c`, needed by the client to compute `p_Q` (Alg. 4 line 3).
    pub weight: f32,
    /// The popped prefix, in list order — always a whole number of blocks
    /// when followed by a skip proof.
    pub popped: Vec<(u64, f32)>,
    pub remaining: RemainingVo,
}

/// The complete inverted-index VO (`VO_inv`): one entry per query-relevant
/// cluster, ascending.
#[derive(Clone, Debug, PartialEq)]
pub struct InvVo {
    pub lists: Vec<ListVo>,
}

impl InvVo {
    /// Total popped postings disclosed (numerator of "% popped postings").
    pub fn popped_postings(&self) -> usize {
        self.lists.iter().map(|l| l.popped.len()).sum()
    }
}

const TAG_EXHAUSTED: u8 = 0;
const TAG_SKIPPED_BYTES: u8 = 1;
const TAG_SKIPPED_DIGEST: u8 = 2;

impl Encode for RemainingVo {
    fn encode(&self, w: &mut Writer) {
        match self {
            RemainingVo::Exhausted { filter_digest } => {
                w.u8(TAG_EXHAUSTED);
                w.digest(filter_digest);
            }
            RemainingVo::Skipped {
                max_impact,
                fence_digest,
                filter: FilterVo::Bytes(bytes),
            } => {
                w.u8(TAG_SKIPPED_BYTES);
                w.f32(*max_impact);
                w.digest(fence_digest);
                w.vbytes(bytes);
            }
            RemainingVo::Skipped {
                max_impact,
                fence_digest,
                filter: FilterVo::DigestOnly(d),
            } => {
                w.u8(TAG_SKIPPED_DIGEST);
                w.f32(*max_impact);
                w.digest(fence_digest);
                w.digest(d);
            }
        }
    }
}

impl Decode for RemainingVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            TAG_EXHAUSTED => RemainingVo::Exhausted {
                filter_digest: r.digest()?,
            },
            TAG_SKIPPED_BYTES => RemainingVo::Skipped {
                max_impact: r.f32()?,
                fence_digest: r.digest()?,
                filter: FilterVo::Bytes(r.vbytes()?),
            },
            TAG_SKIPPED_DIGEST => RemainingVo::Skipped {
                max_impact: r.f32()?,
                fence_digest: r.digest()?,
                filter: FilterVo::DigestOnly(r.digest()?),
            },
            t => return Err(WireError::InvalidTag(t)),
        })
    }
}

impl Encode for ListVo {
    fn encode(&self, w: &mut Writer) {
        w.varint(self.cluster as u64);
        w.f32(self.weight);
        w.vseq_len(self.popped.len());
        for &(image, impact) in &self.popped {
            w.varint(image);
            w.f32(impact);
        }
        self.remaining.encode(w);
    }
}

impl Decode for ListVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let cluster = u32::try_from(r.varint()?).map_err(|_| WireError::LengthOverflow)?;
        let weight = r.f32()?;
        let n = r.vseq_len()?;
        let mut popped = Vec::with_capacity(n);
        for _ in 0..n {
            let image = r.varint()?;
            let impact = r.f32()?;
            popped.push((image, impact));
        }
        let remaining = RemainingVo::decode(r)?;
        Ok(ListVo {
            cluster,
            weight,
            popped,
            remaining,
        })
    }
}

impl Encode for InvVo {
    fn encode(&self, w: &mut Writer) {
        w.vseq_len(self.lists.len());
        for l in &self.lists {
            l.encode(w);
        }
    }
}

impl Decode for InvVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.vseq_len()?;
        let mut lists = Vec::with_capacity(n);
        for _ in 0..n {
            lists.push(ListVo::decode(r)?);
        }
        Ok(InvVo { lists })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_vo_round_trips() {
        let arms = [
            RemainingVo::Exhausted {
                filter_digest: Digest::of(b"filter"),
            },
            RemainingVo::Skipped {
                max_impact: 0.25,
                fence_digest: Digest::of(b"fence"),
                filter: FilterVo::Bytes(vec![7, 8, 9]),
            },
            RemainingVo::Skipped {
                max_impact: 0.5,
                fence_digest: Digest::of(b"fence2"),
                filter: FilterVo::DigestOnly(Digest::of(b"fd")),
            },
        ];
        for arm in arms {
            let bytes = arm.to_wire();
            assert_eq!(RemainingVo::from_wire(&bytes).expect("round trip"), arm);
        }
    }

    #[test]
    fn inv_vo_round_trips() {
        let vo = InvVo {
            lists: vec![
                ListVo {
                    cluster: 5,
                    weight: 2.5,
                    popped: vec![(1, 0.34), (3, 0.26)],
                    remaining: RemainingVo::Skipped {
                        max_impact: 0.2,
                        fence_digest: Digest::of(b"fence"),
                        filter: FilterVo::Bytes(vec![1, 2, 3, 4]),
                    },
                },
                ListVo {
                    cluster: 6,
                    weight: 1.5,
                    popped: vec![],
                    remaining: RemainingVo::Exhausted {
                        filter_digest: Digest::of(b"filter"),
                    },
                },
                ListVo {
                    cluster: 9,
                    weight: 0.5,
                    popped: vec![(42, 0.1)],
                    remaining: RemainingVo::Skipped {
                        max_impact: 0.05,
                        fence_digest: Digest::of(b"fence2"),
                        filter: FilterVo::DigestOnly(Digest::of(b"fd")),
                    },
                },
            ],
        };
        let bytes = vo.to_wire();
        assert_eq!(InvVo::from_wire(&bytes).expect("round trip"), vo);
        assert_eq!(vo.popped_postings(), 3);
    }

    #[test]
    fn malformed_tag_is_rejected() {
        let vo = InvVo {
            lists: vec![ListVo {
                cluster: 1,
                weight: 1.0,
                popped: vec![],
                remaining: RemainingVo::Exhausted {
                    filter_digest: Digest::of(b"x"),
                },
            }],
        };
        let mut bytes = vo.to_wire();
        // The remaining-tag byte sits after the varint list count (1), the
        // varint cluster (1), the f32 weight (4), and the varint popped
        // count (1); flip it to an invalid value.
        let tag_pos = 1 + 1 + 4 + 1;
        bytes[tag_pos] = 9;
        assert!(InvVo::from_wire(&bytes).is_err());
    }
}
