//! # imageproof-invindex
//!
//! The Merkle inverted index with cuckoo filters — ImageProof's second
//! authenticated data structure (paper §IV-B) — together with the
//! authenticated top-k search and verification algorithms:
//!
//! * [`merkle`] — the impact-ordered Merkle inverted index (Defs. 4–5):
//!   hash-chained postings in block-max blocks, weights, and per-list
//!   cuckoo filters.
//! * [`bounds`] — the termination-condition bounds (Eqs. 9–12, Alg. 2),
//!   computed identically by SP and client.
//! * [`search`] — `PostingSearch`/`InvSearch` (Algs. 3–4) and the §VII
//!   Baseline with maximal bounds (\[15\]).
//! * [`verify`] — client-side verification of the top-k result.
//! * [`grouped`] — the frequency-grouped Merkle inverted index with d-gap
//!   compression (§VI-B optimization, Defs. 6–7).
//! * [`vo`] — VO types and their canonical wire encoding.
//! * [`space`] — per-structure byte accounting for index footprint
//!   benchmarks.

pub mod bounds;
pub mod grouped;
pub mod merkle;
pub mod search;
pub mod space;
pub mod verify;
pub mod vo;

pub use bounds::BoundsMode;
pub use merkle::{
    block_digest, BlockSummary, MerkleInvertedIndex, MerkleList, Posting, BLOCK_SIZE,
};
pub use search::{
    exhaustive_topk, inv_search, inv_search_with_tuning, InvSearchResult, InvSearchStats,
    SearchTuning,
};
pub use space::SpaceUsage;
pub use verify::{verify_topk, InvVerifyError, VerifiedTopk};
pub use vo::{FilterVo, InvVo, ListVo, RemainingVo};
