//! The impact-ordered Merkle inverted index with cuckoo filters
//! (paper §IV-B1, Defs. 4–5).
//!
//! Every cluster `c` has a Merkle inverted list `Γ_c` holding its postings
//! `⟨image, impact⟩` in descending impact order. Posting digests form a
//! hash chain from the tail forward (Def. 4), so revealing a *prefix* plus
//! the digest of the first unrevealed posting authenticates exactly that
//! prefix. The list digest (Def. 5) additionally binds the cluster weight
//! and the digest of a cuckoo filter seeded with the list's image ids.
//!
//! All filters share one bucket geometry, sized from the longest list — the
//! property `MaxCount` (Alg. 2) relies on.

use imageproof_akm::bovw::{impact_value, ImpactModel, SparseBovw};
use imageproof_crypto::Digest;
use imageproof_cuckoo::CuckooFilter;
use imageproof_parallel::{try_par_map, Concurrency};

/// One `⟨image, impact⟩` posting.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Posting {
    pub image: u64,
    pub impact: f32,
}

/// Digest of a posting given the digest of its successor (Def. 4).
pub fn posting_digest(posting: &Posting, next: &Digest) -> Digest {
    Digest::builder()
        .u64(posting.image)
        .f32(posting.impact)
        .digest(next)
        .finish()
}

/// Digest of a whole list (Def. 5): `h(w | h(Θ) | h_{pos_1})`. The chain of
/// an empty list terminates at [`Digest::ZERO`].
pub fn list_digest(weight: f32, filter_digest: &Digest, first_posting: &Digest) -> Digest {
    Digest::builder()
        .f32(weight)
        .digest(filter_digest)
        .digest(first_posting)
        .finish()
}

/// A cluster's Merkle inverted list.
#[derive(Clone, Debug)]
pub struct MerkleList {
    pub cluster: u32,
    /// `w_c` (Eq. 1); zero for clusters no image maps to.
    pub weight: f32,
    /// Postings in descending impact order (ties: ascending image id).
    pub postings: Vec<Posting>,
    /// `chain[j]` = digest of posting `j` (covering postings `j..`);
    /// `chain.len() == postings.len()`.
    chain: Vec<Digest>,
    /// Filter seeded with every image id in `postings`.
    pub filter: CuckooFilter,
    /// `h_{Γ_c}` (Def. 5).
    pub digest: Digest,
    /// Build-time memo of `h(Θ)` (the filter digest), so query-time VO
    /// assembly copies 32 bytes instead of re-running Keccak over the
    /// filter table. `None` after [`MerkleList::clear_filter_cache`].
    filter_commit: Option<Digest>,
}

impl MerkleList {
    /// Builds a list from unsorted postings.
    ///
    /// # Panics
    /// Panics if the filter geometry cannot hold the postings; index-level
    /// builders use [`MerkleList::try_build`] and retry with more buckets.
    pub fn build(cluster: u32, weight: f32, postings: Vec<Posting>, n_buckets: usize) -> Self {
        Self::try_build(cluster, weight, postings, n_buckets)
            .expect("filter geometry sized for the longest list")
    }

    /// Fallible variant of [`MerkleList::build`]: fails when the cuckoo
    /// filter's displacement chains cannot place every image id.
    pub fn try_build(
        cluster: u32,
        weight: f32,
        mut postings: Vec<Posting>,
        n_buckets: usize,
    ) -> Result<Self, imageproof_cuckoo::FilterFull> {
        postings.sort_by(|a, b| {
            b.impact
                .total_cmp(&a.impact)
                .then_with(|| a.image.cmp(&b.image))
        });
        let mut filter = CuckooFilter::with_buckets(n_buckets);
        for p in &postings {
            filter.insert(p.image)?;
        }
        let mut chain = vec![Digest::ZERO; postings.len()];
        let mut next = Digest::ZERO;
        for j in (0..postings.len()).rev() {
            next = posting_digest(&postings[j], &next);
            chain[j] = next;
        }
        let filter_commit = filter.digest();
        let digest = list_digest(weight, &filter_commit, &next);
        Ok(MerkleList {
            cluster,
            weight,
            postings,
            chain,
            filter,
            digest,
            filter_commit: Some(filter_commit),
        })
    }

    /// `h(Θ)` from the build-time memo when present, recomputed otherwise.
    /// The flag reports which path was taken (feeds the SP's
    /// `hashes_cached`/`hashes_computed` counters).
    pub fn filter_digest_cached(&self) -> (Digest, bool) {
        match self.filter_commit {
            Some(d) => (d, true),
            None => (self.filter.digest(), false),
        }
    }

    /// Drops the build-time `h(Θ)` memo so subsequent queries recompute it —
    /// the reference path the equivalence suite compares the memoized path
    /// against.
    pub fn clear_filter_cache(&mut self) {
        self.filter_commit = None;
    }

    /// Digest of posting `j` (the chain value covering `j..`), or
    /// [`Digest::ZERO`] past the end.
    pub fn chain_digest(&self, j: usize) -> Digest {
        self.chain.get(j).copied().unwrap_or(Digest::ZERO)
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// True when no image maps to this cluster.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }
}

/// The full index: one Merkle list per cluster (clusters with no images get
/// an empty list so the MRKD leaf digests have an `h_Γ` for every cluster).
#[derive(Clone, Debug)]
pub struct MerkleInvertedIndex {
    lists: Vec<MerkleList>,
    /// Shared filter geometry (power of two).
    n_buckets: usize,
}

impl MerkleInvertedIndex {
    /// Builds the index from every database image's BoVW encoding and the
    /// corpus impact model. `encodings[i]` must belong to image id `i`... or
    /// rather, `images[i]` pairs ids with encodings explicitly.
    pub fn build(
        n_clusters: usize,
        images: &[(u64, SparseBovw)],
        model: &ImpactModel,
    ) -> MerkleInvertedIndex {
        Self::build_with(n_clusters, images, model, Concurrency::serial())
    }

    /// [`MerkleInvertedIndex::build`] with the per-cluster list builds
    /// (sorting, cuckoo filter insertion, digest chaining) fanned out
    /// across workers.
    ///
    /// Each cluster's list is a pure function of its postings and the
    /// shared bucket count; lists are merged in cluster order, and the
    /// geometry-doubling retry triggers iff *any* cluster fails — the same
    /// condition the serial build reacts to — so the built index is
    /// identical for every thread count.
    pub fn build_with(
        n_clusters: usize,
        images: &[(u64, SparseBovw)],
        model: &ImpactModel,
        conc: Concurrency,
    ) -> MerkleInvertedIndex {
        // Group postings per cluster.
        let mut per_cluster: Vec<Vec<Posting>> = vec![Vec::new(); n_clusters];
        for (image, bovw) in images {
            let norm = bovw.norm();
            for (c, f) in bovw.iter() {
                per_cluster[c as usize].push(Posting {
                    image: *image,
                    impact: impact_value(model.weight(c), f, norm),
                });
            }
        }
        // Common filter geometry from the longest list (the paper sizes
        // filter capacity from the maximal posting-list length, §VII-A; a
        // common geometry is what Lemma 1 / `MaxCount` require). Start at
        // the standard ~95% cuckoo load factor and double on the rare
        // displacement-chain failure.
        let max_len = per_cluster.iter().map(Vec::len).max().unwrap_or(0);
        let mut n_buckets = imageproof_cuckoo::buckets_for_capacity(max_len);
        loop {
            let built: Result<Vec<MerkleList>, _> =
                try_par_map(conc, &per_cluster, |c, postings| {
                    MerkleList::try_build(
                        c as u32,
                        model.weight(c as u32),
                        postings.clone(),
                        n_buckets,
                    )
                });
            match built {
                Ok(lists) => return MerkleInvertedIndex { lists, n_buckets },
                Err(_) => n_buckets *= 2,
            }
        }
    }

    /// The list of one cluster.
    pub fn list(&self, cluster: u32) -> &MerkleList {
        &self.lists[cluster as usize]
    }

    /// All lists, ascending by cluster.
    pub fn lists(&self) -> &[MerkleList] {
        &self.lists
    }

    /// Shared cuckoo-filter bucket count.
    pub fn n_buckets(&self) -> usize {
        self.n_buckets
    }

    /// Per-cluster `h_Γ` digests, in cluster order — the vector the
    /// MRKD-tree build embeds into leaf digests.
    pub fn list_digests(&self) -> Vec<Digest> {
        self.lists.iter().map(|l| l.digest).collect()
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when the index has no clusters.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Total posting count across the given clusters (the denominator of the
    /// "% popped postings" metric).
    pub fn total_postings(&self, clusters: impl Iterator<Item = u32>) -> usize {
        clusters.map(|c| self.lists[c as usize].len()).sum()
    }

    /// Drops every list's `h(Θ)` memo (see
    /// [`MerkleList::clear_filter_cache`]).
    pub fn clear_filter_caches(&mut self) {
        for list in &mut self.lists {
            list.clear_filter_cache();
        }
    }

    /// Owner-side incremental update: rebuilds one cluster's list with new
    /// postings (keeping the frozen cluster weight and the common filter
    /// geometry) and returns the new `h_Γ`.
    ///
    /// Fails with [`imageproof_cuckoo::FilterFull`] when the new postings no
    /// longer fit the common geometry; callers should then rebuild the
    /// whole index (geometry is a global commitment, see `MaxCount`).
    pub fn replace_list(
        &mut self,
        cluster: u32,
        postings: Vec<Posting>,
    ) -> Result<Digest, imageproof_cuckoo::FilterFull> {
        let weight = self.lists[cluster as usize].weight;
        let list = MerkleList::try_build(cluster, weight, postings, self.n_buckets)?;
        let digest = list.digest;
        self.lists[cluster as usize] = list;
        Ok(digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_index() -> MerkleInvertedIndex {
        // Table II's toy corpus shape: a handful of images over 8 clusters.
        let images: Vec<(u64, SparseBovw)> = vec![
            (1, SparseBovw::from_counts([(5, 2), (0, 1)])),
            (3, SparseBovw::from_counts([(5, 1), (6, 1)])),
            (4, SparseBovw::from_counts([(5, 1), (6, 1), (2, 3)])),
            (5, SparseBovw::from_counts([(6, 2)])),
            (8, SparseBovw::from_counts([(6, 1), (0, 1)])),
        ];
        let encodings: Vec<SparseBovw> = images.iter().map(|(_, b)| b.clone()).collect();
        let model = ImpactModel::build(8, &encodings);
        MerkleInvertedIndex::build(8, &images, &model)
    }

    #[test]
    fn postings_are_impact_descending() {
        let idx = toy_index();
        for list in idx.lists() {
            for w in list.postings.windows(2) {
                assert!(w[0].impact >= w[1].impact, "cluster {}", list.cluster);
            }
        }
    }

    #[test]
    fn every_cluster_has_a_digest_even_when_empty() {
        let idx = toy_index();
        assert_eq!(idx.list_digests().len(), 8);
        let empty = idx.list(7);
        assert!(empty.is_empty());
        assert_eq!(
            empty.digest,
            list_digest(0.0, &empty.filter.digest(), &Digest::ZERO)
        );
    }

    #[test]
    fn chain_reconstructs_from_any_prefix() {
        let idx = toy_index();
        let list = idx.list(6);
        assert!(list.len() >= 3, "fixture should have a multi-posting list");
        for split in 0..=list.len() {
            // Reveal postings[..split]; reconstruct h_pos_1 from the prefix
            // and the digest of the first unrevealed posting.
            let mut h = list.chain_digest(split);
            for p in list.postings[..split].iter().rev() {
                h = posting_digest(p, &h);
            }
            let expected_first = list.chain_digest(0);
            assert_eq!(h, expected_first, "split {split}");
            let rebuilt = list_digest(list.weight, &list.filter.digest(), &h);
            assert_eq!(rebuilt, list.digest);
        }
    }

    #[test]
    fn filters_share_geometry_and_contain_their_images() {
        let idx = toy_index();
        for list in idx.lists() {
            assert_eq!(list.filter.n_buckets(), idx.n_buckets());
            for p in &list.postings {
                assert!(list.filter.contains(p.image));
            }
        }
    }

    #[test]
    fn tampering_a_posting_breaks_the_chain() {
        let idx = toy_index();
        let list = idx.list(6);
        let mut forged = list.postings.clone();
        forged[1].impact += 0.1;
        let mut h = Digest::ZERO;
        for p in forged.iter().rev() {
            h = posting_digest(p, &h);
        }
        assert_ne!(
            list_digest(list.weight, &list.filter.digest(), &h),
            list.digest
        );
    }

    #[test]
    fn impacts_match_the_model() {
        let images: Vec<(u64, SparseBovw)> = vec![
            (10, SparseBovw::from_counts([(0, 3), (1, 4)])),
            (11, SparseBovw::from_counts([(1, 1)])),
        ];
        let encodings: Vec<SparseBovw> = images.iter().map(|(_, b)| b.clone()).collect();
        let model = ImpactModel::build(2, &encodings);
        let idx = MerkleInvertedIndex::build(2, &images, &model);
        let list1 = idx.list(1);
        let p10 = list1
            .postings
            .iter()
            .find(|p| p.image == 10)
            .expect("image 10 in cluster 1");
        assert_eq!(p10.impact, model.impact(&encodings[0], 1));
    }

    #[test]
    fn filter_digest_memo_matches_recomputation() {
        let mut idx = toy_index();
        let memoized: Vec<Digest> = idx
            .lists()
            .iter()
            .map(|l| {
                let (d, cached) = l.filter_digest_cached();
                assert!(cached, "fresh build must serve from the memo");
                d
            })
            .collect();
        idx.clear_filter_caches();
        for (list, memo) in idx.lists().iter().zip(&memoized) {
            let (d, cached) = list.filter_digest_cached();
            assert!(!cached, "cleared cache must recompute");
            assert_eq!(d, *memo);
            assert_eq!(d, list.filter.digest());
        }
    }

    #[test]
    fn total_postings_counts_selected_clusters() {
        let idx = toy_index();
        let total: usize = idx.total_postings([5u32, 6].into_iter());
        assert_eq!(total, idx.list(5).len() + idx.list(6).len());
    }
}
