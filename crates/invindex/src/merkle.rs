//! The impact-ordered Merkle inverted index with cuckoo filters
//! (paper §IV-B1, Defs. 4–5), organized into block-max posting blocks.
//!
//! Every cluster `c` has a Merkle inverted list `Γ_c` holding its postings
//! `⟨image, impact⟩` in descending impact order, partitioned into
//! fixed-size blocks of [`BLOCK_SIZE`] postings (the last block may be
//! short). Inside a block, posting digests form a hash chain from the tail
//! forward (Def. 4) terminating at [`Digest::ZERO`] at the block boundary.
//! Each block is committed as
//! `h_b = H(chain_head_b ‖ max_impact_{b+1} ‖ h_{b+1})` — it commits its
//! own contents plus the *successor's* impact bound and digest (`0.0` /
//! [`Digest::ZERO`] past the end) — and the list digest (Def. 5) binds the
//! cluster weight, the digest of a cuckoo filter seeded with the list's
//! image ids, and the first block's `(max_impact, digest)` pair. Committing
//! each bound one level *up* is what keeps the skip proof at a single
//! digest: a popped block's own bound is just its first disclosed impact,
//! so only the fence block's `(max_impact, digest)` pair ever ships, and it
//! arrives already bound into the last popped block's digest (or the list
//! head when nothing was popped).
//!
//! Revealing a whole-block prefix plus that fence pair authenticates
//! exactly the prefix and proves every skipped posting's impact is
//! ≤ `max_impact` — the skip proof the SP's block-max search relies on.
//!
//! All filters share one bucket geometry, sized from the longest list — the
//! property `MaxCount` (Alg. 2) relies on.

use imageproof_akm::bovw::{impact_value, ImpactModel, SparseBovw};
use imageproof_crypto::Digest;
use imageproof_cuckoo::CuckooFilter;
use imageproof_parallel::{try_par_map, Concurrency};

/// Number of postings (or groups, for the grouped index) per block. Small
/// enough that quick-scale lists still span multiple blocks, large enough
/// that a skipped block saves meaningful VO bytes over shipping its
/// postings.
pub const BLOCK_SIZE: usize = 8;

/// Build-time summary of one posting block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockSummary {
    /// The block's first (hence largest) impact — the bound the SP's
    /// skip test and both sides' termination caps use.
    pub max_impact: f32,
    /// Head of the within-block posting hash chain (terminates at
    /// [`Digest::ZERO`] at the block boundary).
    pub chain_head: Digest,
    /// `h_b = H(chain_head ‖ max_impact_{b+1} ‖ h_{b+1})`: commits the
    /// block's contents and the successor's bound/digest pair — and so,
    /// transitively, every later block.
    pub digest: Digest,
}

/// Digest of one block given its successor's `(max_impact, digest)` pair
/// (`0.0` / ZERO for the last block). Binding the *successor's* bound here
/// makes the fence bound in a skip proof unforgeable — it is committed by
/// the last popped block's digest, which the client recomputes from
/// disclosed postings — while keeping the proof itself to one digest.
pub fn block_digest(chain_head: &Digest, next_max: f32, next: &Digest) -> Digest {
    Digest::builder()
        .digest(chain_head)
        .f32(next_max)
        .digest(next)
        .finish()
}

/// Folds per-block chains and block digests over `chunks` (an iterator of
/// equal-size chunks except possibly the last), given each chunk's
/// within-chunk digest fold. Shared by the plain and grouped builders.
pub(crate) fn build_block_summaries<T>(
    items: &[T],
    fold_chain: impl Fn(&[T]) -> Digest,
    max_of: impl Fn(&[T]) -> f32,
) -> Vec<BlockSummary> {
    let mut blocks: Vec<BlockSummary> = items
        .chunks(BLOCK_SIZE)
        .map(|chunk| BlockSummary {
            max_impact: max_of(chunk),
            chain_head: fold_chain(chunk),
            digest: Digest::ZERO,
        })
        .collect();
    let (mut next_max, mut next) = (0.0f32, Digest::ZERO);
    for b in blocks.iter_mut().rev() {
        b.digest = block_digest(&b.chain_head, next_max, &next);
        next_max = b.max_impact;
        next = b.digest;
    }
    blocks
}

/// One `⟨image, impact⟩` posting.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Posting {
    pub image: u64,
    pub impact: f32,
}

/// Digest of a posting given the digest of its successor (Def. 4).
pub fn posting_digest(posting: &Posting, next: &Digest) -> Digest {
    Digest::builder()
        .u64(posting.image)
        .f32(posting.impact)
        .digest(next)
        .finish()
}

/// Digest of a whole list (Def. 5, blocked):
/// `h(w | h(Θ) | max_{blk_1} | h_{blk_1})`, where the trailing pair is the
/// first block's bound and digest — `0.0` / [`Digest::ZERO`] for an empty
/// list. Binding `max_{blk_1}` here closes the chain of successor-bound
/// commitments at the head, so an all-skipped list's fence bound is still
/// authenticated.
pub fn list_digest(
    weight: f32,
    filter_digest: &Digest,
    first_max: f32,
    first_block: &Digest,
) -> Digest {
    Digest::builder()
        .f32(weight)
        .digest(filter_digest)
        .f32(first_max)
        .digest(first_block)
        .finish()
}

/// A cluster's Merkle inverted list.
#[derive(Clone, Debug)]
pub struct MerkleList {
    pub cluster: u32,
    /// `w_c` (Eq. 1); zero for clusters no image maps to.
    pub weight: f32,
    /// Postings in descending impact order (ties: ascending image id).
    pub postings: Vec<Posting>,
    /// Per-block summaries: `blocks[b]` covers postings
    /// `b·BLOCK_SIZE .. (b+1)·BLOCK_SIZE` (last block may be short).
    blocks: Vec<BlockSummary>,
    /// Filter seeded with every image id in `postings`.
    pub filter: CuckooFilter,
    /// `h_{Γ_c}` (Def. 5).
    pub digest: Digest,
    /// Build-time memo of `h(Θ)` (the filter digest), so query-time VO
    /// assembly copies 32 bytes instead of re-running Keccak over the
    /// filter table. `None` after [`MerkleList::clear_filter_cache`].
    filter_commit: Option<Digest>,
}

impl MerkleList {
    /// Builds a list from unsorted postings.
    ///
    /// # Panics
    /// Panics if the filter geometry cannot hold the postings; index-level
    /// builders use [`MerkleList::try_build`] and retry with more buckets.
    pub fn build(cluster: u32, weight: f32, postings: Vec<Posting>, n_buckets: usize) -> Self {
        Self::try_build(cluster, weight, postings, n_buckets)
            .expect("filter geometry sized for the longest list")
    }

    /// Fallible variant of [`MerkleList::build`]: fails when the cuckoo
    /// filter's displacement chains cannot place every image id.
    pub fn try_build(
        cluster: u32,
        weight: f32,
        mut postings: Vec<Posting>,
        n_buckets: usize,
    ) -> Result<Self, imageproof_cuckoo::FilterFull> {
        postings.sort_by(|a, b| {
            b.impact
                .total_cmp(&a.impact)
                .then_with(|| a.image.cmp(&b.image))
        });
        let mut filter = CuckooFilter::with_buckets(n_buckets);
        for p in &postings {
            filter.insert(p.image)?;
        }
        let blocks = build_block_summaries(
            &postings,
            |chunk| {
                let mut h = Digest::ZERO;
                for p in chunk.iter().rev() {
                    h = posting_digest(p, &h);
                }
                h
            },
            |chunk| chunk[0].impact,
        );
        let (first_max, first_block) = blocks
            .first()
            .map(|b| (b.max_impact, b.digest))
            .unwrap_or((0.0, Digest::ZERO));
        let filter_commit = filter.digest();
        let digest = list_digest(weight, &filter_commit, first_max, &first_block);
        Ok(MerkleList {
            cluster,
            weight,
            postings,
            blocks,
            filter,
            digest,
            filter_commit: Some(filter_commit),
        })
    }

    /// `h(Θ)` from the build-time memo when present, recomputed otherwise.
    /// The flag reports which path was taken (feeds the SP's
    /// `hashes_cached`/`hashes_computed` counters).
    pub fn filter_digest_cached(&self) -> (Digest, bool) {
        match self.filter_commit {
            Some(d) => (d, true),
            None => (self.filter.digest(), false),
        }
    }

    /// Drops the build-time `h(Θ)` memo so subsequent queries recompute it —
    /// the reference path the equivalence suite compares the memoized path
    /// against.
    pub fn clear_filter_cache(&mut self) {
        self.filter_commit = None;
    }

    /// The per-block summaries, in block order.
    pub fn blocks(&self) -> &[BlockSummary] {
        &self.blocks
    }

    /// Number of posting blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of postings covered by the first `b` blocks.
    pub fn block_offset(&self, b: usize) -> usize {
        (b * BLOCK_SIZE).min(self.postings.len())
    }

    /// Digest of block `b` (covering blocks `b..`), or [`Digest::ZERO`]
    /// past the end.
    pub fn block_chain_digest(&self, b: usize) -> Digest {
        self.blocks.get(b).map(|s| s.digest).unwrap_or(Digest::ZERO)
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// True when no image maps to this cluster.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }
}

/// The full index: one Merkle list per cluster (clusters with no images get
/// an empty list so the MRKD leaf digests have an `h_Γ` for every cluster).
#[derive(Clone, Debug)]
pub struct MerkleInvertedIndex {
    lists: Vec<MerkleList>,
    /// Shared filter geometry (power of two).
    n_buckets: usize,
}

impl MerkleInvertedIndex {
    /// Builds the index from every database image's BoVW encoding and the
    /// corpus impact model. `encodings[i]` must belong to image id `i`... or
    /// rather, `images[i]` pairs ids with encodings explicitly.
    pub fn build(
        n_clusters: usize,
        images: &[(u64, SparseBovw)],
        model: &ImpactModel,
    ) -> MerkleInvertedIndex {
        Self::build_with(n_clusters, images, model, Concurrency::serial())
    }

    /// [`MerkleInvertedIndex::build`] with the per-cluster list builds
    /// (sorting, cuckoo filter insertion, digest chaining) fanned out
    /// across workers.
    ///
    /// Each cluster's list is a pure function of its postings and the
    /// shared bucket count; lists are merged in cluster order, and the
    /// geometry-doubling retry triggers iff *any* cluster fails — the same
    /// condition the serial build reacts to — so the built index is
    /// identical for every thread count.
    pub fn build_with(
        n_clusters: usize,
        images: &[(u64, SparseBovw)],
        model: &ImpactModel,
        conc: Concurrency,
    ) -> MerkleInvertedIndex {
        // Group postings per cluster.
        let mut per_cluster: Vec<Vec<Posting>> = vec![Vec::new(); n_clusters];
        for (image, bovw) in images {
            let norm = bovw.norm();
            for (c, f) in bovw.iter() {
                per_cluster[c as usize].push(Posting {
                    image: *image,
                    impact: impact_value(model.weight(c), f, norm),
                });
            }
        }
        // Common filter geometry from the longest list (the paper sizes
        // filter capacity from the maximal posting-list length, §VII-A; a
        // common geometry is what Lemma 1 / `MaxCount` require). Start at
        // the standard ~95% cuckoo load factor and double on the rare
        // displacement-chain failure.
        let max_len = per_cluster.iter().map(Vec::len).max().unwrap_or(0);
        let mut n_buckets = imageproof_cuckoo::buckets_for_capacity(max_len);
        loop {
            let built: Result<Vec<MerkleList>, _> =
                try_par_map(conc, &per_cluster, |c, postings| {
                    MerkleList::try_build(
                        c as u32,
                        model.weight(c as u32),
                        postings.clone(),
                        n_buckets,
                    )
                });
            match built {
                Ok(lists) => return MerkleInvertedIndex { lists, n_buckets },
                Err(_) => n_buckets *= 2,
            }
        }
    }

    /// The list of one cluster.
    pub fn list(&self, cluster: u32) -> &MerkleList {
        &self.lists[cluster as usize]
    }

    /// All lists, ascending by cluster.
    pub fn lists(&self) -> &[MerkleList] {
        &self.lists
    }

    /// Shared cuckoo-filter bucket count.
    pub fn n_buckets(&self) -> usize {
        self.n_buckets
    }

    /// Per-cluster `h_Γ` digests, in cluster order — the vector the
    /// MRKD-tree build embeds into leaf digests.
    pub fn list_digests(&self) -> Vec<Digest> {
        self.lists.iter().map(|l| l.digest).collect()
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when the index has no clusters.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Total posting count across the given clusters (the denominator of the
    /// "% popped postings" metric).
    pub fn total_postings(&self, clusters: impl Iterator<Item = u32>) -> usize {
        clusters.map(|c| self.lists[c as usize].len()).sum()
    }

    /// Drops every list's `h(Θ)` memo (see
    /// [`MerkleList::clear_filter_cache`]).
    pub fn clear_filter_caches(&mut self) {
        for list in &mut self.lists {
            list.clear_filter_cache();
        }
    }

    /// Owner-side incremental update: rebuilds one cluster's list with new
    /// postings (keeping the frozen cluster weight and the common filter
    /// geometry) and returns the new `h_Γ`.
    ///
    /// Fails with [`imageproof_cuckoo::FilterFull`] when the new postings no
    /// longer fit the common geometry; callers should then rebuild the
    /// whole index (geometry is a global commitment, see `MaxCount`).
    pub fn replace_list(
        &mut self,
        cluster: u32,
        postings: Vec<Posting>,
    ) -> Result<Digest, imageproof_cuckoo::FilterFull> {
        let weight = self.lists[cluster as usize].weight;
        let list = MerkleList::try_build(cluster, weight, postings, self.n_buckets)?;
        let digest = list.digest;
        self.lists[cluster as usize] = list;
        Ok(digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_index() -> MerkleInvertedIndex {
        // Table II's toy corpus shape: a handful of images over 8 clusters.
        let images: Vec<(u64, SparseBovw)> = vec![
            (1, SparseBovw::from_counts([(5, 2), (0, 1)])),
            (3, SparseBovw::from_counts([(5, 1), (6, 1)])),
            (4, SparseBovw::from_counts([(5, 1), (6, 1), (2, 3)])),
            (5, SparseBovw::from_counts([(6, 2)])),
            (8, SparseBovw::from_counts([(6, 1), (0, 1)])),
        ];
        let encodings: Vec<SparseBovw> = images.iter().map(|(_, b)| b.clone()).collect();
        let model = ImpactModel::build(8, &encodings);
        MerkleInvertedIndex::build(8, &images, &model)
    }

    #[test]
    fn postings_are_impact_descending() {
        let idx = toy_index();
        for list in idx.lists() {
            for w in list.postings.windows(2) {
                assert!(w[0].impact >= w[1].impact, "cluster {}", list.cluster);
            }
        }
    }

    #[test]
    fn every_cluster_has_a_digest_even_when_empty() {
        let idx = toy_index();
        assert_eq!(idx.list_digests().len(), 8);
        let empty = idx.list(7);
        assert!(empty.is_empty());
        assert_eq!(
            empty.digest,
            list_digest(0.0, &empty.filter.digest(), 0.0, &Digest::ZERO)
        );
    }

    /// A standalone list long enough to span several blocks (the toy corpus
    /// lists all fit in one block at BLOCK_SIZE = 8).
    fn long_list(n: usize) -> MerkleList {
        let postings: Vec<Posting> = (0..n)
            .map(|i| Posting {
                image: i as u64,
                impact: 1.0 + ((n - i) as f32) * 0.25,
            })
            .collect();
        MerkleList::build(0, 3.0, postings, 64)
    }

    #[test]
    fn list_reconstructs_from_any_block_prefix() {
        let list = long_list(21);
        assert!(list.n_blocks() >= 3, "fixture should span several blocks");
        for split in 0..=list.n_blocks() {
            // Reveal whole blocks [..split]; reconstruct the first block's
            // (max, digest) pair from the revealed postings plus the fence
            // block's pair (the single-digest skip proof).
            let (mut max, mut bd) = list
                .blocks()
                .get(split)
                .map(|b| (b.max_impact, b.digest))
                .unwrap_or((0.0, Digest::ZERO));
            let revealed = &list.postings[..list.block_offset(split)];
            for chunk in revealed.chunks(BLOCK_SIZE).rev() {
                let mut h = Digest::ZERO;
                for p in chunk.iter().rev() {
                    h = posting_digest(p, &h);
                }
                bd = block_digest(&h, max, &bd);
                max = chunk[0].impact;
            }
            assert_eq!(bd, list.block_chain_digest(0), "split {split}");
            let rebuilt = list_digest(list.weight, &list.filter.digest(), max, &bd);
            assert_eq!(rebuilt, list.digest);
        }
    }

    #[test]
    fn block_summaries_bind_the_block_max() {
        let list = long_list(20);
        for (b, summary) in list.blocks().iter().enumerate() {
            let lo = list.block_offset(b);
            let hi = list.block_offset(b + 1);
            let true_max = list.postings[lo].impact;
            assert_eq!(summary.max_impact, true_max);
            assert!(list.postings[lo..hi]
                .iter()
                .all(|p| p.impact <= summary.max_impact));
            // Inflating the claimed bound changes the commitment one level
            // up: the list head binds block 0's bound, each block binds its
            // successor's.
            let forged_max = summary.max_impact + 0.5;
            if b == 0 {
                assert_ne!(
                    list_digest(
                        list.weight,
                        &list.filter.digest(),
                        forged_max,
                        &summary.digest
                    ),
                    list.digest
                );
            } else {
                let prev = &list.blocks()[b - 1];
                assert_ne!(
                    block_digest(&prev.chain_head, forged_max, &summary.digest),
                    prev.digest
                );
            }
        }
    }

    #[test]
    fn filters_share_geometry_and_contain_their_images() {
        let idx = toy_index();
        for list in idx.lists() {
            assert_eq!(list.filter.n_buckets(), idx.n_buckets());
            for p in &list.postings {
                assert!(list.filter.contains(p.image));
            }
        }
    }

    #[test]
    fn tampering_a_posting_breaks_the_chain() {
        let list = long_list(12);
        let mut forged = list.postings.clone();
        forged[9].impact += 0.1;
        let (mut max, mut bd) = (0.0f32, Digest::ZERO);
        for chunk in forged.chunks(BLOCK_SIZE).rev() {
            let mut h = Digest::ZERO;
            for p in chunk.iter().rev() {
                h = posting_digest(p, &h);
            }
            bd = block_digest(&h, max, &bd);
            max = chunk[0].impact;
        }
        assert_ne!(
            list_digest(list.weight, &list.filter.digest(), max, &bd),
            list.digest
        );
    }

    #[test]
    fn impacts_match_the_model() {
        let images: Vec<(u64, SparseBovw)> = vec![
            (10, SparseBovw::from_counts([(0, 3), (1, 4)])),
            (11, SparseBovw::from_counts([(1, 1)])),
        ];
        let encodings: Vec<SparseBovw> = images.iter().map(|(_, b)| b.clone()).collect();
        let model = ImpactModel::build(2, &encodings);
        let idx = MerkleInvertedIndex::build(2, &images, &model);
        let list1 = idx.list(1);
        let p10 = list1
            .postings
            .iter()
            .find(|p| p.image == 10)
            .expect("image 10 in cluster 1");
        assert_eq!(p10.impact, model.impact(&encodings[0], 1));
    }

    #[test]
    fn filter_digest_memo_matches_recomputation() {
        let mut idx = toy_index();
        let memoized: Vec<Digest> = idx
            .lists()
            .iter()
            .map(|l| {
                let (d, cached) = l.filter_digest_cached();
                assert!(cached, "fresh build must serve from the memo");
                d
            })
            .collect();
        idx.clear_filter_caches();
        for (list, memo) in idx.lists().iter().zip(&memoized) {
            let (d, cached) = list.filter_digest_cached();
            assert!(!cached, "cleared cache must recompute");
            assert_eq!(d, *memo);
            assert_eq!(d, list.filter.digest());
        }
    }

    #[test]
    fn total_postings_counts_selected_clusters() {
        let idx = toy_index();
        let total: usize = idx.total_postings([5u32, 6].into_iter());
        assert_eq!(total, idx.list(5).len() + idx.list(6).len());
    }
}
